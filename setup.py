"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs are unavailable; this file enables ``pip install -e .`` via the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
