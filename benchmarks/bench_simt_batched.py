"""SIMT tier benchmark: the scalar interpreter vs the batched tier.

Runs each SIMT algorithm on the suite's ``internet`` analog at scales
1-4 under both execution tiers (:mod:`repro.gpu.batch` off and on),
asserts the runs are **bit-identical** — same outputs, same access-event
stream — and records the wall-clock speedup.  Results go to
``BENCH_simt.json`` at the repo root: one record per (algorithm, scale)
cell plus the flagship large-scale speedup.

The acceptance target is a >= 10x speedup on at least one ``scale >= 4``
cell (MST is the flagship: long CAS-heavy kernels with wide 64-bit
elements, exactly the shape the warp-wide numpy dispatch amortizes
best).

Scale notes: GC is absent from the grid — the SIMT-level GC keeps
possible colors in one 32-bit bitset, which even the scale-1 suite
analog's max degree overflows (the perf level handles those sizes; the
batched-tier GC bit-identity is pinned on tiny graphs by
``tests/test_batched_equivalence.py``).

Tier selection is forced per run via ``SimtExecutor(batch=...)``; the
``REPRO_SIMT_BATCH`` / ``REPRO_ENGINE`` environment knobs (see
``benchmarks/_harness.py`` and docs/performance.md) are deliberately
bypassed so one bench session measures both tiers.

Run directly for the full measurement::

    PYTHONPATH=src python benchmarks/bench_simt_batched.py

or ``--smoke`` (also the pytest entry point and the CI job) for a
scale-1 equality check that still measures both tiers.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import SIMT_BATCH  # noqa: F401  (documented knob, re-exported)

from repro.algorithms import cc, mis, mst
from repro.core.variants import Variant
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor
from repro.graphs.suite import load_suite_graph

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_simt.json"
INPUT = "internet"

#: (algorithm key, runner, scales) — the grid of measured cells
CASES = [
    ("cc", lambda g, ex: cc.run_simt(g, Variant.RACE_FREE, executor=ex),
     (1, 2, 4)),
    ("mis", lambda g, ex: mis.run_simt(g, Variant.RACE_FREE, executor=ex),
     (1, 2)),
    ("mst", lambda g, ex: mst.run_simt(g.with_random_weights(1),
                                       Variant.RACE_FREE, executor=ex),
     (1, 2, 4)),
]


def _digest(events) -> str:
    """Order-sensitive digest of an access-event stream.

    Exact list equality would require holding both tiers' streams in
    memory at once; at scale 4 that is gigabytes of live NamedTuples
    polluting the second run's wall-clock.  Hashing each event (tuple
    hash: stable within one process) into a running SHA-256 lets the
    stream be freed before the next timed run.  Scale-1 cells (and the
    CI smoke gate) still compare the full streams exactly.
    """
    import hashlib
    import struct

    h = hashlib.sha256()
    pack = struct.Struct("<q").pack
    for e in events:
        h.update(pack(hash(e)))
    return h.hexdigest()


def _measure(runner, graph, batch: bool, exact: bool):
    """One timed run on a fresh executor.

    Returns ``(seconds, out, evidence)`` where evidence is the full
    event list (``exact``) or its digest; the executor is dropped (and
    its events freed) before returning so the next run starts clean.
    """
    import gc as _gc

    _gc.collect()
    ex = SimtExecutor(GlobalMemory(), batch=batch)
    start = time.perf_counter()
    out, _ = runner(graph, ex)
    seconds = time.perf_counter() - start
    if batch and ex.batch_stats.batched_launches == 0:
        raise AssertionError("batched tier never engaged")
    evidence = ex.events if exact else _digest(ex.events)
    return seconds, np.asarray(out), evidence


def run_benchmark(scales_cap: int,
                  result_path: Path | None = RESULT_PATH) -> dict:
    records = []
    for algo, runner, scales in CASES:
        for scale in scales:
            if scale > scales_cap:
                continue
            graph = load_suite_graph(INPUT, scale)
            exact = scale <= 1
            t_i, out_i, ev_i = _measure(runner, graph, batch=False,
                                        exact=exact)
            t_b, out_b, ev_b = _measure(runner, graph, batch=True,
                                        exact=exact)
            if not np.array_equal(out_i, out_b):
                raise AssertionError(f"{algo}@{scale}: outputs differ")
            if ev_i != ev_b:
                raise AssertionError(f"{algo}@{scale}: event streams differ")
            speedup = t_i / t_b
            records.append({
                "algorithm": algo,
                "input": INPUT,
                "scale": scale,
                "interp_s": round(t_i, 4),
                "batched_s": round(t_b, 4),
                "speedup": round(speedup, 2),
                "identical": True,
            })
            print(f"{algo:4s} scale {scale}: interp {t_i:8.2f}s  "
                  f"batched {t_b:8.2f}s  {speedup:6.2f}x  (bit-identical)")
    flagship = max((r for r in records if r["scale"] >= 4),
                   key=lambda r: r["speedup"], default=None)
    payload = {
        "bench": "simt_batched",
        "input": INPUT,
        "cells": records,
        "flagship": flagship,
    }
    if result_path is not None:
        result_path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {result_path}")
    return payload


def test_simt_batched_smoke():
    """CI smoke: both tiers agree on every scale-1 cell."""
    payload = run_benchmark(scales_cap=1, result_path=None)
    assert len(payload["cells"]) == len(CASES)
    assert all(r["identical"] for r in payload["cells"])


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scale-1 cells only: equality check")
    args = parser.parse_args(argv)
    if args.smoke:
        run_benchmark(scales_cap=1, result_path=None)
        return 0
    payload = run_benchmark(scales_cap=4)
    flagship = payload["flagship"]
    if flagship is None or flagship["speedup"] < 10.0:
        print(f"FAIL: no scale>=4 cell reached 10x (best: {flagship})")
        return 1
    print(f"flagship: {flagship['algorithm']} scale {flagship['scale']} "
          f"= {flagship['speedup']:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
