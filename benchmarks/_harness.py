"""Shared infrastructure for the benchmark harness.

Every table/figure of the paper's evaluation section has one module
here.  All modules share a single memoized :class:`repro.Study`, so the
figure and correlation benches reuse the table benches' runs.

Environment knobs:

* ``REPRO_REPS``  — repetitions per configuration (default 3; the paper
  uses 9 — set ``REPRO_REPS=9`` to match its protocol exactly).
* ``REPRO_SCALE`` — input scale factor (default 1.0 = the suite's
  standard ~1/256-of-paper sizes).
* ``REPRO_RETRIES`` — extra attempts per cell after a transient kernel
  fault (default 1; relevant only when something actually fails).
* ``REPRO_CHECKPOINT`` — path for an incremental sweep checkpoint; if
  the file already exists it is loaded first, so an interrupted bench
  session resumes instead of recomputing (unset = no checkpointing).
* ``REPRO_TRACE_CACHE`` — directory for the on-disk trace cache
  (default ``benchmarks/output/trace_cache``).  Traces recorded by the
  table benches are re-priced — not re-executed — by the figure and
  correlation benches, and survive across bench sessions; point several
  sessions at the same directory to share recordings.
* ``REPRO_JOBS`` — worker processes for the shared study's sweeps
  (default 1 = serial).  Parallel runs are bit-identical to serial.
* ``REPRO_TELEMETRY`` — path for a telemetry JSONL export.  When set,
  the metric registry and span recorder are enabled for the whole bench
  session and written to the named file at interpreter exit (unset =
  telemetry off, the zero-overhead default).
* ``REPRO_SIMT_BATCH`` — force the SIMT batched warp-wide tier on
  (``1``) or off (``0``) for every executor in the session whose tier
  was not pinned in code; unset defers to ``REPRO_ENGINE`` and the
  ``auto`` tier-selection rules (docs/performance.md).  Runs are
  bit-identical either way — this knob only moves wall-clock time.

The harness runs on the resilient study (same results, memoized and
bit-identical when nothing fails), so one bad cell cannot take down a
whole bench session.  Each bench prints the regenerated rows and writes
them to ``benchmarks/output/`` as markdown + CSV, mirroring the
artifact's ``output/`` directory.
"""

from __future__ import annotations

import os
from pathlib import Path

REPS = int(os.environ.get("REPRO_REPS", "3"))
SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
RETRIES = int(os.environ.get("REPRO_RETRIES", "1"))
CHECKPOINT = os.environ.get("REPRO_CHECKPOINT") or None

#: the four algorithms of Tables IV-VII, in the paper's column order
UNDIRECTED_ALGOS = ["cc", "gc", "mis", "mst"]

OUTPUT_DIR = Path(__file__).parent / "output"

TRACE_CACHE = os.environ.get(
    "REPRO_TRACE_CACHE", str(OUTPUT_DIR / "trace_cache"))
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: tri-state SIMT tier override: True / False when the env knob pins a
#: tier, None to follow the ``auto`` selection rules
SIMT_BATCH = (None if os.environ.get("REPRO_SIMT_BATCH") is None
              else os.environ["REPRO_SIMT_BATCH"].strip().lower()
              not in ("", "0", "false", "no", "off"))

TELEMETRY = os.environ.get("REPRO_TELEMETRY") or None
if TELEMETRY:
    import atexit

    from repro import telemetry as _telemetry
    from repro.telemetry.export import write_jsonl as _write_jsonl

    _registry, _spans = _telemetry.enable()

    @atexit.register
    def _export_bench_telemetry() -> None:
        _write_jsonl(TELEMETRY, _registry, _spans)
        print(f"telemetry written to {TELEMETRY}")


def save_output(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n")


def emit(name: str, text: str) -> None:
    """Print the regenerated rows and persist them."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    slug = "".join(c if c.isalnum() or c in "._-" else "_"
                   for c in name.lower().replace(" ", "_"))
    save_output(slug.strip("_") + ".md", text)
