"""Table V: speedups of race-free codes on the 2070 Super.

The Turing part is the least penalized by the conversion in the paper
(CC geomean 0.88, the highest of the four devices).
"""

from __future__ import annotations

from _harness import UNDIRECTED_ALGOS, emit, save_output

from repro.core.report import speedup_table, to_csv
from repro.graphs.suite import suite_names
from repro.utils.stats import geometric_mean

DEVICE = "2070super"


def test_table5_speedups_2070super(study, benchmark):
    inputs = suite_names(directed=False)
    cells = benchmark.pedantic(
        lambda: study.speedup_table(DEVICE, UNDIRECTED_ALGOS, inputs),
        rounds=1, iterations=1,
    )
    emit("Table V (2070 Super)", speedup_table(cells))
    save_output("table5_2070super.csv", to_csv(cells))

    cc = geometric_mean([c.speedup for c in cells if c.algorithm == "cc"])
    mis = geometric_mean([c.speedup for c in cells if c.algorithm == "mis"])
    assert cc > 0.7     # mildest CC penalty of the suite (paper: 0.88)
    assert mis > 1.0
