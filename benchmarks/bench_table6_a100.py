"""Table VI: speedups of race-free codes on the A100."""

from __future__ import annotations

from _harness import UNDIRECTED_ALGOS, emit, save_output

from repro.core.report import speedup_table, to_csv
from repro.graphs.suite import suite_names
from repro.utils.stats import geometric_mean

DEVICE = "a100"


def test_table6_speedups_a100(study, benchmark):
    inputs = suite_names(directed=False)
    cells = benchmark.pedantic(
        lambda: study.speedup_table(DEVICE, UNDIRECTED_ALGOS, inputs),
        rounds=1, iterations=1,
    )
    emit("Table VI (A100)", speedup_table(cells))
    save_output("table6_a100.csv", to_csv(cells))

    cc = geometric_mean([c.speedup for c in cells if c.algorithm == "cc"])
    mis = geometric_mean([c.speedup for c in cells if c.algorithm == "mis"])
    assert cc < 0.9     # paper: 0.66
    assert mis > 1.0    # paper: 1.08
