"""Sweep-scaling benchmark: the old engine vs trace replay vs parallel.

Runs the full undirected sweep (every device x input x algorithm x
variant, ``REPRO_REPS`` repetitions) three ways:

* **serial** — ``Study(trace_cache=False)``: the pre-replay engine,
  every repetition re-executes the vectorized algorithm.
* **replay** — the default engine: the functional execution is recorded
  once per staleness class and re-priced per device/repetition.
* **parallel** — replay plus ``jobs`` pool workers sharing one on-disk
  trace directory.
* **telemetry** — replay with the metric registry and span recorder
  enabled, measuring observability overhead (the acceptance target is
  under 5% over replay).

All modes produce bit-identical cells (asserted), so the wall-clock
ratios are pure engine speedup.  Results go to ``BENCH_sweep.json`` at
the repo root: one record per mode with seconds, cell count, and
speedup over serial, plus the measured ``telemetry_overhead``.

Run directly for the full measurement (the acceptance gate is
parallel >= 3x serial)::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py

or ``--smoke`` (also the pytest entry point and the CI job) for a
3-input, 1-rep equality check that still exercises all three modes.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import JOBS, REPS, SCALE, UNDIRECTED_ALGOS

from repro import Study, telemetry
from repro.gpu.device import DEVICE_ORDER
from repro.graphs.suite import load_suite_graph, suite_names

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_sweep.json"


def _prewarm(inputs: list[str]) -> None:
    """Build every input once up front so graph generation (shared by
    all modes via the process-wide suite cache, and inherited by forked
    pool workers) is excluded from the engine timings."""
    for name in inputs:
        load_suite_graph(name, scale=SCALE)


def _run_sweep(reps: int, inputs: list[str], jobs: int,
               trace_cache) -> tuple[list, float]:
    """One full multi-device sweep under one engine configuration."""
    study = Study(reps=reps, scale=SCALE, trace_cache=trace_cache, jobs=1)
    start = time.perf_counter()
    cells = []
    for dev in DEVICE_ORDER:
        cells += study.speedup_table(dev, UNDIRECTED_ALGOS, inputs,
                                     jobs=jobs)
    return cells, time.perf_counter() - start


def _cells_equal(a: list, b: list) -> bool:
    return [(c.algorithm, c.input_name, c.device_key, c.baseline_ms,
             c.racefree_ms) for c in a] == \
           [(c.algorithm, c.input_name, c.device_key, c.baseline_ms,
             c.racefree_ms) for c in b]


def run_benchmark(reps: int, inputs: list[str], jobs: int,
                  result_path: Path | None = RESULT_PATH) -> dict:
    _prewarm(inputs)
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as trace_dir:
        modes = [
            ("serial", dict(jobs=1, trace_cache=False)),
            ("replay", dict(jobs=1, trace_cache=True)),
            ("parallel", dict(jobs=jobs, trace_cache=trace_dir)),
            ("telemetry", dict(jobs=1, trace_cache=True)),
        ]
        records = []
        baseline_cells = None
        baseline_s = None
        for mode, kwargs in modes:
            if mode == "telemetry":
                with telemetry.session():
                    cells, seconds = _run_sweep(reps, inputs, **kwargs)
            else:
                cells, seconds = _run_sweep(reps, inputs, **kwargs)
            if baseline_cells is None:
                baseline_cells, baseline_s = cells, seconds
            elif not _cells_equal(cells, baseline_cells):
                raise AssertionError(
                    f"{mode} sweep diverged from serial results")
            records.append({
                "mode": mode,
                "seconds": round(seconds, 4),
                "cells": len(cells),
                "speedup_vs_serial": round(baseline_s / seconds, 3),
            })
            print(f"{mode:9s} {seconds:8.2f}s  "
                  f"{records[-1]['speedup_vs_serial']:6.2f}x  "
                  f"({len(cells)} cells)")
    replay_s = next(m["seconds"] for m in records if m["mode"] == "replay")
    telemetry_s = next(m["seconds"] for m in records
                       if m["mode"] == "telemetry")
    overhead = telemetry_s / replay_s - 1.0
    print(f"telemetry overhead vs replay: {overhead:+.2%}")
    payload = {
        "bench": "sweep_scaling",
        "reps": reps,
        "scale": SCALE,
        "jobs": jobs,
        "devices": list(DEVICE_ORDER),
        "inputs": inputs,
        "modes": records,
        "telemetry_overhead": round(overhead, 4),
    }
    if result_path is not None:
        result_path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {result_path}")
    return payload


def test_sweep_scaling_smoke():
    """CI smoke: all three engines agree on a small sweep."""
    payload = run_benchmark(reps=1,
                            inputs=suite_names(directed=False)[:3],
                            jobs=2, result_path=None)
    assert [m["mode"] for m in payload["modes"]] == \
        ["serial", "replay", "parallel", "telemetry"]
    assert all(m["cells"] == 3 * len(UNDIRECTED_ALGOS) * len(DEVICE_ORDER)
               for m in payload["modes"])
    assert "telemetry_overhead" in payload


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="3 inputs, 1 rep: equality check only")
    parser.add_argument("--jobs", type=int, default=max(JOBS, 4),
                        help="workers for the parallel mode (default 4)")
    args = parser.parse_args(argv)
    if args.smoke:
        run_benchmark(reps=1, inputs=suite_names(directed=False)[:3],
                      jobs=args.jobs, result_path=None)
        return 0
    payload = run_benchmark(reps=REPS,
                            inputs=suite_names(directed=False),
                            jobs=args.jobs)
    parallel = next(m for m in payload["modes"]
                    if m["mode"] == "parallel")["speedup_vs_serial"]
    print(f"parallel speedup over the old serial engine: {parallel:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
