"""Table IV: speedups of race-free codes on the Titan V.

Regenerates the paper's 17-input x 4-algorithm speedup table (plus the
Min / Geomean / Max footer) on the simulated Volta device.  Expected
shape: CC well below 1, GC ~1.0, MIS above 1 (geomean ~1.1), MST
slightly below 1.
"""

from __future__ import annotations

from _harness import UNDIRECTED_ALGOS, emit, save_output

from repro.core.report import speedup_table, to_csv
from repro.graphs.suite import suite_names

DEVICE = "titanv"


def test_table4_speedups_titanv(study, benchmark):
    inputs = suite_names(directed=False)
    cells = benchmark.pedantic(
        lambda: study.speedup_table(DEVICE, UNDIRECTED_ALGOS, inputs),
        rounds=1, iterations=1,
    )
    emit("Table IV (Titan V)", speedup_table(cells))
    save_output("table4_titanv.csv", to_csv(cells))

    by_algo = {a: [c.speedup for c in cells if c.algorithm == a]
               for a in UNDIRECTED_ALGOS}
    # paper shapes: CC substantially slower, MIS faster on geomean
    from repro.utils.stats import geometric_mean
    assert geometric_mean(by_algo["cc"]) < 0.9
    assert geometric_mean(by_algo["mis"]) > 1.0
    assert geometric_mean(by_algo["gc"]) > 0.9
    assert geometric_mean(by_algo["mst"]) > 0.9
