"""Ablation: sensitivity to the hardware atomic cost (Section VII).

"We found recent GPUs to be more negatively affected by extra
synchronization than older GPUs.  Hence, the performance gap between
racy and non-racy code might increase in the future."  This ablation
sweeps a hypothetical device's atomic-store cost and shows the CC
speedup degrading monotonically — the quantitative version of the
paper's closing warning.
"""

from __future__ import annotations

import dataclasses

from _harness import emit

from repro.core.variants import Variant, get_algorithm
from repro.gpu.device import get_device
from repro.graphs.suite import load_suite_graph
from repro.perf.engine import run_algorithm
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table

INPUTS = ["internet", "amazon0601", "cit-Patents", "rmat16.sym"]
STORE_EXTRAS = [0.0, 15.0, 60.0, 150.0, 300.0]


def test_ablation_future_atomic_cost(benchmark):
    base_device = get_device("titanv")
    algo = get_algorithm("cc")
    graphs = [load_suite_graph(n) for n in INPUTS]

    def run():
        rows = []
        for extra in STORE_EXTRAS:
            device = dataclasses.replace(
                base_device,
                atomic_store_extra_cycles=extra,
                atomic_load_extra_cycles=extra / 3.0,
            )
            speedups = []
            for g in graphs:
                b = run_algorithm(algo, g, device, Variant.BASELINE, seed=7)
                f = run_algorithm(algo, g, device, Variant.RACE_FREE, seed=7)
                speedups.append(b.runtime_ms / f.runtime_ms)
            rows.append([extra, geometric_mean(speedups)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: CC speedup vs. atomic store cost",
         format_table(["Atomic store extra (cycles)",
                       "Race-free geomean speedup"], rows))

    geomeans = [r[1] for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(geomeans, geomeans[1:])), \
        "CC speedup must degrade monotonically with atomic cost"
    assert geomeans[-1] < geomeans[0]
