"""Table VIII: speedups of race-free SCC on the 10 directed inputs,
across all four devices (the paper lists SCC separately because its
inputs differ)."""

from __future__ import annotations

from _harness import emit, save_output

from repro.core.report import to_csv
from repro.graphs.suite import suite_names
from repro.gpu.device import DEVICE_ORDER
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table


def test_table8_scc_speedups(study, benchmark):
    inputs = suite_names(directed=True)

    def run():
        return {
            dev: [study.speedup("scc", name, dev) for name in inputs]
            for dev in DEVICE_ORDER
        }

    per_device = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["Input"] + [dev for dev in DEVICE_ORDER]
    rows = []
    for i, name in enumerate(inputs):
        rows.append([name] + [per_device[dev][i].speedup
                              for dev in DEVICE_ORDER])
    geomeans = {dev: geometric_mean([c.speedup for c in per_device[dev]])
                for dev in DEVICE_ORDER}
    rows.append(["Min Speedup"] + [min(c.speedup for c in per_device[d])
                                   for d in DEVICE_ORDER])
    rows.append(["Geomean Speedup"] + [geomeans[d] for d in DEVICE_ORDER])
    rows.append(["Max Speedup"] + [max(c.speedup for c in per_device[d])
                                   for d in DEVICE_ORDER])
    emit("Table VIII (SCC)", format_table(headers, rows))
    for dev in DEVICE_ORDER:
        save_output(f"table8_scc_{dev}.csv", to_csv(per_device[dev]))

    # paper shape: SCC substantially slower everywhere; 2070S mildest,
    # A100/4090 harshest
    assert all(gm < 1.0 for gm in geomeans.values())
    assert geomeans["2070super"] == max(geomeans.values())
    assert min(geomeans["a100"], geomeans["4090"]) < geomeans["titanv"]
