"""Schedule-exploration throughput and DPOR reduction factors.

Runs the ``repro.check`` explorer over the pattern corpus in both naive
DFS and sleep-set DPOR modes and reports, per pattern: schedules needed
for a complete (or budget-capped) search, the naive/DPOR reduction
factor, and raw exploration throughput in schedules per second.

This is the evaluation companion of ``docs/checking.md``: the partial
order reduction is what makes exhaustive checking of the paper's racy
idioms affordable at all, so the reduction factor is tracked like any
other performance number.
"""

from __future__ import annotations

from _harness import emit

from repro.check import BUDGETS, ExploreBudget, check
from repro.core.variants import Variant
from repro.patterns import PATTERNS
from repro.utils.tables import format_table

#: generous enough that every pattern's smoke-sized space is covered,
#: tight enough that the spin-loop patterns stay bounded
BUDGET = ExploreBudget(max_schedules=BUDGETS["smoke"].max_schedules,
                       max_steps_per_run=4_000,
                       max_seconds=20.0,
                       preemption_bound=2)


def _sweep():
    rows = []
    for name in sorted(PATTERNS):
        pattern = PATTERNS[name]
        variant = (Variant.RACE_FREE if pattern.expected_racy
                   else Variant.BASELINE)
        report = check(name, variant=variant, budget=BUDGET,
                       mode="dpor", compare_naive=True, minimize=False)
        rows.append((name, variant, report))
    return rows


def test_dpor_reduction(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = []
    for name, variant, report in results:
        dpor = report.explore
        naive = report.naive
        table.append([
            name,
            variant.value,
            naive.schedules,
            dpor.schedules,
            f"{report.dpor_reduction:.2f}x" if report.dpor_reduction else "-",
            "yes" if dpor.complete else "capped",
            f"{dpor.schedules_per_second:.0f}",
        ])
    emit("Schedule exploration (repro.check)",
         format_table(["Pattern", "Variant", "Naive", "DPOR",
                       "Reduction", "Complete", "Sched/s"], table))

    for name, _variant, report in results:
        assert report.ok, f"{name}: exploration of the fixed variant failed"
        dpor = report.explore
        naive = report.naive
        # DPOR must never need MORE schedules than naive DFS
        assert dpor.schedules <= naive.schedules, name
    # and it must genuinely reduce somewhere in the corpus
    assert any(r.explore.schedules < r.naive.schedules
               for _, _, r in results)
