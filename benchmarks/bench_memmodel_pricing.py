"""Pricing the race-free conversions under the memory-model zoo.

Section IV.B picks relaxed atomics because the baselines impose no
ordering; Section I warns that seq_cst-style defaults "can lead to
poor performance".  The memory-model zoo makes that comparison a
first-class experiment: the same race-free plan is re-priced under
each consistency model's order floor (``MemoryModel.apply_to_plan``),
exactly what ``repro run --memory-model`` does.

The paper's relaxed GPU model keeps the published speedups by
construction (its floor is relaxed, an identity transform).  PTX
acq_rel and SC flooring only ever weaken them.
"""

from __future__ import annotations

from _harness import emit

from repro.core.variants import Variant, get_algorithm
from repro.gpu.device import get_device
from repro.gpu.timing import TimingModel
from repro.graphs.suite import load_suite_graph
from repro.memmodel import get_model
from repro.perf.engine import Recorder, algorithm_plan
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table

INPUTS = ["internet", "amazon0601", "cit-Patents", "rmat16.sym"]
MODELS = ["relaxed_gpu", "ptx:acq_rel", "sc"]


def _speedup(algo_key: str, graph, device, model) -> float:
    algo = get_algorithm(algo_key)
    base_plan = algorithm_plan(algo)
    priced_plan = model.apply_to_plan(base_plan)
    times = {}
    for variant, plan in ((Variant.BASELINE, base_plan),
                          (Variant.RACE_FREE, priced_plan)):
        recorder = Recorder(plan, variant, device)
        algo.perf_runner(graph, recorder, 7)
        times[variant] = TimingModel(device).estimate_ms(recorder.stats)
    return times[Variant.BASELINE] / times[Variant.RACE_FREE]


def test_memmodel_pricing(benchmark):
    device = get_device("titanv")
    graphs = [load_suite_graph(n) for n in INPUTS]

    def run():
        rows = []
        for spec in MODELS:
            model = get_model(spec)
            cc = geometric_mean([_speedup("cc", g, device, model)
                                 for g in graphs])
            mis = geometric_mean([_speedup("mis", g, device, model)
                                  for g in graphs])
            rows.append([model.key, cc, mis])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Race-free speedup under each consistency model",
         format_table(["Model", "CC geomean speedup",
                       "MIS geomean speedup"], rows))

    relaxed, acq_rel, sc = rows
    # the paper's model keeps the win; stronger floors only cost more
    assert relaxed[1] > acq_rel[1] >= sc[1]
    assert relaxed[2] > acq_rel[2] >= sc[2]
    assert relaxed[2] > 1.0
    assert sc[2] < 1.0
