"""Pytest fixtures for the benchmark harness (helpers in _harness.py)."""

from __future__ import annotations

from pathlib import Path

import pytest

from _harness import CHECKPOINT, JOBS, REPS, RETRIES, SCALE, TRACE_CACHE

from repro import ResilientStudy


@pytest.fixture(scope="session")
def study() -> ResilientStudy:
    """The shared memoized study, on the resilient execution path.

    With no faults injected this produces bit-identical results to the
    plain :class:`repro.Study`, but a failing cell surfaces as a
    :class:`~repro.errors.StudyError` for just that bench instead of
    aborting the whole session, transient faults are retried, and an
    optional checkpoint (``REPRO_CHECKPOINT``) lets an interrupted
    session resume.

    The on-disk trace cache (``REPRO_TRACE_CACHE``) means a trace
    recorded for one device is re-priced for the other devices of the
    same staleness class, and recordings persist across bench sessions.
    """
    s = ResilientStudy(reps=REPS, scale=SCALE, retries=RETRIES,
                       checkpoint=CHECKPOINT, trace_cache=TRACE_CACHE,
                       jobs=JOBS)
    if CHECKPOINT is not None and Path(CHECKPOINT).exists():
        s.load_checkpoint()
    return s
