"""Pytest fixtures for the benchmark harness (helpers in _harness.py)."""

from __future__ import annotations

import pytest

from _harness import REPS, SCALE

from repro import Study


@pytest.fixture(scope="session")
def study() -> Study:
    return Study(reps=REPS, scale=SCALE)
