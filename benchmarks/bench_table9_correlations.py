"""Table IX: correlation coefficients between input graph properties
(edge count, vertex count, average degree) and the observed speedups.

Expected shapes from the paper: SCC's speedup correlates negatively
with average degree on every device (hot-vertex atomic contention);
GC and MST correlations are noisy (their speedup variance is tiny, so
outliers dominate — the paper notes the same caveat).
"""

from __future__ import annotations

from _harness import SCALE, UNDIRECTED_ALGOS, emit, save_output

from repro.core.report import correlation_table
from repro.core.study import paper_properties
from repro.graphs.suite import suite_names
from repro.gpu.device import DEVICE_ORDER
from repro.utils.correlation import pearson


def test_table9_property_correlations(study, benchmark):
    und = suite_names(directed=False)
    dird = suite_names(directed=True)

    def run():
        cells = []
        for dev in DEVICE_ORDER:
            cells.extend(study.speedup_table(dev, UNDIRECTED_ALGOS, und))
            cells.extend(study.speedup("scc", name, dev) for name in dird)
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    table = correlation_table(cells, scale=SCALE)
    emit("Table IX (correlations)", table)
    save_output("table9_correlations.md", table)

    # paper shape: SCC speedup anti-correlates with average degree
    for dev in DEVICE_ORDER:
        scc_cells = [c for c in cells
                     if c.device_key == dev and c.algorithm == "scc"]
        degrees = [paper_properties(c.input_name, scale=SCALE)[2]
                   for c in scc_cells]
        speedups = [c.speedup for c in scc_cells]
        assert pearson(degrees, speedups) < 0.0, dev
