"""Extension: incremental race-removal cost (the Indigo3 angle).

The paper converts each code wholesale.  This bench asks the question a
practitioner migrating a real codebase would: *in what order should I
convert the racy sites, and where does the cost concentrate?*  Using
the greedy cheapest-next-site order over CC and SCC, it shows that the
conversion budget is dominated by a single site in each code (CC's
pointer-jump reads; SCC's path-max reads) — converting everything else
first is nearly free.
"""

from __future__ import annotations

from _harness import emit

from repro.gpu.device import get_device
from repro.graphs.suite import load_suite_graph
from repro.patterns.mutator import migration_path
from repro.utils.tables import format_table


def test_migration_cost_curve(benchmark):
    device = get_device("titanv")

    def run():
        out = {}
        out["cc"] = migration_path("cc", load_suite_graph("cit-Patents"),
                                   device)
        out["scc"] = migration_path("scc", load_suite_graph("flickr"),
                                    device)
        return out

    paths = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for algo, steps in paths.items():
        base = steps[0].runtime_ms
        for step in steps:
            rows.append([
                algo,
                step.variant.label,
                step.remaining_racy_sites,
                step.runtime_ms,
                step.runtime_ms / base,
            ])
    emit("Extension: incremental race-removal cost",
         format_table(
             ["Code", "Converted", "Racy sites left", "Runtime ms",
              "vs baseline"],
             rows, float_format="{:.3f}"))

    for algo, steps in paths.items():
        runtimes = [s.runtime_ms for s in steps]
        # cost never decreases along the path
        assert all(a <= b + 1e-12 for a, b in zip(runtimes, runtimes[1:]))
        # and the last conversion step dominates: the jump from the
        # second-to-last to the last point exceeds all previous jumps
        deltas = [b - a for a, b in zip(runtimes, runtimes[1:])]
        assert deltas[-1] == max(deltas), algo
