"""Ablation: MST's implicit path compression (Section VI.A).

"The impact on MST is significantly lower due to its use of implicit
path compression, which reduces the number of these accesses."

Two measurements:

1. **Real ECL-MST** (volatile baseline): disabling compression grows
   the racy (converted) access count.  Because volatile and atomic
   loads are both L2 operations, the *ratio* barely moves — the
   conversion is cheap per access, and compression's contribution is
   bounding how many of them there are.
2. **Counterfactual plain-baseline MST** (what MST would look like if,
   like CC, its baseline used non-volatile accesses): every converted
   load now goes from an L1 hit to an L2 atomic and the slowdown
   deepens markedly — the CC-vs-MST contrast of Section VI.A reproduced
   inside one algorithm.

A negative finding worth recording: in this simulator, disabling
compression grows the racy-access count by ~25-30 % but moves the
speedup by under 2 % in either regime, because Boruvka's
hook-larger-root-under-smaller ordering already bounds path lengths.
The decisive factor for MST's mild slowdown is its volatile baseline;
compression's contribution is secondary.
"""

from __future__ import annotations

import dataclasses

from _harness import emit

from repro.algorithms import mst
from repro.core.transform import AccessPlan
from repro.core.variants import Variant
from repro.gpu.accesses import AccessKind
from repro.gpu.device import get_device
from repro.gpu.timing import TimingModel
from repro.graphs.suite import load_suite_graph
from repro.perf.engine import Recorder
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table

INPUTS = ["internet", "amazon0601", "citationCiteseer", "USA-road-d.NY"]


def _plain_baseline_plan() -> AccessPlan:
    """ECL-MST's plan with a CC-style non-volatile baseline."""
    sites = tuple(
        dataclasses.replace(s, kind=AccessKind.PLAIN)
        if s.kind is AccessKind.VOLATILE else s
        for s in mst.ACCESS_PLAN.sites
    )
    return AccessPlan("mst-plain", sites)


def _measure(graph, device, plan, compression: bool):
    out = {}
    for variant in Variant:
        recorder = Recorder(plan, variant, device)
        mst.run_perf(graph, recorder, seed=7, path_compression=compression)
        out[variant] = (TimingModel(device).estimate_ms(recorder.stats),
                        recorder.stats.atomic_loads)
    speedup = out[Variant.BASELINE][0] / out[Variant.RACE_FREE][0]
    return speedup, out[Variant.RACE_FREE][1]


def test_ablation_mst_path_compression(benchmark):
    device = get_device("titanv")
    graphs = [load_suite_graph(n).with_random_weights(seed=12345)
              for n in INPUTS]
    plans = {
        "volatile (real ECL-MST)": mst.ACCESS_PLAN,
        "plain (CC-style counterfactual)": _plain_baseline_plan(),
    }

    def run():
        rows = []
        for label, plan in plans.items():
            for compression in (True, False):
                speedups, loads = [], []
                for g in graphs:
                    s, l = _measure(g, device, plan, compression)
                    speedups.append(s)
                    loads.append(l)
                rows.append([label, "on" if compression else "off",
                             geometric_mean(speedups), sum(loads)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: MST path compression",
         format_table(["Baseline kind", "Compression",
                       "Race-free geomean speedup", "Converted loads"],
                      rows))

    vol_on, vol_off, plain_on, plain_off = rows
    # compression bounds the racy-access count in both regimes
    assert vol_off[3] > 1.15 * vol_on[3]
    assert plain_off[3] > 1.15 * plain_on[3]
    # the runtime effect of compression alone is small in both regimes
    assert abs(vol_off[2] - vol_on[2]) < 0.05
    assert abs(plain_off[2] - plain_on[2]) < 0.05
    # the decisive factor is the baseline access kind (CC-vs-MST
    # contrast): the plain regime is much worse than the volatile one
    assert plain_on[2] < vol_on[2] - 0.1
