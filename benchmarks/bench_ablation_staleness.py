"""Ablation: the MIS visibility mechanism (Section VI.A).

The paper attributes the race-free MIS speedup to faster propagation of
status updates.  This ablation sweeps the fraction of baseline polls
the compiler keeps register-stale: at 0.0 the mechanism is off and the
race-free variant loses its advantage (it pays the atomic extra with no
round savings); the advantage grows with the stale fraction.
"""

from __future__ import annotations

import numpy as np

from _harness import emit

from repro.algorithms import mis
from repro.core.variants import Variant, get_algorithm
from repro.gpu.device import get_device
from repro.perf.engine import Recorder, algorithm_plan
from repro.gpu.timing import TimingModel
from repro.graphs.suite import load_suite_graph
from repro.utils.stats import geometric_mean, median
from repro.utils.tables import format_table

INPUTS = ["internet", "amazon0601", "citationCiteseer", "rmat16.sym"]
FRACTIONS = [0.0, 0.1, 0.2, 0.35, 0.5]
REPS = 3


def _speedup(graph, device, fraction: float) -> float:
    algo = get_algorithm("mis")
    times = {}
    for variant in Variant:
        reps = []
        for rep in range(REPS):
            recorder = Recorder(algorithm_plan(algo), variant, device)
            mis.run_perf(graph, recorder, seed=1000 * rep + 7,
                         stale_fraction=fraction)
            reps.append(TimingModel(device).estimate_ms(recorder.stats))
        times[variant] = median(reps)
    return times[Variant.BASELINE] / times[Variant.RACE_FREE]


def test_ablation_mis_staleness(benchmark):
    device = get_device("titanv")
    graphs = [load_suite_graph(name) for name in INPUTS]

    def run():
        rows = []
        for fraction in FRACTIONS:
            speedups = [_speedup(g, device, fraction) for g in graphs]
            rows.append([fraction, geometric_mean(speedups)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: MIS stale-poll fraction",
         format_table(["Stale fraction", "Race-free geomean speedup"],
                      rows))

    geomeans = [r[1] for r in rows]
    # no staleness -> no race-free win; advantage grows with staleness
    assert geomeans[0] < 1.02
    assert geomeans[-1] > geomeans[0]
    assert geomeans[-1] > 1.0
