"""Table VII: speedups of race-free codes on the RTX 4090.

The newest device shows the largest CC penalty (paper geomean 0.45) —
the Section VII trend of growing synchronization cost.
"""

from __future__ import annotations

from _harness import UNDIRECTED_ALGOS, emit, save_output

from repro.core.report import speedup_table, to_csv
from repro.graphs.suite import suite_names
from repro.utils.stats import geometric_mean

DEVICE = "4090"


def test_table7_speedups_4090(study, benchmark):
    inputs = suite_names(directed=False)
    cells = benchmark.pedantic(
        lambda: study.speedup_table(DEVICE, UNDIRECTED_ALGOS, inputs),
        rounds=1, iterations=1,
    )
    emit("Table VII (4090)", speedup_table(cells))
    save_output("table7_4090.csv", to_csv(cells))

    cc = geometric_mean([c.speedup for c in cells if c.algorithm == "cc"])
    mis = geometric_mean([c.speedup for c in cells if c.algorithm == "mis"])
    assert cc < 0.8     # paper: 0.45 — deepest CC penalty of the suite
    assert mis > 1.0
