"""Run-to-run stability (Section VI.A).

The paper runs each configuration nine times and reports that repeated
runs are very close: "The median relative deviation is only 0.6 %."
This bench reproduces the statistic over a sample of configurations.
"""

from __future__ import annotations

from _harness import emit

from repro import Study, Variant
from repro.utils.stats import median
from repro.utils.tables import format_table

SAMPLE = [
    ("cc", "cit-Patents"),
    ("gc", "amazon0601"),
    ("mis", "as-skitter"),
    ("mst", "r4-2e23.sym"),
    ("scc", "flickr"),
]


def test_repeatability_median_relative_deviation(benchmark):
    study = Study(reps=9)  # the paper's repetition count

    def run():
        rows = []
        deviations = []
        for algo, name in SAMPLE:
            for variant in Variant:
                result = study.run(algo, name, "titanv", variant)
                rows.append([f"{algo}/{variant.value}", name,
                             result.median_ms,
                             100.0 * result.relative_deviation])
                deviations.append(result.relative_deviation)
        return rows, deviations

    rows, deviations = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["Configuration", "Input", "Median ms", "Rel. deviation %"], rows)
    overall = 100.0 * median(deviations)
    emit("Repeatability (Section VI.A)",
         table + f"\n\nMedian relative deviation: {overall:.2f}% "
                 "(paper: 0.6%)")
    assert overall < 5.0
