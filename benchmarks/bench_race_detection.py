"""Section IV.A: the races found in each baseline code.

Runs every algorithm's SIMT kernels on small inputs under a random
schedule, applies the race detector, and prints the per-code findings —
the reproduction of the paper's "Races Found" inventory:

* APSP: regular, no races.
* CC: unprotected label reads/writes (pointer jumping).
* GC: unprotected (volatile) neighbor color accesses.
* MIS: unprotected status-byte polls and writes.
* MST: unprotected parent and 64-bit best-edge accesses.
* SCC: unprotected int2 path pairs and the go-again flag.

The race-free versions of all five racy codes must come back clean.
"""

from __future__ import annotations

from _harness import emit

from repro.algorithms import apsp, cc, gc, mis, mst, scc
from repro.core.variants import Variant
from repro.graphs import generators as gen
from repro.gpu.interleave import RandomScheduler
from repro.gpu.racecheck import RaceDetector, summarize_races
from repro.utils.tables import format_table


def _runs():
    g = gen.random_uniform(24, 3.0, seed=5)
    gw = g.with_random_weights(seed=9)
    dg = gen.directed_powerlaw(20, 2.5, seed=3)
    ga = gen.random_uniform(5, 2.0, seed=1).with_random_weights(seed=2)
    out = []
    for variant in Variant:
        _, ex = cc.run_simt(g, variant, scheduler=RandomScheduler(1))
        out.append(("cc", variant, RaceDetector().check(ex)))
        _, ex = gc.run_simt(g, variant, scheduler=RandomScheduler(2))
        out.append(("gc", variant, RaceDetector().check(ex)))
        _, ex = mis.run_simt(g, variant, scheduler=RandomScheduler(3))
        out.append(("mis", variant, RaceDetector().check(ex)))
        _, ex = mst.run_simt(gw, variant, scheduler=RandomScheduler(4))
        out.append(("mst", variant, RaceDetector().check(ex)))
        _, ex = scc.run_simt(dg, variant, scheduler=RandomScheduler(5))
        out.append(("scc", variant, RaceDetector().check(ex)))
    _, ex = apsp.run_simt(ga, scheduler=RandomScheduler(6))
    out.append(("apsp", Variant.BASELINE, RaceDetector().check(ex)))
    return out


def test_race_inventory(benchmark):
    results = benchmark.pedantic(_runs, rounds=1, iterations=1)
    rows = []
    for algo, variant, reports in results:
        arrays = sorted(summarize_races(reports)) if reports else ["-"]
        rows.append([algo, variant.value, len(reports), ", ".join(arrays)])
    emit("Races found (Section IV.A)",
         format_table(["Code", "Variant", "Races", "Racy arrays"], rows))

    for algo, variant, reports in results:
        if algo == "apsp":
            assert not reports, "APSP is regular: no races expected"
        elif variant is Variant.BASELINE:
            assert reports, f"baseline {algo} must exhibit races"
        else:
            assert not reports, f"race-free {algo} must be clean"
