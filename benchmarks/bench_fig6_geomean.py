"""Fig. 6: geometric-mean speedup of each algorithm on each GPU.

Aggregates the full undirected tables (IV-VII) and the SCC table (VIII)
into the per-device geomean bars and renders the ASCII analogue of the
paper's bar chart.  Expected shape: MIS is the only bar above 1.0 on
every device; CC and SCC bars shrink on the newer devices.
"""

from __future__ import annotations

from _harness import UNDIRECTED_ALGOS, emit, save_output

from repro.core.report import fig6_bars, geomean_summary
from repro.graphs.suite import suite_names
from repro.gpu.device import DEVICE_ORDER


def test_fig6_geomean_bars(study, benchmark):
    und = suite_names(directed=False)
    dird = suite_names(directed=True)

    def run():
        cells = []
        for dev in DEVICE_ORDER:
            cells.extend(study.speedup_table(dev, UNDIRECTED_ALGOS, und))
            cells.extend(study.speedup("scc", name, dev) for name in dird)
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = geomean_summary(cells)
    emit("Figure 6 (geomean speedups)", fig6_bars(summary))

    csv_lines = ["device,algorithm,geomean_speedup"]
    for dev in DEVICE_ORDER:
        for algo in UNDIRECTED_ALGOS + ["scc"]:
            csv_lines.append(f"{dev},{algo},{summary[dev][algo]:.4f}")
    save_output("fig6_geomeans.csv", "\n".join(csv_lines))

    # the paper's headline shapes
    for dev in DEVICE_ORDER:
        assert summary[dev]["mis"] > 1.0, f"MIS must win on {dev}"
        assert summary[dev]["cc"] < 0.9, f"CC must lose on {dev}"
        assert summary[dev]["scc"] < 1.0, f"SCC must lose on {dev}"
        assert summary[dev]["gc"] > 0.9
        assert summary[dev]["mst"] > 0.9
    # newer devices are more penalized (CC bar ordering)
    assert summary["4090"]["cc"] < summary["2070super"]["cc"]
    assert summary["a100"]["scc"] < summary["2070super"]["scc"]
