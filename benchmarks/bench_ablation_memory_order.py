"""Ablation: the cost of stronger-than-relaxed memory orders.

Section IV.B: "These operations use the relaxed memory ordering for
maximum performance.  The relaxed ordering is sufficient since there is
no ordering constraint on these operations in the baseline codes."
And Section I warns that libcu++'s *defaults* (seq_cst) "can lead to
poor performance".

This ablation re-prices the race-free CC and MIS conversions under
acquire/release-style and seq_cst-style orderings and shows what the
paper's relaxed-everywhere choice buys: the MIS win disappears and the
CC penalty deepens as soon as the ordering is stronger than needed.
"""

from __future__ import annotations

from _harness import emit

from repro.core.transform import with_order
from repro.core.variants import Variant, get_algorithm
from repro.gpu.accesses import MemoryOrder
from repro.gpu.device import get_device
from repro.gpu.timing import TimingModel
from repro.graphs.suite import load_suite_graph
from repro.perf.engine import Recorder, algorithm_plan
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table

INPUTS = ["internet", "amazon0601", "cit-Patents", "rmat16.sym"]
ORDERS = [MemoryOrder.RELAXED, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST]


def _speedup(algo_key: str, graph, device, order: MemoryOrder) -> float:
    algo = get_algorithm(algo_key)
    base_plan = algorithm_plan(algo)
    ordered_plan = with_order(base_plan, order)
    times = {}
    for variant, plan in ((Variant.BASELINE, base_plan),
                          (Variant.RACE_FREE, ordered_plan)):
        recorder = Recorder(plan, variant, device)
        algo.perf_runner(graph, recorder, 7)
        times[variant] = TimingModel(device).estimate_ms(recorder.stats)
    return times[Variant.BASELINE] / times[Variant.RACE_FREE]


def test_ablation_memory_order(benchmark):
    device = get_device("titanv")
    graphs = [load_suite_graph(n) for n in INPUTS]

    def run():
        rows = []
        for order in ORDERS:
            cc = geometric_mean([_speedup("cc", g, device, order)
                                 for g in graphs])
            mis = geometric_mean([_speedup("mis", g, device, order)
                                  for g in graphs])
            rows.append([order.value, cc, mis])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: memory order of the race-free conversion",
         format_table(["Order", "CC geomean speedup",
                       "MIS geomean speedup"], rows))

    relaxed, acq_rel, seq_cst = rows
    # stronger orders only ever cost more
    assert relaxed[1] > acq_rel[1] > seq_cst[1]
    assert relaxed[2] > acq_rel[2] > seq_cst[2]
    # relaxed keeps the MIS win; the strongest default forfeits it
    assert relaxed[2] > 1.0
    assert seq_cst[2] < 1.0
