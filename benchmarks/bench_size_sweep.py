"""Section VI.B: how the race-free speedup moves with input size.

"The speedup of CC is greatly affected by the size of the input and
the GPU used.  On the Titan V and 2070 Super devices, CC's speedup
increases with the graph size."

This bench sweeps one CC input family across scale factors.  The
mechanism in the simulator matches the paper's explanation for the
older parts: once the footprint outgrows the caches, the *baseline's*
plain accesses miss like the atomics do, its L1 advantage evaporates,
and the speedup rises toward parity.  The sweep therefore spans from
cache-resident (scale 1: the suite's standard ~1/256 sizes) to
DRAM-bound (scale 24: footprints beyond the older devices' L2).

The paper's opposite trend on A100/4090 stems from L2-partitioning
effects the analytic cache model does not capture; the bench asserts
only the old-device trend and reports the rest (see EXPERIMENTS.md).
"""

from __future__ import annotations

from _harness import emit

from repro import Study
from repro.utils.tables import format_table

SCALES = [1.0, 8.0, 24.0]
INPUT = "r4-2e23.sym"


def test_cc_speedup_vs_size(benchmark):
    def run():
        rows = []
        for scale in SCALES:
            study = Study(reps=1, scale=scale)
            row = [scale]
            for dev in ("titanv", "2070super", "a100", "4090"):
                row.append(study.speedup("cc", INPUT, dev).speedup)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Section VI.B: CC speedup vs input size",
         format_table(["Scale", "titanv", "2070super", "a100", "4090"],
                      rows, float_format="{:.3f}"))

    titanv = [r[1] for r in rows]
    s2070 = [r[2] for r in rows]
    # old-device trend: larger inputs -> higher CC speedup
    assert titanv[-1] > titanv[0]
    assert s2070[-1] > s2070[0]
