"""Section IV as a demo: find the races, remove them, verify.

For each of the six ECL codes this script:

1. runs the *baseline* kernels on a small graph through the SIMT
   interpreter and the dynamic race detector (the Compute Sanitizer /
   iGuard stand-in), printing the racy arrays it finds;
2. applies the race-removal transform (every shared non-atomic site
   becomes a relaxed atomic) and shows the resulting plan;
3. re-runs the race-free kernels and shows the detector comes back
   clean while the output stays correct.

Run:  python examples/race_detection_demo.py
"""

from __future__ import annotations

from repro.algorithms import apsp, cc, gc, mis, mst, scc, verify
from repro.core.transform import remove_races
from repro.core.variants import Variant
from repro.graphs import generators as gen
from repro.gpu.interleave import RandomScheduler
from repro.gpu.racecheck import RaceDetector, summarize_races


def show_plan(plan) -> None:
    racy = plan.racy_sites()
    if not racy:
        print("  no racy sites (regular code)")
        return
    for site in racy:
        print(f"  racy site {site.name}: {site.kind.value} "
              f"({site.elem_bytes} B{', store' if site.is_store else ''})")
    converted = remove_races(plan)
    print("  after transform:",
          ", ".join(f"{s.name}->atomic" for s in racy
                    if converted.site(s.name).kind.value == "atomic"))


def check(algo_name, module, graph, validate) -> None:
    print(f"\n=== {algo_name} ===")
    show_plan(module.ACCESS_PLAN)
    for variant in Variant:
        result, ex = module.run_simt(graph, variant,
                                     scheduler=RandomScheduler(7))
        validate(graph, result)
        races = RaceDetector().check(ex)
        label = "baseline " if variant is Variant.BASELINE else "race-free"
        if races:
            print(f"  {label}: {len(races)} race report(s) in "
                  f"{sorted(summarize_races(races))}")
        else:
            print(f"  {label}: clean (result verified)")


def main() -> None:
    g = gen.random_uniform(24, 3.0, seed=5, name="demo")
    gw = g.with_random_weights(seed=9)
    dg = gen.directed_powerlaw(20, 2.5, seed=3, name="demo-directed")

    check("CC (connected components)", cc, g, verify.check_components)
    check("GC (graph coloring)", gc, g, verify.check_coloring)
    check("MIS (maximal independent set)", mis, g, verify.check_mis)
    check("MST (minimum spanning tree)", mst, gw, verify.check_mst)
    check("SCC (strongly connected components)", scc, dg, verify.check_scc)

    print("\n=== APSP (all-pairs shortest paths) ===")
    show_plan(apsp.ACCESS_PLAN)
    ga = gen.random_uniform(5, 2.0, seed=1).with_random_weights(seed=2)
    dist, ex = apsp.run_simt(ga, scheduler=RandomScheduler(7))
    verify.check_apsp(ga, dist)
    races = RaceDetector().check(ex)
    print(f"  regular code: {len(races)} race report(s) "
          "(the paper finds none either)")


if __name__ == "__main__":
    main()
