"""Quickstart: measure the race-free MIS speedup on one input.

Runs the baseline (racy) and race-free variants of ECL-MIS on a scaled
``amazon0601`` analog on the simulated Titan V, prints both runtimes
and the speedup, and verifies both results are valid maximal
independent sets.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Study, Variant
from repro.algorithms import verify
from repro.graphs import load_suite_graph


def main() -> None:
    study = Study(reps=9)  # the paper's protocol: median of nine runs

    base = study.run("mis", "amazon0601", "titanv", Variant.BASELINE)
    free = study.run("mis", "amazon0601", "titanv", Variant.RACE_FREE)

    graph = load_suite_graph("amazon0601")
    verify.check_mis(graph, base.last_run.output["in_set"])
    verify.check_mis(graph, free.last_run.output["in_set"])

    speedup = base.median_ms / free.median_ms
    print(f"input: {graph!r}")
    print(f"baseline  (racy)      median runtime: {base.median_ms:8.4f} ms "
          f"({base.last_run.rounds} rounds)")
    print(f"race-free (atomics)   median runtime: {free.median_ms:8.4f} ms "
          f"({free.last_run.rounds} rounds)")
    print(f"race-free speedup: {speedup:.2f}x  "
          f"(paper: 1.05-1.11x geomean — removing the races makes MIS "
          f"faster)")
    print("both results verified as valid maximal independent sets")


if __name__ == "__main__":
    main()
