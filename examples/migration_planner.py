"""Plan an incremental race-removal migration.

Suppose you maintain a racy high-performance code and want to migrate
it to race-freedom gradually, shipping after each step.  In what order
should you convert the racy sites, and what does each step cost?

This script computes the greedy cheapest-next-site conversion order for
a chosen algorithm (the Indigo3-style mutation machinery underneath)
and prints the cost curve.  For every code in the suite the budget
concentrates in one dominant site — convert everything else first and
you get most of the way to safety nearly for free.

Run:  python examples/migration_planner.py [algo] [input] [device]
"""

from __future__ import annotations

import sys

from repro.core.variants import get_algorithm
from repro.gpu.device import get_device
from repro.graphs import load_suite_graph
from repro.patterns.mutator import migration_path
from repro.utils.tables import format_table


def main() -> None:
    algo_key = sys.argv[1] if len(sys.argv) > 1 else "cc"
    input_name = sys.argv[2] if len(sys.argv) > 2 else "cit-Patents"
    device = get_device(sys.argv[3] if len(sys.argv) > 3 else "titanv")

    algo = get_algorithm(algo_key)
    graph = load_suite_graph(input_name)
    if algo.needs_weights:
        graph = graph.with_random_weights(seed=1)

    steps = migration_path(algo_key, graph, device)
    base = steps[0].runtime_ms
    rows = []
    prev = base
    for step in steps:
        rows.append([
            step.variant.label,
            step.remaining_racy_sites,
            step.runtime_ms,
            step.runtime_ms / base,
            (step.runtime_ms - prev) / base,
        ])
        prev = step.runtime_ms

    print(f"migration plan for {algo.full_name} on {graph!r} "
          f"({device.name}):\n")
    print(format_table(
        ["Step", "Racy sites left", "Runtime ms", "vs baseline",
         "Step cost"],
        rows, float_format="{:.3f}"))
    total = steps[-1].runtime_ms / base
    last_step = (steps[-1].runtime_ms - steps[-2].runtime_ms) / base
    print(f"\nfull conversion costs {total:.2f}x the baseline; "
          f"{100 * last_step / (total - 1):.0f}% of that is the final "
          "(dominant-site) step.")
    print("Every intermediate step still contains data races — ship "
          "only the last row.")


if __name__ == "__main__":
    main()
