"""Fig. 1, executed: word tearing and stale-register hazards.

Reproduces the paper's four-thread example on the SIMT interpreter:

* T1 plainly stores 0 into a shared 64-bit ``val`` initialized to -1 —
  the store decomposes into two 32-bit pieces.
* T2 plainly loads ``val`` and can observe half-written chimeras.
* T3 atomically adds 6; interleaving with T1's tearing can leave the
  nonsensical final value 0x0000000100000000.
* T4 polls ``val`` with plain loads; the compiler register-caches the
  first load and the loop never terminates (the simulator detects the
  livelock).

Run:  python examples/word_tearing_demo.py
"""

from __future__ import annotations

from collections import Counter

from repro.errors import DeadlockError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.atomics import atomic_add
from repro.gpu.interleave import AdversarialScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor

SCHEDULES = 400


def t1_t2_chimeras() -> Counter:
    """T1 tears a 64-bit store while T2 reads."""
    observed: Counter = Counter()

    def kernel(ctx, val):
        if ctx.tid == 0:  # T1: high half first, like one possible codegen
            yield ctx.store_span(val.subspan(0, 4, 4), 0, AccessKind.PLAIN)
            yield ctx.store_span(val.subspan(0, 0, 4), 0, AccessKind.PLAIN)
        else:             # T2
            v = yield ctx.load(val, 0, AccessKind.PLAIN)
            observed[v] += 1

    for seed in range(SCHEDULES):
        mem = GlobalMemory()
        val = mem.alloc("val", 1, DType.I64, fill=-1)
        SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                     record_events=False).launch(kernel, 2, val)
    return observed


def t1_t3_final_values() -> Counter:
    """T1 tears while T3 atomically adds 6."""
    finals: Counter = Counter()

    def kernel(ctx, val):
        if ctx.tid == 0:
            yield ctx.store_span(val.subspan(0, 4, 4), 0, AccessKind.PLAIN)
            yield ctx.store_span(val.subspan(0, 0, 4), 0, AccessKind.PLAIN)
        else:
            yield from atomic_add(ctx, val, 0, 6)

    for seed in range(SCHEDULES):
        mem = GlobalMemory()
        val = mem.alloc("val", 1, DType.I64, fill=-1)
        SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                     record_events=False).launch(kernel, 2, val)
        finals[mem.element_read(val, 0)] += 1
    return finals


def t4_livelock() -> str:
    """T4 spins on a register-cached plain load."""

    def kernel(ctx, val):
        if ctx.tid == 0:
            for _ in range(5):
                yield ctx.load(val, 0, AccessKind.VOLATILE)
            yield ctx.store(val, 0, 0, AccessKind.PLAIN)
        else:
            while True:
                data = yield ctx.load(val, 0, AccessKind.PLAIN)
                if data != -1:
                    return

    mem = GlobalMemory()
    val = mem.alloc("val", 1, DType.I32, fill=-1)
    try:
        SimtExecutor(mem).launch(kernel, 2, val)
        return "terminated (a less aggressive compiler model)"
    except DeadlockError as exc:
        return f"livelock detected: {exc}"


def main() -> None:
    print("=== T1 (plain 64-bit store) vs T2 (plain load) ===")
    for value, count in sorted(t1_t2_chimeras().items()):
        tag = ""
        if value not in (-1, 0):
            tag = "   <-- CHIMERA (word tearing)"
        print(f"  T2 observed {value:#021x} ({value}) x{count}{tag}")

    print("\n=== T1 (plain, tearing) vs T3 (atomicAdd 6) ===")
    for value, count in sorted(t1_t3_final_values().items()):
        tag = ""
        if value == 0x0000000100000000:
            tag = "   <-- the paper's nonsensical outcome"
        print(f"  final val = {value:#021x} ({value}) x{count}{tag}")

    print("\n=== T4 (plain polling loop) ===")
    print(" ", t4_livelock())
    print("\nConclusion: only atomic accesses make these programs "
          "well-defined (Section II.A).")


if __name__ == "__main__":
    main()
