"""Exhaustive schedule checking with a replayable counterexample.

Random schedules *sample* the interleaving space; this demo uses
``repro.check`` to *search* it:

1. the classic unprotected counter — DPOR enumerates the full bounded
   schedule space (4 representative schedules vs. 6 for naive DFS),
   finds the lost update, and minimizes the failing schedule to a
   single forced preemption that replays bit-identically;
2. the relaxed-atomic fix — the *complete* bounded search passes with
   zero actual or predicted races: a guarantee no amount of random
   sampling can give;
3. a label-propagation kernel checked against the suite's own
   ``check_components`` verifier on *every* explored schedule — the
   algorithm-level invariant holds even though the kernel is racy by
   the access-kind rules.

Run:  python examples/schedule_exploration_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.verify import check_components
from repro.check import check
from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph
from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.atomics import atomic_add


def racy_counter(ctx, ctr):
    v = yield ctx.load(ctr, 0, AccessKind.VOLATILE)
    yield ctx.store(ctr, 0, v + 1, AccessKind.VOLATILE)


def atomic_counter(ctx, ctr):
    yield from atomic_add(ctx, ctr, 0, 1)


def counter_setup(mem):
    return (mem.alloc("ctr", 1, DType.I32),)


def counter_ok(mem, handles):
    return mem.element_read(handles[0], 0) == 2


def main() -> None:
    print("=== 1. the unprotected counter, searched exhaustively ===")
    report = check(racy_counter, 2, setup=counter_setup,
                   invariant=counter_ok, compare_naive=True)
    print(report.summary())
    failure = next(f for f in report.failures if f.kind == "invariant")
    print(f"\nminimized repro schedule: {failure.repro_log.compact()}")
    print(f"forced preemptions after ddmin: "
          f"{len(failure.minimized.deviations)} "
          f"(from {failure.minimized.initial_deviations})")
    print(f"replay certified bit-identical: {failure.replay_verified}")

    print("\n=== 2. the relaxed-atomic fix, proven over the same space ===")
    fixed = check(atomic_counter, 2, setup=counter_setup,
                  invariant=counter_ok)
    print(fixed.summary())
    assert fixed.ok and fixed.explore.complete

    print("\n=== 3. an algorithm invariant on every schedule ===")
    # path graph 0-1-2: all three vertices must converge to one label
    graph = CSRGraph.from_edges(3, [(0, 1), (1, 2)], directed=False,
                                symmetrize=True)

    def propagate(ctx, label):
        for neighbor in graph.neighbors(ctx.tid):
            v = yield ctx.load(label, int(neighbor), AccessKind.VOLATILE)
            yield ctx.atomic_rmw(label, ctx.tid, RMWOp.MIN, v)

    def setup(mem):
        label = mem.alloc("label", 3, DType.I32)
        mem.upload(label, np.arange(3))
        return (label,)

    def execute(ex, handles):
        # two rounds make the min label reach both path endpoints on
        # every schedule
        for _ in range(2):
            ex.launch(propagate, 3, *handles, block_dim=3)

    def components_hold(mem, handles):
        try:
            check_components(graph, mem.download(handles[0]))
        except ValidationError:
            return False
        return True

    from repro.check import Program
    result = check(Program("label-prop", setup, execute, components_hold),
                   budget="smoke")
    print(result.summary())
    print(f"\ninvariant held on all {result.explore.schedules} "
          f"explored schedules: "
          f"{not any(f.kind == 'invariant' for f in result.failures)}")


if __name__ == "__main__":
    main()
