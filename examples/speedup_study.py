"""A miniature of the paper's full study (Section V/VI).

Runs baseline vs. race-free for CC, GC, MIS, and MST on a handful of
undirected inputs and SCC on directed inputs, on two simulated GPUs,
then prints the per-input speedup tables, the geomean bars (Fig. 6
style), and the property correlations (Table IX style).

For the full 17+10-input, 4-device sweep use the benchmark harness:
    pytest benchmarks/ --benchmark-only -s

Run:  python examples/speedup_study.py
"""

from __future__ import annotations

from repro import Study
from repro.core.report import (
    correlation_table,
    fig6_bars,
    geomean_summary,
    speedup_table,
)

UNDIRECTED = ["internet", "amazon0601", "cit-Patents", "rmat16.sym",
              "USA-road-d.NY"]
DIRECTED = ["star", "toroid-wedge", "flickr", "web-Google"]
DEVICES = ["titanv", "4090"]


def main() -> None:
    study = Study(reps=3)

    all_cells = []
    for device in DEVICES:
        cells = study.speedup_table(device, ["cc", "gc", "mis", "mst"],
                                    UNDIRECTED)
        cells += [study.speedup("scc", name, device) for name in DIRECTED]
        all_cells += cells
        print(speedup_table(
            [c for c in cells if c.algorithm != "scc"],
            title=f"\nSpeedups of race-free codes on {device} "
                  "(cf. Tables IV-VII)"))
        print(speedup_table(
            [c for c in cells if c.algorithm == "scc"],
            title=f"\nSCC speedups on {device} (cf. Table VIII)"))

    print("\nGeometric-mean speedups (cf. Fig. 6; '|' marks 1.0):")
    print(fig6_bars(geomean_summary(all_cells)))

    print("\nProperty correlations (cf. Table IX):")
    print(correlation_table(all_cells))

    print("\nReading: >1 means the race-free code is FASTER. "
          "MIS gains from immediate visibility; CC/SCC pay for losing "
          "the L1-cached plain accesses.")


if __name__ == "__main__":
    main()
