"""Section VI.A's profiling argument, reproduced.

"The baseline CC code includes a particularly significant code section
with data races ... called pointer jumping.  However, the race-free CC
code performs an atomic read and an atomic write for every jump.
Profiling the two code versions revealed that the baseline code has a
much higher L1 hit rate for both loads and stores, which explains the
performance difference."

This script profiles baseline vs. race-free CC on one input and prints
the per-site traffic comparison: identical access *counts*, different
access *kinds*, and the collapse of the L1-path share that costs the
race-free version its performance.  The profiles are also emitted
through the telemetry registry (``repro_site_accesses_total`` and the
L1 gauges), and the script closes with the registry's view of the same
argument.

Run:  python examples/profile_cc.py [input-name] [device]
"""

from __future__ import annotations

import sys

from repro import telemetry
from repro.core.variants import Variant, get_algorithm
from repro.gpu.device import get_device
from repro.graphs import load_suite_graph
from repro.perf.profiler import (
    compare_profiles,
    dominant_racy_site,
    profile_run,
)


def main() -> None:
    input_name = sys.argv[1] if len(sys.argv) > 1 else "cit-Patents"
    device = get_device(sys.argv[2] if len(sys.argv) > 2 else "titanv")
    graph = load_suite_graph(input_name)
    algo = get_algorithm("cc")

    with telemetry.session() as (registry, _spans):
        base = profile_run(algo, graph, device, Variant.BASELINE, seed=7)
        free = profile_run(algo, graph, device, Variant.RACE_FREE, seed=7)

        print(f"profiling CC on {graph!r} ({device.name})\n")
        print(compare_profiles(base, free))
        print()
        hot = dominant_racy_site(base)
        print(f"dominant racy site: {hot}")
        print(f"L1-path share: baseline {base.l1_traffic_share:.0%} -> "
              f"race-free {free.l1_traffic_share:.0%}")
        print(f"runtime: baseline {base.runtime_ms:.4f} ms -> "
              f"race-free {free.runtime_ms:.4f} ms "
              f"(speedup {base.runtime_ms / free.runtime_ms:.2f}x)")
        print("\nSame access counts, same algorithm — the entire "
              "difference is where the accesses are served (L1 vs. L2 "
              "atomics).")

        share = registry.get("repro_profile_l1_traffic_share")
        print("\ntelemetry registry view "
              "(repro_profile_l1_traffic_share):")
        for labels, value in share.samples():
            print(f"  {dict(zip(share.labelnames, labels))}: {value:.4f}")


if __name__ == "__main__":
    main()
