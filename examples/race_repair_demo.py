"""Automated race repair, end to end: localize -> fix -> verify -> rank.

The paper removes data races *by hand* (Section IV) and prices the
result (Tables IV-VII).  This demo runs ``repro.repair`` on two
targets and narrates each pipeline stage:

1. **cc** — the label-jumping connected-components kernel.  The
   pipeline localizes the jump read/write races, filters the
   already-atomic hook and thread-private sites, promotes the suspects
   to relaxed atomics, proves the result race-free and
   output-equivalent with the DPOR explorer, and shows the ranked fix
   table: the minimal promotion prices exactly like the hand-written
   race-free variant while the seq-cst version visibly overpays.
2. **twophase** — a micro-kernel where promotion is the *wrong* fix
   (atomics serialize the accesses but still read the wrong phase);
   only the barrier insertion verifies, demonstrating that acceptance
   is semantic, not syntactic.

Run:  python examples/race_repair_demo.py
"""

from __future__ import annotations

from repro.repair import repair


def narrate(report) -> None:
    print(f"\n=== {report.target} ===")
    print(f"obligations localized: {len(report.obligations)}")
    for ob in report.obligations:
        tag = " (predicted only)" if ob.predicted_only else ""
        print(f"  {ob.obligation_id}{tag}")
    filtered = report.prefilter.filtered_sites
    if filtered:
        print("pre-filtered as provably race-free: "
              + ", ".join(f"{s}={report.prefilter.verdicts[s]}"
                          for s in sorted(filtered)))
    for verdict in report.candidates:
        mark = "ACCEPT" if verdict.accepted else f"reject:{verdict.verdict}"
        print(f"  [{mark}] {verdict.fixset.describe()}")
    print()
    from repro.repair.rank import format_table
    from repro.repair.targets import get_target
    print(format_table(get_target(report.target), report.ranked,
                       report.devices))


def main() -> None:
    cc_report = repair("cc", budget="smoke")
    narrate(cc_report)
    top = cc_report.top_fix
    worst = max(abs(r - 1.0) for r in top.vs_racefree.values())
    print(f"\ntop fix is within {worst:.1%} of the hand-written "
          "race-free variant on every device — repaired for free")

    tp_report = narrate_twophase()
    assert tp_report.ok and cc_report.ok
    print("\nboth targets repaired: every accepted fix is DPOR-verified "
          "race-free and output-equivalent")


def narrate_twophase():
    report = repair("twophase", budget="smoke")
    narrate(report)
    top = report.top_fix.fixset
    print(f"\nonly the barrier verifies here ({top.describe()}): "
          "atomic promotion serializes the accesses but still reads "
          "the wrong phase, and the verifier rejects it on the "
          "invariant, not on races")
    return report


if __name__ == "__main__":
    main()
