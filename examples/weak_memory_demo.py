"""Why "it worked on my GPU" is not portability.

The paper's core argument: racy code that happens to work on today's
hardware may break on a machine with a weaker memory system or a more
aggressive compiler.  This demo runs the same unsynchronized
publication idiom on three progressively weaker simulated machines:

1. the default machine (stores visible immediately) — the race is
   latent, results look fine;
2. the register-caching compiler — a polling loop livelocks;
3. the weak-memory machine (``memory_model="relaxed_gpu"``:
   out-of-order store buffers) — the reader observes the flag before
   the payload.

The race-free version (relaxed atomics) is correct on all three.

Run:  python examples/weak_memory_demo.py
"""

from __future__ import annotations

from repro.errors import DeadlockError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.atomics import atomic_read, atomic_write
from repro.gpu.interleave import AdversarialScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor

SEEDS = 150


def publish_plain(ctx, buf, got, scratch):
    """data then flag, plain stores; reader polls the flag."""
    if ctx.tid == 0:
        yield ctx.store(buf, 1, 99, AccessKind.PLAIN)   # payload
        yield ctx.store(buf, 0, 1, AccessKind.PLAIN)    # flag
        for _ in range(8):                              # stay busy
            yield ctx.load(scratch, 0, AccessKind.VOLATILE)
    else:
        for _ in range(8):
            flag = yield ctx.load(buf, 0, AccessKind.VOLATILE)
            if flag:
                data = yield ctx.load(buf, 1, AccessKind.VOLATILE)
                yield ctx.store(got, 0, data, AccessKind.PLAIN)
                return


def publish_plain_polling(ctx, buf, got, scratch):
    """Same, but the reader polls with PLAIN loads (register-cached)."""
    if ctx.tid == 0:
        for _ in range(4):
            yield ctx.load(scratch, 0, AccessKind.VOLATILE)
        yield ctx.store(buf, 1, 99, AccessKind.PLAIN)
        yield ctx.store(buf, 0, 1, AccessKind.PLAIN)
    else:
        while True:
            flag = yield ctx.load(buf, 0, AccessKind.PLAIN)
            if flag:
                data = yield ctx.load(buf, 1, AccessKind.PLAIN)
                yield ctx.store(got, 0, data, AccessKind.PLAIN)
                return


def publish_atomic(ctx, buf, got, scratch):
    """The race-free fix: atomic payload and flag."""
    if ctx.tid == 0:
        yield from atomic_write(ctx, buf, 1, 99)
        yield from atomic_write(ctx, buf, 0, 1)
        for _ in range(8):
            yield ctx.load(scratch, 0, AccessKind.VOLATILE)
    else:
        for _ in range(8):
            flag = yield from atomic_read(ctx, buf, 0)
            if flag:
                data = yield from atomic_read(ctx, buf, 1)
                yield ctx.store(got, 0, data, AccessKind.PLAIN)
                return


def trial(kernel, **executor_kwargs) -> str:
    """Run the idiom over many schedules; summarize what happened."""
    wrong = livelock = 0
    for seed in range(SEEDS):
        mem = GlobalMemory()
        buf = mem.alloc("buf", 2, DType.I32)
        got = mem.alloc("got", 1, DType.I32, fill=-1)
        scratch = mem.alloc("scratch", 1, DType.I32)
        ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                          record_events=False, max_steps=100_000,
                          **executor_kwargs)
        try:
            ex.launch(kernel, 2, buf, got, scratch)
        except DeadlockError:
            livelock += 1
            continue
        outcome = mem.element_read(got, 0)
        if outcome not in (-1, 99):  # -1: reader gave up before the flag
            wrong += 1
    if livelock:
        return f"{livelock}/{SEEDS} runs LIVELOCKED"
    if wrong:
        return f"{wrong}/{SEEDS} runs read a TORN/STALE payload"
    return "all runs correct"


def main() -> None:
    print("=== racy publication, default machine ===")
    print("  ", trial(publish_plain))
    print('  -> "benign": this machine happens to make it work\n')

    print("=== racy publication, register-caching compiler ===")
    print("  ", trial(publish_plain_polling))
    print("   -> the compiler hoists the polling load (Fig. 1's T4)\n")

    print("=== racy publication, weak-memory machine ===")
    print("  ", trial(publish_plain, memory_model="relaxed_gpu",
                      store_buffer_capacity=1))
    print("   -> the flag store drains before the payload store\n")

    print("=== race-free publication on every machine ===")
    print("   default:     ", trial(publish_atomic))
    print("   weak memory: ", trial(publish_atomic,
                                    memory_model="relaxed_gpu",
                                    store_buffer_capacity=1))
    print("\nNo such thing as a benign data race — only a machine that "
          "hasn't broken it yet (Section II).")


if __name__ == "__main__":
    main()
