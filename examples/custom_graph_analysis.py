"""Analyze your own graph with every algorithm in the suite.

Builds (or loads) a graph, runs all six codes in both variants on a
chosen device, validates every result against reference
implementations, and prints a per-algorithm access-traffic breakdown
showing *why* each code reacts to the race-removal transform the way it
does.

Usage:
    python examples/custom_graph_analysis.py [edge_list.txt] [device]

The optional edge-list file uses the text format of
``repro.graphs.io.write_edgelist``; without it, a synthetic
preferential-attachment graph is analyzed.
"""

from __future__ import annotations

import sys

from repro import Study, Variant
from repro.algorithms import verify
from repro.core.variants import get_algorithm, list_algorithms
from repro.graphs import generators as gen
from repro.graphs.io import read_edgelist
from repro.utils.tables import format_table

CHECKERS = {
    "cc": lambda g, out: verify.check_components(g, out["labels"]),
    "gc": lambda g, out: verify.check_coloring(g, out["colors"]),
    "mis": lambda g, out: verify.check_mis(g, out["in_set"]),
    "mst": lambda g, out: verify.check_mst(g, out["in_mst"]),
    "scc": lambda g, out: verify.check_scc(g, out["labels"]),
    "apsp": lambda g, out: verify.check_apsp(g, out["dist"]),
}


def main() -> None:
    if len(sys.argv) > 1:
        graph = read_edgelist(sys.argv[1])
        print(f"loaded {graph!r}")
    else:
        graph = gen.preferential_attachment(2000, 4, seed=42,
                                            name="pa-2000")
        print(f"generated {graph!r}")
    device = sys.argv[2] if len(sys.argv) > 2 else "titanv"

    study = Study(reps=3)
    rows = []
    for algo in list_algorithms():
        if algo.directed != graph.directed:
            continue
        if algo.key == "apsp" and graph.num_vertices > 600:
            print(f"skipping {algo.key}: dense matrix too large for "
                  f"{graph.num_vertices} vertices")
            continue
        runs = {}
        for variant in Variant:
            result = study.run(algo.key, graph, device, variant)
            CHECKERS[algo.key](study._prepare_graph(algo, graph),
                               result.last_run.output)
            runs[variant] = result
        base = runs[Variant.BASELINE]
        free = runs[Variant.RACE_FREE]
        stats = free.last_run.stats
        rows.append([
            algo.key,
            base.median_ms,
            free.median_ms,
            base.median_ms / free.median_ms if algo.has_races else 1.0,
            int(stats.atomic_loads + stats.atomic_stores),
            int(stats.atomic_rmws),
            free.last_run.rounds,
        ])
    print(format_table(
        ["algo", "baseline ms", "race-free ms", "speedup",
         "atomic ld/st", "RMWs", "rounds"], rows, float_format="{:.4f}"))
    print("\nAll results validated against reference implementations.")


if __name__ == "__main__":
    main()
