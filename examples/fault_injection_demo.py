"""Section II, weaponized: a fault-injection sweep over racy code.

The paper argues that "benign" data races are a latent reliability
hazard: torn wide stores plant chimera values, register-cached plain
loads can poll stale data forever, and none of it is guaranteed to be
caught.  This demo turns that hazard into a seeded adversary
(:class:`repro.gpu.FaultPlan`) and runs the paper's Table IV comparison
through the resilient sweep driver (:class:`repro.ResilientStudy`):

* **Racy baselines** are exposed: torn/dropped non-atomic stores
  silently corrupt outputs (caught here only because validation is on),
  and stuck-stale plain reads turn polling loops into livelocks.
* **Race-free variants** are immune to the data-corrupting faults —
  every shared access is a single indivisible atomic — so the only
  thing that can hit them is a *transient* kernel abort, which fails
  loud and succeeds on retry.

The sweep itself survives all of it: failed cells become structured
records, the table renders ``FAIL(reason)`` cells with coverage-
annotated geomeans, and nothing crashes.

Run:  python examples/fault_injection_demo.py
"""

from __future__ import annotations

from repro.core.report import resilient_speedup_table
from repro.core.resilience import CellFailure, ResilientStudy
from repro.core.variants import Variant
from repro.gpu.faults import FaultPlan

#: the adversary: almost every repetition tears a non-atomic store,
#: stuck-stale reads are frequent, and one launch in four dies
#: transiently.  The seed makes the whole demo deterministic.
PLAN = "tear=0.9,stuck=0.7,abort=0.25"
SEED = 0

ALGOS = ["cc", "gc", "mis", "mst"]
INPUT = "internet"
DEVICE = "titanv"
REPS = 3


def run_sweep(retries: int) -> ResilientStudy:
    study = ResilientStudy(
        reps=REPS, validate=True, retries=retries,
        faults=FaultPlan.parse(PLAN, seed=SEED))
    for algo in ALGOS:
        for variant in (Variant.BASELINE, Variant.RACE_FREE):
            study.run_cell(algo, INPUT, DEVICE, variant)
    return study


def describe(study: ResilientStudy) -> None:
    for algo in ALGOS:
        for variant in (Variant.BASELINE, Variant.RACE_FREE):
            out = study.run_cell(algo, INPUT, DEVICE, variant)
            label = f"  {algo:4s} {variant.value:9s}"
            if isinstance(out, CellFailure):
                print(f"{label} FAIL({out.reason}) after {out.attempts} "
                      f"attempt(s): {out.message.splitlines()[0][:60]}")
            else:
                print(f"{label} ok ({out.median_ms:.4f} ms median)")


def main() -> None:
    print(f"Adversary: {PLAN} (seed {SEED}) on {ALGOS} / {INPUT} "
          f"/ {DEVICE}, {REPS} reps, validation on\n")

    print("=== pass 1: no retries (a naive sweep) ===")
    naive = run_sweep(retries=0)
    describe(naive)
    rf_faults = [f for f in naive.failures()
                 if f.variant == "racefree" and f.reason == "fault"]
    print(f"  -> {len(rf_faults)} race-free cell(s) lost to a transient "
          "abort that a retry would have absorbed\n")

    print("=== pass 2: retries=3 (the resilient sweep) ===")
    study = run_sweep(retries=3)
    describe(study)
    survivors = sum(
        1 for algo in ALGOS
        if not isinstance(
            study.run_cell(algo, INPUT, DEVICE, Variant.RACE_FREE),
            CellFailure))
    print(f"  -> all {survivors}/{len(ALGOS)} race-free variants "
          "survived the same adversity\n")

    cells = [study.speedup_cell(a, INPUT, DEVICE) for a in ALGOS]
    print(resilient_speedup_table(
        cells, title="Table IV analog under injected adversity"))

    reasons = {f.reason for f in study.failures()}
    print("\nConclusion: the racy baselines fail exactly the ways "
          f"Section II warns about ({', '.join(sorted(reasons))}), the "
          "all-atomic variants only ever fail *loud* — and loud "
          "failures are retryable.  Note the baselines that got lucky "
          "this time: a benign-looking race is a lottery, not a "
          "guarantee.")


if __name__ == "__main__":
    main()
