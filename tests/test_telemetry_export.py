"""Exporter tests: JSONL and Prometheus golden files, validators,
round-trips, and the console/summary renderings."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.telemetry import export
from repro.telemetry.metrics import SCOPE_PROCESS, MetricsRegistry
from repro.telemetry.spans import SpanRecorder

DATA_DIR = Path(__file__).parent / "data"


def build_registry() -> MetricsRegistry:
    """A small deterministic registry covering all three kinds."""
    reg = MetricsRegistry()
    acc = reg.counter("repro_accesses_total",
                      "Shared-memory accesses by class",
                      ("algorithm", "kind"))
    acc.inc(17326, "cc", "plain")
    acc.inc(1522, "cc", "atomic")
    reg.gauge("repro_l1_hit_rate", "L1 hit rate of plain accesses",
              ("algorithm", "variant")).set(0.9915, "cc", "baseline")
    reg.gauge("repro_l1_hit_rate", "L1 hit rate of plain accesses",
              ("algorithm", "variant")).set(0.9372, "cc", "racefree")
    h = reg.histogram("repro_runtime_ms", "Priced runtime (ms)",
                      ("algorithm",), buckets=(0.5, 1.0, 5.0))
    for value in (0.25, 0.75, 0.75, 3.0, 9.0):
        h.observe(value, "cc")
    reg.counter("repro_trace_cache_events_total", "Trace cache events",
                ("event",), scope=SCOPE_PROCESS).inc(4, "memory_hit")
    # a label value that needs escaping in the Prometheus rendering
    reg.gauge("repro_escapes", "Label escaping probe", ("path",)
              ).set(1, 'a"b\\c\nd')
    return reg


def build_spans() -> SpanRecorder:
    """A two-level span tree on an injected deterministic clock."""
    state = [0.0]

    def clock() -> float:
        state[0] += 0.125
        return state[0]

    rec = SpanRecorder(clock=clock)
    with rec.span("study.sweep", device="titanv") as sweep:
        with rec.span("sweep.cell", algorithm="cc",
                      input="internet") as cell:
            cell.set_sim_ms(1.5)
            cell.set(outcome="ok")
        sweep.set(cells=1)
    return rec


# ----------------------------------------------------------------------
# Golden files
# ----------------------------------------------------------------------
def test_jsonl_matches_golden():
    text = export.to_jsonl(build_registry(), build_spans())
    golden = (DATA_DIR / "telemetry_golden.jsonl").read_text()
    assert text == golden


def test_prometheus_matches_golden():
    text = export.to_prometheus(build_registry())
    golden = (DATA_DIR / "telemetry_golden.prom").read_text()
    assert text == golden


def test_goldens_validate():
    jsonl = (DATA_DIR / "telemetry_golden.jsonl").read_text()
    assert export.validate_jsonl_lines(jsonl.splitlines()) > 0
    prom = (DATA_DIR / "telemetry_golden.prom").read_text()
    assert export.validate_prometheus_text(prom) > 0


# ----------------------------------------------------------------------
# JSONL round-trip and validation errors
# ----------------------------------------------------------------------
def test_write_read_roundtrip(tmp_path):
    path = tmp_path / "out.jsonl"
    export.write_jsonl(path, build_registry(), build_spans())
    metrics, spans = export.read_jsonl(path)
    names = {rec["name"] for rec in metrics}
    assert "repro_accesses_total" in names
    assert "repro_runtime_ms" in names
    assert [s["name"] for s in spans] == ["sweep.cell", "study.sweep"]
    assert spans[0]["sim_ms"] == 1.5


def test_jsonl_requires_header_first():
    line = json.dumps({"type": "metric", "name": "x", "kind": "counter",
                       "labels": {}, "value": 1})
    with pytest.raises(ValueError, match="header"):
        export.validate_jsonl_lines([line])


def test_jsonl_rejects_unknown_type():
    lines = export.to_jsonl(build_registry()).splitlines()
    bad = json.dumps({"type": "mystery"})
    with pytest.raises(ValueError, match="type"):
        export.validate_jsonl_lines(lines + [bad])


def test_jsonl_rejects_histogram_count_mismatch():
    lines = export.to_jsonl(build_registry()).splitlines()
    for i, line in enumerate(lines):
        rec = json.loads(line)
        if rec.get("kind") == "histogram":
            rec["count"] += 1
            lines[i] = json.dumps(rec, sort_keys=True)
            break
    with pytest.raises(ValueError):
        export.validate_jsonl_lines(lines)


def test_jsonl_rejects_garbage():
    with pytest.raises(ValueError):
        export.validate_jsonl_lines(["not json at all"])


# ----------------------------------------------------------------------
# Prometheus rendering details
# ----------------------------------------------------------------------
def test_prometheus_histogram_is_cumulative():
    text = export.to_prometheus(build_registry())
    lines = [l for l in text.splitlines()
             if l.startswith("repro_runtime_ms_bucket")]
    counts = [float(l.rsplit(" ", 1)[1]) for l in lines]
    assert counts == sorted(counts)
    assert 'le="+Inf"' in lines[-1]
    assert counts[-1] == 5
    assert "repro_runtime_ms_sum" in text
    assert 'repro_runtime_ms_count{algorithm="cc"} 5' in text


def test_prometheus_label_escaping_roundtrips():
    text = export.to_prometheus(build_registry())
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    # the strict parser must accept its own escaping
    export.validate_prometheus_text(text)


def test_prometheus_validator_rejects_bucket_regression():
    good = export.to_prometheus(build_registry())
    bad = good.replace(
        'repro_runtime_ms_bucket{algorithm="cc",le="+Inf"} 5',
        'repro_runtime_ms_bucket{algorithm="cc",le="+Inf"} 1')
    with pytest.raises(ValueError):
        export.validate_prometheus_text(bad)


def test_prometheus_validator_rejects_untyped_sample():
    with pytest.raises(ValueError):
        export.validate_prometheus_text("mystery_metric 1\n")


# ----------------------------------------------------------------------
# Console + summarize
# ----------------------------------------------------------------------
def test_console_table_lists_every_family():
    text = export.to_console(build_registry())
    for name in ("repro_accesses_total", "repro_l1_hit_rate",
                 "repro_runtime_ms", "repro_trace_cache_events_total"):
        assert name in text


def test_summarize_rolls_up_spans(tmp_path):
    path = tmp_path / "t.jsonl"
    export.write_jsonl(path, build_registry(), build_spans())
    metrics, spans = export.read_jsonl(path)
    text = export.summarize(metrics, spans)
    assert "study.sweep" in text
    assert "sweep.cell" in text
    assert "repro_l1_hit_rate" in text
