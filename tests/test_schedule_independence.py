"""Property: race-free programs are schedule-independent.

This is the paper's core correctness claim in executable form — a
program without data races has one defined meaning, no matter how the
hardware interleaves it.  Hypothesis generates random *race-free*
multi-threaded programs (threads write only their own cells, touch
shared cells only atomically) and the final memory state must be
identical under round-robin, random, adversarial, warp-lockstep, and
weak-memory execution.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.interleave import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor

N_THREADS = 4
N_SHARED = 2

# one instruction: (opcode, operand)
#   ("own_store", value)   - plain store to the thread's private cell
#   ("own_load", _)        - plain load of the private cell
#   ("atomic_add", value)  - atomicAdd on a shared cell
#   ("atomic_max", value)  - atomicMax on a shared cell
#   ("atomic_load", cell)  - atomic load of a shared cell
#   ("atomic_store_own", value) - atomic store to a per-thread shared slot
_instruction = st.one_of(
    st.tuples(st.just("own_store"), st.integers(-100, 100)),
    st.tuples(st.just("own_load"), st.just(0)),
    st.tuples(st.just("atomic_add"), st.integers(1, 5)),
    st.tuples(st.just("atomic_max"), st.integers(-10, 50)),
    st.tuples(st.just("atomic_load"), st.integers(0, N_SHARED - 1)),
)

_programs = st.lists(
    st.lists(_instruction, min_size=1, max_size=8),
    min_size=N_THREADS, max_size=N_THREADS,
)


def _run(programs, executor_factory):
    mem = GlobalMemory()
    own = mem.alloc("own", N_THREADS, DType.I32)
    shared = mem.alloc("shared", N_SHARED, DType.I32)
    ex = executor_factory(mem)

    def kernel(ctx, own, shared):
        acc = 0
        for opcode, arg in programs[ctx.tid]:
            if opcode == "own_store":
                yield ctx.store(own, ctx.tid, arg, AccessKind.PLAIN)
            elif opcode == "own_load":
                acc ^= (yield ctx.load(own, ctx.tid, AccessKind.PLAIN))
            elif opcode == "atomic_add":
                # adds commute with adds, so cell 0 is add-only
                yield ctx.atomic_rmw(shared, 0, RMWOp.ADD, arg)
            elif opcode == "atomic_max":
                # maxes commute with maxes, so cell 1 is max-only
                yield ctx.atomic_rmw(shared, 1, RMWOp.MAX, arg)
            elif opcode == "atomic_load":
                acc ^= (yield ctx.load(shared, arg, AccessKind.ATOMIC))
        # fold the loads into the private cell so they matter
        yield ctx.store(own, ctx.tid, acc & 0x7FFFFFFF, AccessKind.PLAIN)

    ex.launch(kernel, N_THREADS, own, shared)
    return mem.download(own), mem.download(shared)


_EXECUTORS = [
    lambda mem: SimtExecutor(mem, scheduler=RoundRobinScheduler(),
                             record_events=False),
    lambda mem: SimtExecutor(mem, scheduler=RandomScheduler(1),
                             record_events=False),
    lambda mem: SimtExecutor(mem, scheduler=AdversarialScheduler(2),
                             record_events=False),
    lambda mem: SimtExecutor(mem, warp_lockstep=True, warp_size=2,
                             record_events=False),
    lambda mem: SimtExecutor(mem, weak_memory=True,
                             scheduler=AdversarialScheduler(3),
                             record_events=False),
]


@settings(max_examples=40, deadline=None)
@given(_programs)
def test_shared_commutative_state_schedule_independent(programs):
    """Commutative atomic updates (add/max) must commute: the shared
    cells end identical under every execution mode."""
    results = [_run(programs, factory) for factory in _EXECUTORS]
    baseline_shared = results[0][1]
    for _, shared in results[1:]:
        assert np.array_equal(shared, baseline_shared)


@settings(max_examples=40, deadline=None)
@given(_programs)
def test_programs_without_atomic_loads_fully_deterministic(programs):
    """Drop the (legitimately racy-in-time) atomic loads: everything
    the program computes is then schedule-independent, private cells
    included."""
    filtered = [
        [ins for ins in prog if ins[0] != "atomic_load"]
        or [("own_store", 1)]
        for prog in programs
    ]
    results = [_run(filtered, factory) for factory in _EXECUTORS]
    base_own, base_shared = results[0]
    for own, shared in results[1:]:
        assert np.array_equal(own, base_own)
        assert np.array_equal(shared, base_shared)
