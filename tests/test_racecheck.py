"""Tests for the dynamic race detector (the Compute Sanitizer stand-in)."""

from __future__ import annotations

import pytest

from repro.errors import DataRaceError
from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector, summarize_races
from repro.gpu.simt import SimtExecutor


def run(kernel, n_threads, *alloc_spec, launches=1):
    mem = GlobalMemory()
    handles = [mem.alloc(f"a{i}", length, dtype)
               for i, (length, dtype) in enumerate(alloc_spec)]
    ex = SimtExecutor(mem)
    for _ in range(launches):
        ex.launch(kernel, n_threads, *handles)
    return ex


class TestDetection:
    def test_write_write_race(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid)

        reports = RaceDetector().check(run(kernel, 2, (1, DType.I32)))
        assert len(reports) == 1
        assert reports[0].kind == "write-write"

    def test_read_write_race(self):
        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield ctx.load(arr, 0)
            else:
                yield ctx.store(arr, 0, 1)

        reports = RaceDetector().check(run(kernel, 2, (1, DType.I32)))
        assert len(reports) == 1
        assert reports[0].kind == "read-write"

    def test_volatile_does_not_fix_the_race(self):
        """Volatile prevents register caching but not the race itself."""

        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid, AccessKind.VOLATILE)

        assert RaceDetector().check(run(kernel, 2, (1, DType.I32)))

    def test_atomic_pair_is_not_a_race(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid, AccessKind.ATOMIC)

        assert not RaceDetector().check(run(kernel, 2, (1, DType.I32)))

    def test_atomic_vs_plain_is_a_race(self):
        """One atomic access does not synchronize the other side."""

        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield ctx.store(arr, 0, 1, AccessKind.ATOMIC)
            else:
                yield ctx.load(arr, 0, AccessKind.PLAIN)

        assert RaceDetector().check(run(kernel, 2, (1, DType.I32)))

    def test_concurrent_reads_are_fine(self):
        def kernel(ctx, arr):
            yield ctx.load(arr, 0)

        assert not RaceDetector().check(run(kernel, 8, (1, DType.I32)))

    def test_disjoint_elements_are_fine(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, ctx.tid, 1)

        assert not RaceDetector().check(run(kernel, 8, (8, DType.I32)))

    def test_adjacent_bytes_of_one_word_are_fine(self):
        """Different bytes are different memory locations (C++ model)."""

        def kernel(ctx, arr):
            yield ctx.store(arr, ctx.tid, 1)

        assert not RaceDetector().check(run(kernel, 4, (4, DType.U8)))

    def test_rmw_pairs_are_fine(self):
        def kernel(ctx, arr):
            yield ctx.atomic_rmw(arr, 0, RMWOp.ADD, 1)

        assert not RaceDetector().check(run(kernel, 8, (1, DType.I32)))


class TestHappensBefore:
    def test_kernel_boundary_orders_accesses(self):
        """iGuard's false-positive source: the implicit barrier between
        launches must be honoured."""

        def writer(ctx, arr):
            if ctx.tid == 0:
                yield ctx.store(arr, 0, 1)

        def reader(ctx, arr):
            if ctx.tid == 1:
                yield ctx.load(arr, 0)

        mem = GlobalMemory()
        arr = mem.alloc("a", 1, DType.I32)
        ex = SimtExecutor(mem)
        ex.launch(writer, 2, arr)
        ex.launch(reader, 2, arr)
        assert not RaceDetector().check(ex)

    def test_block_barrier_orders_accesses(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, ctx.tid, 1)
            yield ctx.barrier()
            yield ctx.load(arr, (ctx.tid + 1) % 2)

        ex = run(kernel, 2, (2, DType.I32))
        assert not RaceDetector().check(ex)

    def test_barrier_does_not_order_across_blocks(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid)
            yield ctx.barrier()

        mem = GlobalMemory()
        arr = mem.alloc("a", 1, DType.I32)
        ex = SimtExecutor(mem)
        ex.launch(kernel, 2, arr, block_dim=1)  # two blocks
        assert RaceDetector().check(ex)


class TestReporting:
    def test_fail_on_race_raises(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid)

        ex = run(kernel, 2, (1, DType.I32))
        with pytest.raises(DataRaceError):
            RaceDetector().check(ex, fail_on_race=True)

    def test_max_reports_cap(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, ctx.tid % 4, ctx.tid)

        ex = run(kernel, 16, (4, DType.I32))
        reports = RaceDetector(max_reports=2,
                               dedupe_by_location=False).check(ex)
        assert len(reports) == 2

    def test_dedupe_groups_by_location_kind(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid)

        ex = run(kernel, 8, (1, DType.I32))
        deduped = RaceDetector(dedupe_by_location=True).check(ex)
        full = RaceDetector(dedupe_by_location=False).check(ex)
        assert len(deduped) < len(full)

    def test_summary_counts(self):
        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield ctx.store(arr, 0, 1)
            else:
                yield ctx.load(arr, 0)

        reports = RaceDetector().check(run(kernel, 3, (1, DType.I32)))
        summary = summarize_races(reports)
        assert "a0" in summary
        assert summary["a0"]["read-write"] >= 1

    def test_describe_mentions_threads(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid)

        reports = RaceDetector().check(run(kernel, 2, (1, DType.I32)))
        text = reports[0].describe()
        assert "thread" in text and "write-write" in text


class TestSiteKeyDedupe:
    """Regression tests for the dedupe key: distinct racy program sites
    on ONE array must yield distinct reports (the old key collapsed a
    whole array's races into one line per kind pair)."""

    def test_distinct_elements_get_distinct_reports(self):
        def kernel(ctx, arr):
            # threads {0,1} race on arr[0]; threads {2,3} race on arr[1]
            yield ctx.store(arr, ctx.tid // 2, ctx.tid)

        reports = RaceDetector(dedupe_by_location=True).check(
            run(kernel, 4, (2, DType.I32)))
        sites = {r.site_key for r in reports}
        starts = {r.first.span.start for r in reports}
        assert len(reports) == len(sites) == 2
        assert starts == {0, 4}  # both i32 elements reported

    def test_one_span_pair_still_collapses_to_one_report(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, ctx.tid)

        reports = RaceDetector(dedupe_by_location=True).check(
            run(kernel, 2, (1, DType.I32)))
        # all 4 bytes of the i32 span pair dedupe to a single report
        assert len(reports) == 1

    def test_site_key_distinguishes_direction_and_kind(self):
        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield ctx.store(arr, 0, 1)
            else:
                yield ctx.load(arr, 0)
                yield ctx.store(arr, 0, 2)

        reports = RaceDetector(dedupe_by_location=True).check(
            run(kernel, 2, (1, DType.I32)))
        kinds = {(r.kind, r.first.is_write, r.second.is_write)
                 for r in reports}
        assert len(kinds) == len(reports)  # no two reports share a key
        assert {k[0] for k in kinds} >= {"write-write"}

    def test_pairwise_engine_uses_the_same_key(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, ctx.tid // 2, ctx.tid)

        reports = RaceDetector(engine="pairwise",
                               dedupe_by_location=True).check(
            run(kernel, 4, (2, DType.I32)))
        assert len(reports) == 2
