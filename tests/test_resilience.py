"""Tests for the resilient sweep layer (repro.core.resilience).

Covers the run_guarded failure taxonomy, retry-with-fresh-seed
behavior, livelock-to-record conversion, per-cell isolation inside a
sweep, checkpoint/resume (including the only-missing-cells guarantee
and corrupt checkpoints), degraded report rendering, and the
bit-identical no-fault regression against the plain Study.
"""

from __future__ import annotations

import pytest

from repro.core.report import resilient_speedup_table
from repro.core.resilience import (
    CellBudget,
    CellFailure,
    ResilientStudy,
    run_guarded,
)
from repro.core.study import SpeedupCell, Study
from repro.core.variants import Variant
from repro.errors import (
    CellTimeoutError,
    DeadlockError,
    StudyError,
    TransientKernelFault,
    ValidationError,
)
from repro.gpu.faults import FaultPlan

DEVICE = "titanv"
INPUT = "internet"


class TestRunGuarded:
    def test_success_passes_value_through(self):
        value, failure = run_guarded(lambda attempt: 42)
        assert value == 42 and failure is None

    def test_transient_fault_retried_with_attempt_index(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise TransientKernelFault("boom")
            return "ok"

        value, failure = run_guarded(flaky, retries=3)
        assert value == "ok" and failure is None
        assert calls == [0, 1, 2]

    def test_retries_exhausted_reports_fault(self):
        def always(attempt):
            raise TransientKernelFault("still dead")

        value, failure = run_guarded(always, retries=2)
        assert value is None
        assert failure.reason == "fault"
        assert failure.attempts == 3
        assert "still dead" in failure.message

    def test_backoff_grows_with_full_jitter(self):
        sleeps = []

        def always(attempt):
            raise TransientKernelFault("x")

        run_guarded(always, retries=2, backoff_s=0.5,
                    sleep=sleeps.append)
        # no sleep after the final attempt; each delay is a full-jitter
        # draw from [0, base * 2**attempt)
        assert len(sleeps) == 2
        assert 0.0 <= sleeps[0] < 0.5
        assert 0.0 <= sleeps[1] < 1.0
        # the jitter stream is deterministic: a rerun sleeps identically
        repeat = []
        run_guarded(always, retries=2, backoff_s=0.5,
                    sleep=repeat.append)
        assert repeat == sleeps

    def test_explicit_backoff_policy_without_jitter(self):
        from repro.utils.backoff import BackoffPolicy

        sleeps = []

        def always(attempt):
            raise TransientKernelFault("x")

        run_guarded(always, retries=2,
                    backoff=BackoffPolicy(base_s=0.5, jitter=False),
                    sleep=sleeps.append)
        assert sleeps == [0.5, 1.0]  # the legacy fixed shape

    def test_backoff_never_sleeps_past_the_deadline(self):
        from repro.utils.backoff import BackoffPolicy

        sleeps = []

        def always(attempt):
            raise TransientKernelFault("x")

        run_guarded(always, retries=3,
                    backoff=BackoffPolicy(base_s=100.0, jitter=False),
                    budget=CellBudget(max_seconds=0.05),
                    sleep=sleeps.append)
        assert sleeps and all(s <= 0.05 for s in sleeps)

    def test_livelock_recorded_not_raised(self):
        def spin(attempt):
            raise DeadlockError("polling forever")

        value, failure = run_guarded(spin, retries=5)
        assert value is None
        assert failure.reason == "livelock"
        assert failure.attempts == 1  # livelocks are not retried

    def test_validation_and_timeout_reasons(self):
        _, f = run_guarded(lambda a: (_ for _ in ()).throw(
            ValidationError("bad")))
        assert f.reason == "validation"
        _, f = run_guarded(lambda a: (_ for _ in ()).throw(
            CellTimeoutError("slow")))
        assert f.reason == "timeout"

    def test_non_repro_errors_propagate(self):
        with pytest.raises(ZeroDivisionError):
            run_guarded(lambda a: 1 / 0)

    def test_wall_clock_budget_stops_retry_loop(self):
        def always(attempt):
            raise TransientKernelFault("x")

        _, failure = run_guarded(
            always, retries=50,
            budget=CellBudget(max_seconds=0.0))
        assert failure.reason in ("timeout", "fault")
        assert failure.attempts <= 2

    def test_simt_livelock_becomes_record(self, tiny_graph):
        # a real kernel-level execution under a tiny micro-step budget:
        # the executor's watchdog fires DeadlockError, which the guard
        # turns into a recorded livelock instead of a crash
        from repro.algorithms import cc
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.simt import SimtExecutor

        def attempt(attempt_idx):
            ex = SimtExecutor(GlobalMemory(), record_events=False,
                              max_steps=50)
            return cc.run_simt(tiny_graph, Variant.BASELINE,
                               executor=ex)

        value, failure = run_guarded(attempt)
        assert value is None
        assert failure.reason == "livelock"
        assert "micro-steps" in failure.message


class TestCellIsolation:
    def test_failing_cell_does_not_stop_sweep(self):
        faults = FaultPlan.parse("stuck=1.0", seed=0)
        study = ResilientStudy(reps=2, faults=faults)
        sweep = study.sweep(DEVICE, ["cc", "gc"], [INPUT])
        # cc baseline livelocks (plain polling loop); gc has no plain
        # shared loads, so its cells complete
        assert len(sweep.cells) == 2
        cc_cell, gc_cell = sweep.cells
        assert isinstance(cc_cell, CellFailure)
        assert cc_cell.reason == "livelock"
        assert isinstance(gc_cell, SpeedupCell)
        assert sweep.coverage == (1, 2)

    def test_surviving_variant_still_recorded(self):
        faults = FaultPlan.parse("stuck=1.0", seed=0)
        study = ResilientStudy(reps=2, faults=faults)
        out = study.speedup_cell("cc", INPUT, DEVICE)
        assert isinstance(out, CellFailure)
        assert out.variant == "baseline"
        # the race-free half of the cell completed and is memoized
        free = study.run_cell("cc", INPUT, DEVICE, Variant.RACE_FREE)
        assert not isinstance(free, CellFailure)

    def test_failure_memoized_like_results(self):
        faults = FaultPlan.parse("stuck=1.0", seed=0)
        study = ResilientStudy(reps=2, faults=faults)
        first = study.run_cell("cc", INPUT, DEVICE, Variant.BASELINE)
        executed = study.cells_executed
        again = study.run_cell("cc", INPUT, DEVICE, Variant.BASELINE)
        assert again is first
        assert study.cells_executed == executed

    def test_strict_run_raises_on_failure(self):
        faults = FaultPlan.parse("stuck=1.0", seed=0)
        study = ResilientStudy(reps=2, faults=faults)
        with pytest.raises(StudyError, match=r"FAIL\(livelock\)"):
            study.run("cc", INPUT, DEVICE, Variant.BASELINE)

    def test_retry_absorbs_transient_abort(self):
        # abort=0.5: some attempt fails, a later one succeeds; with
        # enough retries the cell must complete
        faults = FaultPlan.parse("abort=0.5", seed=1)
        study = ResilientStudy(reps=3, retries=8, faults=faults)
        out = study.run_cell("cc", INPUT, DEVICE, Variant.RACE_FREE)
        assert not isinstance(out, CellFailure)

    def test_retries_exhausted_is_fault(self):
        faults = FaultPlan.parse("abort=1.0", seed=0)
        study = ResilientStudy(reps=1, retries=2, faults=faults)
        out = study.run_cell("cc", INPUT, DEVICE, Variant.BASELINE)
        assert isinstance(out, CellFailure)
        assert out.reason == "fault"
        assert out.attempts == 3

    def test_negative_retries_rejected(self):
        with pytest.raises(StudyError, match="retries"):
            ResilientStudy(retries=-1)


class TestBitIdentity:
    def test_unfaulted_resilient_study_matches_plain_study(self):
        plain = Study(reps=3)
        resilient = ResilientStudy(reps=3, retries=2,
                                   budget=CellBudget(max_seconds=60))
        for variant in (Variant.BASELINE, Variant.RACE_FREE):
            a = plain.run("cc", INPUT, DEVICE, variant)
            b = resilient.run("cc", INPUT, DEVICE, variant)
            assert a.runtimes_ms == b.runtimes_ms  # exact, not approx

    def test_table_iv_cells_identical(self):
        plain = Study(reps=2)
        resilient = ResilientStudy(reps=2)
        algos = ["cc", "gc", "mis", "mst"]
        expected = plain.speedup_table(DEVICE, algos, [INPUT])
        got = resilient.sweep(DEVICE, algos, [INPUT])
        assert got.failures == []
        for e, g in zip(expected, got.completed):
            assert (e.algorithm, e.input_name) == (g.algorithm,
                                                   g.input_name)
            assert e.baseline_ms == g.baseline_ms
            assert e.racefree_ms == g.racefree_ms


class TestCheckpointResume:
    def test_resume_runs_only_missing_cells(self, tmp_path):
        ck = tmp_path / "sweep.json"
        first = ResilientStudy(reps=2, checkpoint=ck)
        first.sweep(DEVICE, ["cc", "gc"], [INPUT])
        assert first.cells_executed == 4  # 2 algos x 2 variants

        # "crash" and resume: a fresh study loads the checkpoint and a
        # wider sweep executes only the genuinely new cells
        second = ResilientStudy(reps=2, checkpoint=ck)
        n_results, n_failures = second.load_checkpoint()
        assert (n_results, n_failures) == (4, 0)
        second.sweep(DEVICE, ["cc", "gc"], [INPUT])
        assert second.cells_executed == 0
        second.sweep(DEVICE, ["cc", "gc", "mis"], [INPUT])
        assert second.cells_executed == 2  # just mis x 2 variants

    def test_resumed_results_match_fresh_run(self, tmp_path):
        ck = tmp_path / "sweep.json"
        first = ResilientStudy(reps=2, checkpoint=ck)
        fresh = first.sweep(DEVICE, ["cc"], [INPUT])

        second = ResilientStudy(reps=2, checkpoint=ck)
        second.load_checkpoint()
        resumed = second.sweep(DEVICE, ["cc"], [INPUT])
        assert resumed.completed[0].baseline_ms == \
            fresh.completed[0].baseline_ms
        assert resumed.completed[0].racefree_ms == \
            fresh.completed[0].racefree_ms

    def test_failures_checkpointed_and_reloaded(self, tmp_path):
        ck = tmp_path / "sweep.json"
        faults = FaultPlan.parse("stuck=1.0", seed=0)
        first = ResilientStudy(reps=2, faults=faults, checkpoint=ck)
        first.sweep(DEVICE, ["cc"], [INPUT])
        assert len(first.failures()) == 1

        second = ResilientStudy(reps=2, faults=faults, checkpoint=ck)
        n_results, n_failures = second.load_checkpoint()
        assert n_failures == 1
        out = second.run_cell("cc", INPUT, DEVICE, Variant.BASELINE)
        assert isinstance(out, CellFailure)
        assert out.reason == "livelock"
        assert second.cells_executed == 0  # failures resume too

    def test_checkpoint_written_after_every_cell(self, tmp_path):
        import json

        ck = tmp_path / "sweep.json"
        study = ResilientStudy(reps=1, checkpoint=ck)
        study.run_cell("cc", INPUT, DEVICE, Variant.BASELINE)
        assert len(json.loads(ck.read_text())["results"]) == 1
        study.run_cell("cc", INPUT, DEVICE, Variant.RACE_FREE)
        assert len(json.loads(ck.read_text())["results"]) == 2

    def test_corrupt_checkpoint_raises_study_error(self, tmp_path):
        ck = tmp_path / "sweep.json"
        ck.write_text('{"format": 2, "reps": 2, ')  # torn write
        study = ResilientStudy(reps=2, checkpoint=ck)
        with pytest.raises(StudyError, match="corrupt or partial"):
            study.load_checkpoint()

    def test_reps_mismatch_rejected(self, tmp_path):
        ck = tmp_path / "sweep.json"
        ResilientStudy(reps=2, checkpoint=ck).run_cell(
            "cc", INPUT, DEVICE, Variant.BASELINE)
        with pytest.raises(StudyError, match="different reps/scale"):
            ResilientStudy(reps=5, checkpoint=ck).load_checkpoint()

    def test_no_checkpoint_path_is_an_error(self):
        study = ResilientStudy(reps=1)
        with pytest.raises(StudyError, match="no checkpoint path"):
            study.load_checkpoint()
        with pytest.raises(StudyError, match="no checkpoint path"):
            study.save_checkpoint()


class TestDegradedReport:
    def _mixed_cells(self):
        faults = FaultPlan.parse("stuck=1.0", seed=0)
        study = ResilientStudy(reps=2, faults=faults)
        return study.sweep(DEVICE, ["cc", "gc"], [INPUT]).cells

    def test_failures_render_with_reason(self):
        text = resilient_speedup_table(self._mixed_cells())
        assert "FAIL(livelock)" in text
        assert "Geomean Speedup" in text

    def test_coverage_annotation(self):
        text = resilient_speedup_table(self._mixed_cells())
        assert "coverage: 1/2 cells completed" in text
        # the failed CC column footer cannot pretend to be a number
        assert "n/a" in text

    def test_partial_column_geomean_annotated(self):
        cells = [
            SpeedupCell("cc", "a", DEVICE, 2.0, 1.0),
            CellFailure("cc", "b", DEVICE, "baseline", "livelock",
                        "spin", 1, 0.1),
        ]
        text = resilient_speedup_table(cells)
        assert "[1/2]" in text

    def test_all_complete_has_full_coverage(self):
        study = ResilientStudy(reps=1)
        cells = study.sweep(DEVICE, ["cc"], [INPUT]).cells
        text = resilient_speedup_table(cells, title="T")
        assert text.startswith("T\n")
        assert "coverage: 1/1 cells completed" in text
        assert "FAIL" not in text

    def test_empty_cells_rejected(self):
        with pytest.raises(StudyError):
            resilient_speedup_table([])
