"""Tests for the Indigo-style pattern corpus."""

from __future__ import annotations

import pytest

from repro.core.variants import Variant
from repro.errors import ReproError
from repro.patterns import PATTERNS, PatternOutcome, get_pattern, run_pattern

RACY_PATTERNS = [p.name for p in PATTERNS.values() if p.expected_racy]
CLEAN_PATTERNS = [p.name for p in PATTERNS.values() if not p.expected_racy]


class TestCorpus:
    def test_corpus_is_nonempty_and_mixed(self):
        assert len(RACY_PATTERNS) >= 4
        assert len(CLEAN_PATTERNS) >= 2  # the false-positive probes

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ReproError):
            get_pattern("nope")

    def test_patterns_have_descriptions(self):
        for p in PATTERNS.values():
            assert len(p.description) > 20


class TestRacyPatterns:
    @pytest.mark.parametrize("name", RACY_PATTERNS)
    def test_baseline_variant_races(self, name):
        """Every racy pattern's buggy variant must be flagged."""
        result = run_pattern(name, Variant.BASELINE, seed=1)
        assert result.races > 0, f"{name}: detector missed the race"

    @pytest.mark.parametrize("name", RACY_PATTERNS)
    def test_fixed_variant_clean_and_correct(self, name):
        for seed in range(4):
            result = run_pattern(name, Variant.RACE_FREE, seed=seed)
            assert result.races == 0, f"{name}: fix still races"
            assert result.outcome is PatternOutcome.CORRECT, \
                f"{name}: fix computed a wrong result (seed {seed})"

    def test_lost_update_actually_loses_updates(self):
        outcomes = {run_pattern("lost_update", Variant.BASELINE, seed=s).outcome
                    for s in range(30)}
        assert PatternOutcome.WRONG_RESULT in outcomes

    def test_flag_spin_can_livelock(self):
        outcomes = {run_pattern("flag_spin", Variant.BASELINE, seed=s,
                                max_steps=50_000).outcome
                    for s in range(10)}
        assert PatternOutcome.LIVELOCK in outcomes

    def test_torn_write_can_produce_chimera(self):
        # tearing needs the reader's two word loads to straddle the
        # writer's two word stores — a rare window, so many schedules
        outcomes = {run_pattern("torn_wide_write", Variant.BASELINE,
                                seed=s).outcome
                    for s in range(300)}
        assert PatternOutcome.WRONG_RESULT in outcomes

    def test_missing_barrier_can_compute_wrong_sum(self):
        outcomes = {run_pattern("missing_barrier", Variant.BASELINE,
                                seed=s).outcome
                    for s in range(40)}
        assert PatternOutcome.WRONG_RESULT in outcomes


class TestCleanPatterns:
    """The false-positive probes: these LOOK racy but are not; a
    byte-granular, kernel-boundary-aware detector must stay silent."""

    @pytest.mark.parametrize("name", CLEAN_PATTERNS)
    @pytest.mark.parametrize("variant", list(Variant))
    def test_no_races_reported(self, name, variant):
        for seed in range(4):
            result = run_pattern(name, variant, seed=seed)
            assert result.races == 0, \
                f"false positive on {name} (seed {seed})"
            assert result.outcome is PatternOutcome.CORRECT
