"""Tests for ECL-APSP — the regular, race-free-by-construction code."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import apsp, verify
from repro.core.transform import remove_races
from repro.core.variants import Variant, get_algorithm
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.gpu.device import get_device
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector
from repro.perf.engine import run_algorithm

ALGO = lambda: get_algorithm("apsp")
DEV = lambda: get_device("titanv")


class TestPerfCorrectness:
    def test_small_weighted_graph(self):
        g = gen.random_uniform(24, 3.0, seed=2).with_random_weights(seed=1)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        verify.check_apsp(g, run.output["dist"])

    def test_disconnected_pairs_stay_infinite(self, two_triangles):
        g = two_triangles.with_random_weights(seed=1)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        dist = run.output["dist"]
        assert dist[0, 3] >= apsp.INF
        assert dist[0, 0] == 0

    def test_triangle_inequality_holds(self):
        g = gen.preferential_attachment(30, 2, seed=3).with_random_weights(2)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        d = run.output["dist"].astype(float)
        d = np.where(d >= apsp.INF, np.inf, d)
        for k in (0, 7, 19):
            assert np.all(d <= d[:, [k]] + d[[k], :] + 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 20), st.integers(0, 50))
    def test_random_graphs_match_scipy(self, n, seed):
        g = gen.random_uniform(n, 2.5, seed=seed).with_random_weights(seed)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        verify.check_apsp(g, run.output["dist"])


class TestNoRaces:
    def test_plan_has_no_racy_sites(self):
        """Section IV.A: APSP is regular and has no data races."""
        assert not apsp.ACCESS_PLAN.has_races

    def test_transform_is_identity(self):
        assert remove_races(apsp.ACCESS_PLAN) == apsp.ACCESS_PLAN

    def test_registry_marks_no_races(self):
        assert not ALGO().has_races

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_simt_race_free_under_any_schedule(self, seed):
        """The detector must find nothing, even adversarially."""
        g = gen.random_uniform(5, 2.0, seed=seed).with_random_weights(seed)
        dist, ex = apsp.run_simt(g, scheduler=AdversarialScheduler(seed))
        verify.check_apsp(g, dist)
        assert RaceDetector().check(ex) == []

    def test_simt_matches_perf_level(self):
        g = gen.random_uniform(6, 2.0, seed=9).with_random_weights(9)
        dist_simt, _ = apsp.run_simt(g, scheduler=RandomScheduler(1))
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        assert np.array_equal(dist_simt, run.output["dist"])


class TestSharedTileKernel:
    """The staged-tile shared-memory kernel: correct *only* under the
    barrier, which is exactly what makes it a repair target."""

    def _graph(self):
        return CSRGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3)], directed=False,
            symmetrize=True, name="apsp-path").with_random_weights(seed=0)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_with_sync_is_correct_and_race_free(self, seed):
        g = self._graph()
        dist, ex = apsp.run_simt_shared(
            g, scheduler=AdversarialScheduler(seed), sync=True)
        verify.check_apsp(g, dist)
        assert RaceDetector().check(ex) == []

    def test_without_sync_the_tile_races(self):
        g = self._graph()
        _dist, ex = apsp.run_simt_shared(
            g, scheduler=AdversarialScheduler(0), sync=False)
        races = RaceDetector().check(ex)
        assert races, "dropping the tile barrier must race"
        sites = {site for race in races for site in race.fixable_sites}
        assert any(site.startswith("apsp.tile") for site in sites)

    def test_shared_plan_sites_are_labelled(self):
        names = {site.name for site in apsp.SHARED_PLAN.sites}
        assert {"apsp.tile.read", "apsp.tile.write"} <= names


class TestStudyExclusion:
    def test_study_refuses_apsp_speedup(self):
        """Like the paper, the study does not measure APSP speedups."""
        from repro import Study
        from repro.errors import StudyError

        g = gen.random_uniform(10, 2.0, seed=1).with_random_weights(1)
        with pytest.raises(StudyError):
            Study(reps=1).speedup("apsp", g, "titanv")
