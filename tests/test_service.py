"""Tests for repro.service: protocol, quota, breaker, scheduler, and
the HTTP server end to end.

The container has no pytest-asyncio, so async paths run under plain
``asyncio.run`` inside synchronous test functions.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.gpu.faults import FaultPlan
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.protocol import (
    CellKey,
    parse_study_request,
    read_request,
    response_bytes,
)
from repro.service.quota import AdmissionController
from repro.service.scheduler import CellScheduler, StudyExecutor
from repro.service.server import ServiceConfig, SweepService

CELL = CellKey("cc", "internet", "titanv")


# ----------------------------------------------------------------------
# Protocol: request framing
# ----------------------------------------------------------------------
def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHttpFraming:
    def test_parses_request_with_body(self):
        req = _parse(b"POST /v1/study HTTP/1.1\r\nHost: x\r\n"
                     b"Content-Length: 4\r\n\r\nbody")
        assert (req.method, req.path) == ("POST", "/v1/study")
        assert req.headers["host"] == "x"
        assert req.body == b"body"

    def test_strips_query_string(self):
        req = _parse(b"GET /healthz?verbose=1 HTTP/1.1\r\n\r\n")
        assert req.path == "/healthz"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_mid_request_eof_raises(self):
        with pytest.raises(ProtocolError, match="mid-request"):
            _parse(b"GET /healthz HTTP/1.1\r\nHost")

    def test_mid_body_eof_raises(self):
        with pytest.raises(ProtocolError, match="mid-body"):
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError, match="request line"):
            _parse(b"NONSENSE\r\n\r\n")

    def test_chunked_request_rejected(self):
        with pytest.raises(ProtocolError, match="chunked"):
            _parse(b"POST / HTTP/1.1\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n")

    def test_oversized_body_rejected(self):
        with pytest.raises(ProtocolError, match="Content-Length"):
            _parse(b"POST / HTTP/1.1\r\n"
                   b"Content-Length: 99999999\r\n\r\n")

    def test_bad_content_length_rejected(self):
        with pytest.raises(ProtocolError, match="Content-Length"):
            _parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_response_bytes_shape(self):
        data = response_bytes(429, b"{}",
                              extra_headers=(("Retry-After", "3"),))
        head = data.split(b"\r\n\r\n")[0]
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 3" in head
        assert b"Content-Length: 2" in head


# ----------------------------------------------------------------------
# Protocol: study-request schema
# ----------------------------------------------------------------------
def _body(**overrides) -> bytes:
    payload = {"algorithms": ["cc"], "inputs": ["internet"],
               "device": "titanv", "tenant": "t"}
    payload.update(overrides)
    return json.dumps(payload).encode()


class TestStudyRequestSchema:
    def test_valid_request_expands_cells(self):
        req = parse_study_request(_body(algorithms=["cc", "mis"],
                                        inputs=["internet", "rmat16.sym"],
                                        deadline_s=30))
        assert len(req.cells) == 4
        assert req.tenant == "t"
        assert req.deadline_s == 30.0

    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            parse_study_request(b"hello")

    def test_unknown_algorithm(self):
        with pytest.raises(ProtocolError, match="unknown algorithm"):
            parse_study_request(_body(algorithms=["pagerank"]))

    def test_race_free_algorithm_rejected(self):
        with pytest.raises(ProtocolError, match="no data races"):
            parse_study_request(_body(algorithms=["apsp"]))

    def test_unknown_input(self):
        with pytest.raises(ProtocolError, match="unknown suite input"):
            parse_study_request(_body(inputs=["no-such-graph"]))

    def test_unknown_device(self):
        with pytest.raises(ProtocolError):
            parse_study_request(_body(device="tpu"))

    def test_fully_mismatched_directedness_rejected(self):
        # scc is directed; internet is undirected: zero runnable cells
        with pytest.raises(ProtocolError, match="no runnable cells"):
            parse_study_request(_body(algorithms=["scc"],
                                      inputs=["internet"]))

    def test_mixed_families_skip_mismatches(self):
        req = parse_study_request(_body(
            algorithms=["cc", "scc"], inputs=["internet", "wikipedia"]))
        pairs = {(c.algorithm, c.input_name) for c in req.cells}
        assert pairs == {("cc", "internet"), ("scc", "wikipedia")}

    def test_bad_deadline(self):
        with pytest.raises(ProtocolError, match="deadline_s"):
            parse_study_request(_body(deadline_s=-1))

    def test_cell_bound(self):
        with pytest.raises(ProtocolError, match="per-request bound"):
            parse_study_request(
                _body(algorithms=["cc", "mis"],
                      inputs=["internet", "rmat16.sym"]), max_cells=3)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_admit_and_release(self):
        gate = AdmissionController(max_pending_cells=4,
                                   per_tenant_cells=4)
        assert gate.try_admit("a", 3).ok
        assert gate.pending_cells == 3
        gate.release("a", 3)
        assert gate.pending_cells == 0
        assert gate.tenant_cells("a") == 0

    def test_global_bound_rejects(self):
        gate = AdmissionController(max_pending_cells=4,
                                   per_tenant_cells=4)
        assert gate.try_admit("a", 3).ok
        refusal = gate.try_admit("b", 2)
        assert not refusal.ok
        assert "pending cells" in refusal.reason
        assert int(refusal.retry_after_header) >= 1
        # a rejection reserves nothing
        assert gate.pending_cells == 3

    def test_per_tenant_bound(self):
        gate = AdmissionController(max_pending_cells=100,
                                   per_tenant_cells=2)
        assert gate.try_admit("a", 2).ok
        assert not gate.try_admit("a", 1).ok
        assert gate.try_admit("b", 2).ok  # other tenants unaffected

    def test_oversized_request_is_structural(self):
        gate = AdmissionController(max_pending_cells=100,
                                   per_tenant_cells=2)
        refusal = gate.try_admit("a", 5)
        assert not refusal.ok
        assert "per-tenant quota" in refusal.reason

    def test_repeat_rejections_back_off_further(self):
        from repro.utils.backoff import BackoffPolicy

        gate = AdmissionController(
            max_pending_cells=1, per_tenant_cells=1,
            backoff=BackoffPolicy(base_s=1.0, jitter=False))
        assert gate.try_admit("hog", 1).ok
        delays = [gate.try_admit("beggar", 1).retry_after_s
                  for _ in range(3)]
        assert delays == [1.0, 2.0, 4.0]
        # an admission resets the streak
        gate.release("hog", 1)
        assert gate.try_admit("beggar", 1).ok


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=10,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure(CELL)
            assert breaker.state(CELL) is BreakerState.CLOSED
        breaker.record_failure(CELL)
        assert breaker.state(CELL) is BreakerState.OPEN
        assert not breaker.allow(CELL)
        assert breaker.open_keys() == [CELL]

    def test_half_open_single_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10,
                                 clock=clock)
        breaker.record_failure(CELL)
        clock.now = 11.0
        assert breaker.allow(CELL)        # the one trial
        assert not breaker.allow(CELL)    # everyone else short-circuits
        breaker.record_success(CELL)
        assert breaker.state(CELL) is BreakerState.CLOSED
        assert breaker.allow(CELL)

    def test_failed_trial_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10,
                                 clock=clock)
        breaker.record_failure(CELL)
        clock.now = 11.0
        assert breaker.allow(CELL)
        breaker.record_failure(CELL)
        assert breaker.state(CELL) is BreakerState.OPEN
        assert not breaker.allow(CELL)    # fresh cooldown from now
        clock.now = 22.0
        assert breaker.allow(CELL)

    def test_aborted_trial_reopens_without_counting(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown_s=10,
                                 clock=clock)
        breaker.record_failure(CELL)
        breaker.record_failure(CELL)
        clock.now = 11.0
        assert breaker.allow(CELL)
        failures_before = breaker._entry(CELL).failures
        breaker.abort_trial(CELL)
        assert breaker.state(CELL) is BreakerState.OPEN
        assert breaker._entry(CELL).failures == failures_before

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure(CELL)
        breaker.record_failure(CELL)
        breaker.record_success(CELL)
        breaker.record_failure(CELL)
        assert breaker.state(CELL) is BreakerState.CLOSED

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1)


# ----------------------------------------------------------------------
# Scheduler: coalescing, caching, breaker integration, deadlines
# ----------------------------------------------------------------------
def _executor(**kw) -> StudyExecutor:
    kw.setdefault("reps", 1)
    kw.setdefault("scale", 0.05)
    return StudyExecutor(**kw)


class TestSchedulerCoalescing:
    def test_concurrent_cold_cell_executes_once(self, tmp_path):
        # the satellite acceptance: two clients, one cold cell, exactly
        # one recorded execution — observed via both the study's
        # execution counter and the trace cache's recording counter
        from repro.perf.trace import TraceCache

        cache = TraceCache(disk_dir=tmp_path / "traces")
        executor = _executor(trace_cache=cache)
        scheduler = CellScheduler(executor)

        async def go():
            a, b = await asyncio.gather(
                scheduler.request_cell(CELL, deadline_s=120),
                scheduler.request_cell(CELL, deadline_s=120))
            return a, b

        try:
            a, b = asyncio.run(go())
        finally:
            executor.shutdown()
        assert a["status"] == b["status"] == "ok"
        assert a["speedup"] == b["speedup"]
        # one cell = its two variant executions, exactly once
        assert executor.study.cells_executed == 2
        assert scheduler.coalesced == 1
        assert sum(1 for r in (a, b) if r.get("coalesced")) == 1
        # the trace cache recorded one cell's worth of traces, not two
        recorded_once = cache.recorded
        assert recorded_once > 0

    def test_completed_cell_serves_from_cache(self):
        executor = _executor()
        scheduler = CellScheduler(executor)

        async def go():
            first = await scheduler.request_cell(CELL)
            second = await scheduler.request_cell(CELL)
            return first, second

        try:
            first, second = asyncio.run(go())
        finally:
            executor.shutdown()
        assert first["status"] == "ok" and "cached" not in first
        assert second["cached"] is True
        assert second["speedup"] == first["speedup"]
        assert executor.study.cells_executed == 2


class TestSchedulerBreaker:
    def test_three_failures_open_breaker_and_short_circuit(self):
        # the satellite acceptance: a cell failing 3x opens its breaker
        # and the next request returns a degraded record without
        # touching the executor
        executor = _executor(faults=FaultPlan.parse("abort=1.0", seed=0))
        breaker = CircuitBreaker(threshold=3, cooldown_s=3600)
        scheduler = CellScheduler(executor, breaker)

        async def go():
            records = []
            for _ in range(3):
                records.append(await scheduler.request_cell(CELL))
            short = await scheduler.request_cell(CELL)
            return records, short

        try:
            records, short = asyncio.run(go())
        finally:
            executor.shutdown()
        assert [r["status"] for r in records] == ["fail"] * 3
        assert all(r["reason"] == "fault" for r in records)
        # both variants run per attempt (2 executions x 3 attempts)
        assert executor.study.cells_executed == 6
        assert breaker.state(CELL) is BreakerState.OPEN
        assert short["breaker"] == "open"
        assert short["degraded"] is True
        assert short["status"] == "fail"
        assert executor.study.cells_executed == 6  # pool untouched
        assert scheduler.short_circuits == 1


class _StuckExecutor:
    """Executor stub whose work never finishes (deadline tests)."""

    def __init__(self):
        self.queued = 0
        self.degraded = False
        self.futures = []

    def submit(self, key, budget_s):
        future = concurrent.futures.Future()
        self.futures.append((key, budget_s, future))
        return future


class TestSchedulerDeadlines:
    def test_subscriber_deadline_expires(self):
        executor = _StuckExecutor()
        scheduler = CellScheduler(executor)

        async def go():
            return await scheduler.request_cell(CELL, deadline_s=0.05)

        record = asyncio.run(go())
        assert record["status"] == "fail"
        assert record["reason"] == "deadline"
        # the lone subscriber gave up, so the queued execution was
        # cancelled rather than computed
        assert executor.futures[0][2].cancelled()

    def test_budget_is_most_patient_subscriber(self):
        executor = _StuckExecutor()
        scheduler = CellScheduler(executor)

        async def go():
            task = asyncio.create_task(
                scheduler.request_cell(CELL, deadline_s=50))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(go())
        _key, budget_s, _future = executor.futures[0]
        assert budget_s is not None and 0 < budget_s <= 50


# ----------------------------------------------------------------------
# The HTTP server end to end
# ----------------------------------------------------------------------
async def _fetch(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                  f"Content-Length: {len(payload)}\r\n\r\n"
                  ).encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, head, rest


def _dechunk(body: bytes) -> list[dict]:
    out = []
    i = 0
    while i < len(body):
        j = body.index(b"\r\n", i)
        size = int(body[i:j], 16)
        if size == 0:
            break
        out.append(body[j + 2:j + 2 + size])
        i = j + 2 + size + 2
    return [json.loads(line)
            for line in b"".join(out).splitlines() if line]


class TestServerEndToEnd:
    def test_full_request_cycle(self, tmp_path):
        ckpt = tmp_path / "serve.ckpt"

        async def go():
            config = ServiceConfig(port=0, reps=1, scale=0.05,
                                   retries=0, checkpoint=str(ckpt))
            service = SweepService(config)
            await service.start()
            host, port = service.address

            status, _head, body = await _fetch(host, port, "GET",
                                               "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, _head, body = await _fetch(host, port, "GET",
                                               "/readyz")
            assert status == 200
            assert json.loads(body)["ready"] is True

            status, _head, body = await _fetch(
                host, port, "POST", "/v1/study",
                {"algorithms": ["cc", "mis"], "inputs": ["internet"],
                 "device": "titanv", "tenant": "e2e"})
            assert status == 200
            records = _dechunk(body)
            cells = [r for r in records if "cell" in r]
            summary = records[-1]["summary"]
            assert len(cells) == 2
            assert all(r["status"] == "ok" for r in cells)
            assert summary["ok"] == 2 and summary["failed"] == 0

            status, _head, body = await _fetch(host, port, "GET",
                                               "/v1/results")
            assert status == 200
            # 2 cells x 2 variants of raw runtimes accumulated
            assert len(json.loads(body)["results"]) == 4

            status, _head, _body = await _fetch(host, port, "GET",
                                                "/nope")
            assert status == 404
            status, _head, _body = await _fetch(host, port, "POST",
                                                "/healthz")
            assert status == 405
            status, _head, body = await _fetch(
                host, port, "POST", "/v1/study", {"algorithms": "cc"})
            assert status == 400

            await service.aclose()

        asyncio.run(go())
        assert ckpt.exists()

    def test_admission_rejection_is_429_with_retry_after(self):
        async def go():
            config = ServiceConfig(port=0, reps=1, scale=0.05,
                                   per_tenant_cells=1,
                                   max_pending_cells=1)
            service = SweepService(config)
            await service.start()
            host, port = service.address
            status, head, body = await _fetch(
                host, port, "POST", "/v1/study",
                {"algorithms": ["cc", "mis"], "inputs": ["internet"],
                 "device": "titanv", "tenant": "greedy"})
            assert status == 429
            assert b"retry-after:" in head.lower()
            assert "per-tenant quota" in json.loads(body)["error"]
            await service.aclose()

        asyncio.run(go())

    def test_draining_server_rejects_new_studies(self):
        async def go():
            config = ServiceConfig(port=0, reps=1, scale=0.05)
            service = SweepService(config)
            await service.start()
            host, port = service.address
            # warm one cell so there is work in the memo, then drain
            await _fetch(host, port, "POST", "/v1/study",
                         {"algorithms": ["cc"], "inputs": ["internet"],
                          "device": "titanv", "tenant": "a"})
            service._draining = True
            status, head, _body = await _fetch(
                host, port, "POST", "/v1/study",
                {"algorithms": ["cc"], "inputs": ["internet"],
                 "device": "titanv", "tenant": "a"})
            assert status == 503
            assert b"retry-after:" in head.lower()
            status, _head, body = await _fetch(host, port, "GET",
                                               "/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False
            service._draining = False
            await service.aclose()

        asyncio.run(go())

    def test_executor_rejects_after_shutdown(self):
        executor = _executor()
        executor.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            executor.submit(CELL, None)
