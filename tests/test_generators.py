"""Tests for the synthetic graph generators (structural regimes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.properties import compute_properties


class TestGrid:
    def test_grid_degrees(self):
        g = gen.grid2d(8)
        assert g.num_vertices == 64
        degs = g.degrees()
        # corners 2, edges 3, interior 4
        assert degs.max() == 4
        assert degs.min() == 2
        assert not g.directed

    def test_grid_symmetric(self):
        assert gen.grid2d(5).check_symmetric()

    def test_grid_too_small(self):
        with pytest.raises(GraphError):
            gen.grid2d(1)


class TestRandomAndRmat:
    def test_random_uniform_degree_regime(self):
        g = gen.random_uniform(2000, 8.0, seed=1)
        p = compute_properties(g)
        assert 6.0 < p.d_avg < 8.5
        assert p.d_max < 8 * p.d_avg  # binomial: no heavy tail

    def test_rmat_heavy_tail(self):
        g = gen.rmat(10, 8, seed=2)
        p = compute_properties(g)
        assert p.d_max > 8 * p.d_avg  # power-law-ish tail

    def test_kronecker_extreme_hubs(self):
        g = gen.kronecker(10, 16, seed=3)
        p = compute_properties(g)
        assert p.d_max > 20 * p.d_avg

    def test_rmat_invalid_probabilities(self):
        with pytest.raises(GraphError):
            gen.rmat(4, 2, a=0.9, b=0.2, c=0.2)

    def test_determinism(self):
        a = gen.rmat(8, 4, seed=42)
        b = gen.rmat(8, 4, seed=42)
        assert np.array_equal(a.col_indices, b.col_indices)
        c = gen.rmat(8, 4, seed=43)
        assert not np.array_equal(a.col_indices, c.col_indices)


class TestPreferentialAttachment:
    def test_connected_and_skewed(self):
        g = gen.preferential_attachment(500, 3, seed=4)
        p = compute_properties(g)
        assert p.d_max > 4 * p.d_avg
        # PA graphs are connected by construction
        import networkx as nx
        assert nx.is_connected(g.to_networkx())

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            gen.preferential_attachment(3, 5)
        with pytest.raises(GraphError):
            gen.preferential_attachment(10, 0)


class TestRoadmapAndMesh:
    def test_roadmap_low_degree_large_diameter(self):
        g = gen.roadmap(900, seed=5)
        p = compute_properties(g)
        assert p.d_avg < 3.5
        assert p.d_max <= 8
        import networkx as nx
        nxg = g.to_networkx()
        assert nx.is_connected(nxg)  # spanning tree base keeps it whole

    def test_delaunay_planar_regime(self):
        g = gen.delaunay(300, seed=6)
        p = compute_properties(g)
        assert 4.0 < p.d_avg < 7.0

    def test_copaper_high_average_degree(self):
        g = gen.copaper_graph(400, 40.0, seed=7)
        assert compute_properties(g).d_avg > 20


class TestDirectedMeshes:
    def test_torus_is_one_scc(self):
        g = gen.directed_torus(8, 6)
        from repro.algorithms.verify import tarjan_scc
        comp = tarjan_scc(g)
        assert len(set(comp.tolist())) == 1

    def test_torus_chord_raises_degree(self):
        plain = gen.directed_torus(8, 6, chord=0)
        hexed = gen.directed_torus(8, 6, chord=3)
        assert hexed.num_edges > plain.num_edges

    def test_star_mesh_uniform_out_degree(self):
        g = gen.star_mesh(64)
        assert g.degrees().max() == 2
        assert g.degrees().min() == 2

    def test_star_mesh_single_scc(self):
        from repro.algorithms.verify import tarjan_scc
        comp = tarjan_scc(gen.star_mesh(32))
        assert len(set(comp.tolist())) == 1

    def test_klein_bottle_degree_regime(self):
        g = gen.klein_bottle_mesh(16, 8)
        p = compute_properties(g)
        assert 1.9 < p.d_avg < 2.6

    def test_layered_flow_has_multiple_sccs(self):
        from repro.algorithms.verify import tarjan_scc
        g = gen.layered_flow(300, seed=8)
        comp = tarjan_scc(g)
        n_comps = len(set(comp.tolist()))
        assert 1 < n_comps < g.num_vertices  # nontrivial partition

    def test_circuit_has_giant_hub(self):
        g = gen.circuit_graph(2000, seed=9)
        p = compute_properties(g)
        assert p.d_max > g.num_vertices * 0.05

    def test_directed_powerlaw_giant_plus_trivial_sccs(self):
        from repro.algorithms.verify import tarjan_scc
        g = gen.directed_powerlaw(600, 8.0, seed=10)
        comp = tarjan_scc(g)
        sizes = np.bincount(comp)
        assert sizes.max() > 50          # a giant SCC
        assert (sizes == 1).sum() > 10   # plus many trivial ones

    def test_cage_banded(self):
        g = gen.cage_graph(500, seed=11, band=20)
        src, dst = g.edge_array()
        assert np.abs(src.astype(int) - dst.astype(int)).max() <= 20
