"""Tests for the markdown table renderer."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_table


def test_basic_layout():
    out = format_table(["A", "B"], [["x", 1.234], ["long-name", 2.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("| A")
    assert "1.23" in lines[2]
    assert "long-name" in lines[3]


def test_alignment_consistent():
    out = format_table(["Input", "CC"], [["a", 0.5], ["bb", 1.0]])
    widths = {len(line) for line in out.splitlines()}
    assert len(widths) == 1  # every row same rendered width


def test_float_format_override():
    out = format_table(["V"], [[0.123456]], float_format="{:.4f}")
    assert "0.1235" in out


def test_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        format_table(["A", "B"], [["only-one"]])


def test_non_float_cells_stringified():
    out = format_table(["N", "Name"], [[17, "graph"]])
    assert "17" in out and "graph" in out
