"""Tests for the scaled paper-input suite (Tables II and III analogs)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.properties import compute_properties
from repro.graphs.suite import (
    DIRECTED_SUITE,
    UNDIRECTED_SUITE,
    load_suite_graph,
    suite_entry,
    suite_names,
)


class TestCatalog:
    def test_table2_has_17_inputs(self):
        assert len(UNDIRECTED_SUITE) == 17

    def test_table3_has_10_inputs(self):
        assert len(DIRECTED_SUITE) == 10

    def test_names_filterable(self):
        assert len(suite_names(directed=False)) == 17
        assert len(suite_names(directed=True)) == 10
        assert len(suite_names()) == 27

    def test_unknown_name_rejected(self):
        with pytest.raises(GraphError):
            suite_entry("no-such-graph")

    def test_paper_properties_recorded(self):
        e = suite_entry("soc-LiveJournal1")
        assert e.paper_vertices == 4_847_571
        assert e.paper_edges == 85_702_474
        assert e.kind == "community"


@pytest.mark.parametrize("name", suite_names(directed=False))
def test_undirected_inputs_build_and_are_symmetric(name):
    g = load_suite_graph(name)
    assert not g.directed
    assert g.num_vertices >= 256
    # spot-check symmetry cheaply on a slice of edges
    src, dst = g.edge_array()
    pairs = set(zip(src[:3000].tolist(), dst[:3000].tolist()))
    all_pairs = set(zip(src.tolist(), dst.tolist()))
    assert all((v, u) in all_pairs for (u, v) in pairs)


@pytest.mark.parametrize("name", suite_names(directed=True))
def test_directed_inputs_build(name):
    g = load_suite_graph(name)
    assert g.directed
    assert g.num_vertices >= 256


def test_relative_size_ordering_preserved():
    """Section VI.B analyzes speedup vs. size: the scaled suite must keep
    the big-vs-small ordering of the originals (for clearly separated
    sizes)."""
    big = load_suite_graph("europe_osm")
    small = load_suite_graph("internet")
    assert big.num_vertices > 20 * small.num_vertices


def test_degree_regimes_match_paper():
    road = compute_properties(load_suite_graph("USA-road-d.USA"))
    dense = compute_properties(load_suite_graph("coPapersDBLP"))
    assert road.d_avg < 4.0        # paper: 2.4
    assert dense.d_avg > 25.0      # paper: 56.4


def test_scale_parameter_grows_inputs():
    base = load_suite_graph("citationCiteseer", scale=1.0)
    bigger = load_suite_graph("citationCiteseer", scale=2.0)
    assert bigger.num_vertices > base.num_vertices


def test_memoization_returns_same_object():
    a = load_suite_graph("internet")
    b = load_suite_graph("internet")
    assert a is b


def test_paper_properties_track_study_scale():
    """Table IX correlates against the graphs actually run, so the
    properties must follow the study's scale factor."""
    from repro.core.study import paper_properties

    base = paper_properties("citationCiteseer")
    scaled = paper_properties("citationCiteseer", scale=2.0)
    assert scaled[1] > base[1]  # more vertices at scale 2
    g = load_suite_graph("citationCiteseer", scale=2.0)
    assert scaled == (g.num_edges, g.num_vertices,
                      g.num_edges / g.num_vertices)


def test_weighted_graph_cached_by_content():
    from repro.graphs.suite import weighted_graph

    g = load_suite_graph("internet")
    w1 = weighted_graph(g)
    w2 = weighted_graph(g)
    assert w1 is w2
    assert w1.has_weights
    assert weighted_graph(w1) is w1  # already weighted: no-op
