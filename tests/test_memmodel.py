"""The memory-model zoo: parsing, litmus goldens, and the default
model's bit-identity contract.

Three layers of protection:

* **Golden litmus tables** — the observed outcome sets per (test,
  model) cell are hard-coded here, independently of the allowed-set
  computation in :mod:`repro.memmodel.litmus` (both the harness and
  the goldens would have to drift together to hide a semantics bug).
* **Determinism** — the same litmus cell explored twice yields the
  same outcomes in the same order.
* **Bit-identity** — the default model is the paper's relaxed GPU
  semantics with eager visibility; executions under it must be
  byte-identical to an executor that never heard of memory models,
  on both the scalar interpreter and the batched tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import cc, gc, mis
from repro.core.transform import AccessPlan, AccessSite
from repro.core.variants import Variant
from repro.errors import ReproError
from repro.gpu.accesses import AccessKind, MemoryOrder
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor
from repro.memmodel import (
    DEFAULT_MODEL,
    get_model,
    model_keys,
    resolve_model,
)
from repro.memmodel.litmus import CORPUS, run_corpus, run_litmus

# ----------------------------------------------------------------------
# model registry and parsing
# ----------------------------------------------------------------------


class TestRegistry:
    def test_model_keys(self):
        keys = model_keys()
        for expected in ("sc", "tso", "relaxed_gpu", "ptx"):
            assert expected in keys

    def test_unknown_spec(self):
        with pytest.raises(ReproError):
            get_model("totally-bogus")

    def test_parameterized_tso(self):
        m = get_model("tso:1")
        assert m.buffers_stores
        assert "tso" in m.key

    def test_invalid_tso_capacity(self):
        with pytest.raises(ReproError):
            get_model("tso:0")

    def test_resolve_passthrough(self):
        m = get_model("sc")
        assert resolve_model(m) is m

    def test_default_is_relaxed_eager(self):
        assert not DEFAULT_MODEL.buffers_stores
        assert DEFAULT_MODEL.order_floor is MemoryOrder.RELAXED


class TestApplyToPlan:
    PLAN = AccessPlan("t", (
        AccessSite("t.shared.vol", AccessKind.VOLATILE, is_store=True),
        AccessSite("t.shared.atomic", AccessKind.ATOMIC, is_store=True),
        AccessSite("t.private", AccessKind.PLAIN, shared=False),
    ))

    def test_relaxed_floor_is_identity(self):
        assert DEFAULT_MODEL.apply_to_plan(self.PLAN) is self.PLAN
        assert get_model("ptx").apply_to_plan(self.PLAN) is self.PLAN

    def test_strong_floor_lifts_all_shared_sites(self):
        # the race-removal transform converts shared volatile sites to
        # atomics, so a stronger model must lift them too — not just
        # the sites that are atomic in the baseline plan
        lifted = get_model("ptx:acq_rel").apply_to_plan(self.PLAN)
        assert lifted.site("t.shared.vol").order is MemoryOrder.ACQ_REL
        assert lifted.site("t.shared.atomic").order is MemoryOrder.ACQ_REL
        assert lifted.site("t.private").order is MemoryOrder.RELAXED

    def test_sc_floor(self):
        lifted = get_model("sc").apply_to_plan(self.PLAN)
        assert lifted.site("t.shared.vol").order is MemoryOrder.SEQ_CST


# ----------------------------------------------------------------------
# golden litmus tables
# ----------------------------------------------------------------------

_MP_SAFE = {(0, 0), (0, 1), (1, 1)}
_MP_WEAK = _MP_SAFE | {(1, 0)}
_SB_SC = {(0, 1), (1, 0), (1, 1)}
_SB_WEAK = _SB_SC | {(0, 0)}
_LB = {(0, 0), (0, 1), (1, 0)}
_CORR_CACHED = {(0, 0), (1, 1)}
_CORR_UNCACHED = {(0, 0), (0, 1), (1, 1)}
_IRIW = {(a, b, c, d)
         for a in (0, 1) for b in (0, 1)
         for c in (0, 1) for d in (0, 1)} - {(1, 0, 1, 0)}

#: (test name, model key) -> exact outcome set a complete exploration
#: must observe.  Frozen from a verified run; independent of the
#: allowed-set derivation inside the litmus module.
GOLDEN = {
    ("MP", "sc"): _MP_SAFE,
    ("MP", "tso"): _MP_SAFE,
    ("MP", "relaxed_gpu"): _MP_WEAK,
    ("MP", "ptx"): _MP_WEAK,
    ("MP+rel+acq", "sc"): _MP_SAFE,
    ("MP+rel+acq", "tso"): _MP_SAFE,
    ("MP+rel+acq", "relaxed_gpu"): _MP_SAFE,
    ("MP+rel+acq", "ptx"): _MP_SAFE,
    ("MP+rlx", "sc"): _MP_SAFE,
    ("MP+rlx", "tso"): _MP_SAFE,
    ("MP+rlx", "relaxed_gpu"): _MP_WEAK,
    ("MP+rlx", "ptx"): _MP_WEAK,
    ("SB", "sc"): _SB_SC,
    ("SB", "tso"): _SB_WEAK,
    ("SB", "relaxed_gpu"): _SB_WEAK,
    ("SB", "ptx"): _SB_WEAK,
    ("SB+fences", "sc"): _SB_SC,
    ("SB+fences", "tso"): _SB_SC,
    ("SB+fences", "relaxed_gpu"): _SB_SC,
    ("SB+fences", "ptx"): _SB_SC,
    ("LB", "sc"): _LB,
    ("LB", "tso"): _LB,
    ("LB", "relaxed_gpu"): _LB,
    ("LB", "ptx"): _LB,
    ("CoRR", "sc"): _CORR_UNCACHED,
    ("CoRR", "tso"): _CORR_UNCACHED,
    ("CoRR", "relaxed_gpu"): _CORR_CACHED,
    ("CoRR", "ptx"): _CORR_CACHED,
    ("IRIW", "sc"): _IRIW,
    ("IRIW", "tso"): _IRIW,
    ("IRIW", "relaxed_gpu"): _IRIW,
    ("IRIW", "ptx"): _IRIW,
    ("MP+cta/same", "sc"): _MP_SAFE,
    ("MP+cta/same", "tso"): _MP_SAFE,
    ("MP+cta/same", "relaxed_gpu"): _MP_SAFE,
    ("MP+cta/same", "ptx"): _MP_SAFE,
    ("MP+cta/cross", "sc"): _MP_SAFE,
    ("MP+cta/cross", "tso"): _MP_SAFE,
    ("MP+cta/cross", "relaxed_gpu"): _MP_SAFE,
    ("MP+cta/cross", "ptx"): _MP_WEAK,
}


class TestLitmusGoldens:
    @pytest.fixture(scope="class")
    def corpus_results(self):
        return run_corpus()

    def test_corpus_covers_golden_cells(self, corpus_results):
        cells = {(r.test, r.model) for r in corpus_results}
        assert cells == set(GOLDEN)

    def test_every_cell_complete_and_ok(self, corpus_results):
        for r in corpus_results:
            assert r.complete, f"{r.test}/{r.model} truncated"
            assert r.ok, (f"{r.test}/{r.model}: "
                          f"forbidden={sorted(r.forbidden_observed)} "
                          f"missing={sorted(r.missing)}")

    def test_observed_matches_golden(self, corpus_results):
        for r in corpus_results:
            want = GOLDEN[(r.test, r.model)]
            assert set(r.observed) == want, (
                f"{r.test}/{r.model}: observed "
                f"{sorted(set(r.observed))}, golden {sorted(want)}")

    def test_parameterized_models_run_clean(self):
        results = run_corpus(models=["ptx:acq_rel", "tso:1"],
                             tests=["MP", "SB", "CoRR"])
        for r in results:
            assert r.complete and r.ok


class TestDeterminism:
    def test_same_cell_twice_identical(self):
        test = next(t for t in CORPUS if t.name == "SB")
        model = get_model("tso")
        a = run_litmus(test, model)
        b = run_litmus(test, model)
        assert a.observed == b.observed
        assert a.schedules == b.schedules


# ----------------------------------------------------------------------
# default-model bit-identity (interpreter and batched tiers)
# ----------------------------------------------------------------------

_RUNNERS = {
    "cc": lambda g, v, ex: cc.run_simt(g, v, executor=ex),
    "gc": lambda g, v, ex: gc.run_simt(g, v, executor=ex),
    "mis": lambda g, v, ex: mis.run_simt(g, v, executor=ex),
}


class TestDefaultBitIdentity:
    """An executor given the explicit default model must be
    indistinguishable from one constructed with no model at all."""

    @pytest.mark.parametrize("algo", sorted(_RUNNERS))
    @pytest.mark.parametrize("variant", list(Variant))
    def test_interp_tier(self, algo, variant, tiny_graph):
        ex_plain = SimtExecutor(GlobalMemory(), record_events=True)
        ex_model = SimtExecutor(GlobalMemory(), record_events=True,
                                memory_model="relaxed_gpu:eager")
        out_p, _ = _RUNNERS[algo](tiny_graph, variant, ex_plain)
        out_m, _ = _RUNNERS[algo](tiny_graph, variant, ex_model)
        assert np.array_equal(np.asarray(out_p), np.asarray(out_m))
        assert ex_plain.events == ex_model.events

    @pytest.mark.parametrize("algo", sorted(_RUNNERS))
    def test_batched_tier(self, algo, tiny_graph):
        ex_plain = SimtExecutor(GlobalMemory(), batch=True,
                                record_events=True)
        ex_model = SimtExecutor(GlobalMemory(), batch=True,
                                record_events=True,
                                memory_model="relaxed_gpu:eager")
        out_p, _ = _RUNNERS[algo](tiny_graph, Variant.RACE_FREE, ex_plain)
        out_m, _ = _RUNNERS[algo](tiny_graph, Variant.RACE_FREE, ex_model)
        assert np.array_equal(np.asarray(out_p), np.asarray(out_m))
        assert ex_plain.events == ex_model.events
        assert ex_model.batch_stats.batched_launches > 0


# ----------------------------------------------------------------------
# GC multi-word bitsets (the lifted 32-color cap)
# ----------------------------------------------------------------------


class TestGCWideBitsets:
    def test_posscol_words(self):
        assert gc.posscol_words(0) == 1
        assert gc.posscol_words(30) == 1
        assert gc.posscol_words(31) == 1
        assert gc.posscol_words(32) == 2
        assert gc.posscol_words(63) == 2
        assert gc.posscol_words(64) == 3

    def test_high_degree_star_colors(self):
        from repro.algorithms.verify import check_coloring
        from repro.graphs.csr import CSRGraph

        hub_deg = 40  # needs a 2-word possible-color bitset
        edges = [(0, i) for i in range(1, hub_deg + 1)]
        graph = CSRGraph.from_edges(hub_deg + 1, edges, directed=False,
                                    symmetrize=True, name="star-40")
        colors, _ = gc.run_simt(graph, Variant.RACE_FREE)
        check_coloring(graph, colors)
        # a star is 2-colorable and JP largest-degree-first finds it
        assert int(colors.max()) <= 1
