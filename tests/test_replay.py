"""Decision-log recording, deterministic replay, and ddmin shrinking."""

from __future__ import annotations

import pytest

from repro.check.replay import (
    DecisionLog,
    DeviationScheduler,
    RecordingScheduler,
    ReplayScheduler,
    deviations_of,
    minimize_deviations,
    stay_policy,
)
from repro.errors import ScheduleReplayError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor


def racy_kernel(ctx, arr):
    v = yield ctx.load(arr, 0, AccessKind.VOLATILE)
    yield ctx.store(arr, 0, v + 1, AccessKind.VOLATILE)


def run_counter(scheduler, n_threads=4, launches=2):
    mem = GlobalMemory()
    arr = mem.alloc("arr", 1, DType.I32)
    ex = SimtExecutor(mem, scheduler=scheduler)
    for _ in range(launches):
        ex.launch(racy_kernel, n_threads, arr, block_dim=n_threads)
    return mem.fingerprint(), [(e.tid, e.launch, e.step, e.value)
                               for e in ex.events]


class TestDecisionLog:
    LOG = DecisionLog(((0, 0, 1, 1), (1, 0)))

    def test_counts_and_flat(self):
        assert self.LOG.total_decisions == 6
        assert self.LOG.flat() == [0, 0, 1, 1, 1, 0]

    def test_compact_roundtrip(self):
        text = self.LOG.compact()
        assert text == "0,0,1,1/1,0"
        assert DecisionLog.from_compact(text) == self.LOG

    def test_json_roundtrip(self):
        assert DecisionLog.from_json(self.LOG.to_json()) == self.LOG

    @pytest.mark.parametrize("bad", ["a,b/c", "0,1,x"])
    def test_malformed_compact_rejected(self, bad):
        with pytest.raises(ScheduleReplayError):
            DecisionLog.from_compact(bad)

    @pytest.mark.parametrize("bad", ["{}", "not json", '{"launches": 3}'])
    def test_malformed_json_rejected(self, bad):
        with pytest.raises(ScheduleReplayError):
            DecisionLog.from_json(bad)


class TestRecordAndReplay:
    @pytest.mark.parametrize("make_base", [
        lambda: RandomScheduler(seed=11),
        lambda: AdversarialScheduler(seed=11),
    ])
    def test_bit_deterministic_replay(self, make_base):
        recorder = RecordingScheduler(make_base())
        fp, trace = run_counter(recorder)
        log = recorder.log()
        assert len(log.launches) == 2

        fp2, trace2 = run_counter(ReplayScheduler(log))
        assert fp2 == fp
        assert trace2 == trace

    def test_replay_rejects_extra_launches(self):
        recorder = RecordingScheduler(RandomScheduler(seed=1))
        run_counter(recorder, launches=1)
        replayer = ReplayScheduler(recorder.log())
        with pytest.raises(ScheduleReplayError, match="launch"):
            run_counter(replayer, launches=2)

    def test_replay_rejects_exhausted_log(self):
        recorder = RecordingScheduler(RandomScheduler(seed=1))
        run_counter(recorder, n_threads=2)
        with pytest.raises(ScheduleReplayError, match="exhausted"):
            run_counter(ReplayScheduler(recorder.log()), n_threads=4)

    def test_replay_rejects_non_runnable_pick(self):
        log = DecisionLog(((7, 7, 7, 7),))
        with pytest.raises(ScheduleReplayError, match="diverged"):
            run_counter(ReplayScheduler(log), n_threads=2, launches=1)

    def test_replay_records_runnable_sets(self):
        recorder = RecordingScheduler(RandomScheduler(seed=2))
        run_counter(recorder, launches=1)
        replayer = ReplayScheduler(recorder.log())
        run_counter(ReplayScheduler(recorder.log()), launches=1)
        run_counter(replayer, launches=1)
        assert len(replayer.runnable_sets) == recorder.log().total_decisions


class TestStayPolicyAndDeviations:
    def test_stay_policy_prefers_last(self):
        assert stay_policy([0, 1, 2], 1) == 1
        assert stay_policy([0, 2], 1) == 0
        assert stay_policy([3, 4], None) == 3

    def test_deviations_of_canonical_schedule_is_empty(self):
        picks = [0, 0, 1, 1]
        runnables = [(0, 1), (0, 1), (1,), (1,)]
        assert deviations_of(picks, runnables, [0]) == {}

    def test_deviations_roundtrip_through_scheduler(self):
        recorder = RecordingScheduler(AdversarialScheduler(seed=9))
        fp, trace = run_counter(recorder)
        log = recorder.log()

        replayer = ReplayScheduler(log)
        run_counter(replayer)
        starts = []
        total = 0
        for launch in log.launches:
            starts.append(total)
            total += len(launch)
        deviations = deviations_of(log.flat(), replayer.runnable_sets,
                                   starts)

        dev_sched = DeviationScheduler(deviations)
        fp2, trace2 = run_counter(dev_sched)
        assert dev_sched.log() == log
        assert (fp2, trace2) == (fp, trace)

    def test_deviation_scheduler_skips_non_runnable(self):
        sched = DeviationScheduler({0: 99})
        fp, _ = run_counter(sched, n_threads=2, launches=1)
        assert 0 not in sched.applied
        assert sched.picks[0] == 0  # fell back to the stay policy


class TestMinimization:
    @staticmethod
    def _drive(sched: DeviationScheduler, decisions: int = 20) -> None:
        """Simulate a 3-thread program shape without an executor."""
        sched.reset()
        for _ in range(decisions):
            sched.choose([0, 1, 2])

    def test_ddmin_shrinks_to_the_one_relevant_deviation(self):
        deviations = {2: 1, 5: 2, 9: 1, 13: 2, 17: 1}
        runs = []

        def still_fails(sched: DeviationScheduler) -> bool:
            self._drive(sched)
            runs.append(set(sched.applied))
            return 9 in sched.applied  # only deviation 9 matters

        result = minimize_deviations(deviations, still_fails)
        assert result.deviations == {9: 1}
        assert result.initial_deviations == 5
        assert result.runs_used == len(runs)
        assert result.log.flat()[9] == 1

    def test_ddmin_keeps_interacting_pairs(self):
        deviations = {2: 1, 5: 2, 9: 1}

        def still_fails(sched: DeviationScheduler) -> bool:
            self._drive(sched)
            return {2, 9} <= sched.applied  # both needed

        result = minimize_deviations(deviations, still_fails)
        assert set(result.deviations) == {2, 9}

    def test_ddmin_rejects_unreproducible_failures(self):
        """The schedule 'failed' during exploration but replaying its
        deviations never fails: minimization must refuse to hand back a
        repro that does not reproduce."""
        deviations = {2: 1, 5: 2}

        def still_fails(sched: DeviationScheduler) -> bool:
            self._drive(sched)
            return False

        with pytest.raises(ScheduleReplayError):
            minimize_deviations(deviations, still_fails)

    def test_empty_deviation_set_is_already_minimal(self):
        def still_fails(sched: DeviationScheduler) -> bool:
            self._drive(sched)
            return True

        result = minimize_deviations({}, still_fails)
        assert result.deviations == {}
