"""Smoke tests: every example must run end to end.

The examples are part of the public surface (README points users at
them), so the test-suite executes each one's ``main()`` and checks the
narrative output it promises.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "race-free speedup" in out
        assert "verified" in out

    def test_word_tearing_demo(self, capsys):
        load_example("word_tearing_demo").main()
        out = capsys.readouterr().out
        assert "CHIMERA" in out
        assert "livelock detected" in out
        assert "nonsensical" in out

    def test_race_detection_demo(self, capsys):
        load_example("race_detection_demo").main()
        out = capsys.readouterr().out
        assert out.count("race-free: clean (result verified)") == 5
        assert "APSP" in out

    def test_profile_cc(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["profile_cc.py", "internet"])
        load_example("profile_cc").main()
        out = capsys.readouterr().out
        assert "dominant racy site: cc.label.jump_read" in out
        assert "L1-path share" in out

    def test_custom_graph_analysis(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["custom_graph_analysis.py"])
        load_example("custom_graph_analysis").main()
        out = capsys.readouterr().out
        assert "All results validated" in out

    def test_migration_planner(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv",
                            ["migration_planner.py", "cc", "internet"])
        load_example("migration_planner").main()
        out = capsys.readouterr().out
        assert "migration plan" in out
        assert "race-free" in out
        assert "ship only the last row" in out

    def test_weak_memory_demo(self, capsys):
        load_example("weak_memory_demo").main()
        out = capsys.readouterr().out
        assert "LIVELOCKED" in out
        assert "TORN/STALE" in out
        assert out.count("all runs correct") >= 3

    def test_fault_injection_demo(self, capsys):
        load_example("fault_injection_demo").main()
        out = capsys.readouterr().out
        # the racy baselines fail the Section II ways...
        assert "FAIL(livelock)" in out
        assert "FAIL(validation)" in out
        # ...a naive sweep loses a race-free cell to a transient abort...
        assert "1 race-free cell(s) lost to a transient abort" in out
        # ...and with retries every race-free variant completes
        assert "all 4/4 race-free variants survived" in out
        assert "coverage: 2/4 cells completed" in out

    def test_race_repair_demo(self, capsys):
        load_example("race_repair_demo").main()
        out = capsys.readouterr().out
        assert "ranked fixes for cc" in out
        assert "[ACCEPT] barrier@twophase.phase" in out
        assert "repaired for free" in out
        assert "both targets repaired" in out

    @pytest.mark.slow
    def test_speedup_study(self, capsys, monkeypatch):
        module = load_example("speedup_study")
        # shrink the sweep for test time
        monkeypatch.setattr(module, "UNDIRECTED",
                            ["internet", "USA-road-d.NY"])
        monkeypatch.setattr(module, "DIRECTED", ["star", "toroid-wedge"])
        monkeypatch.setattr(module, "DEVICES", ["titanv"])
        module.main()
        out = capsys.readouterr().out
        assert "Geometric-mean speedups" in out
        assert "Table IX" in out
