"""Deterministic reset()/state() contract for all schedulers.

``SimtExecutor.launch`` calls ``scheduler.reset()`` at the start of
every launch, and the ``repro.check`` subsystem re-executes programs
from scratch assuming a freshly constructed scheduler behaves
identically run after run.  These tests pin that contract down for
every scheduler in :mod:`repro.gpu.interleave`.
"""

from __future__ import annotations

import pytest

from repro.gpu.interleave import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

RUNNABLE = [0, 1, 2, 3, 4]


def _drive(sched: Scheduler, n: int = 40) -> list[int]:
    sched.reset()
    return [sched.choose(RUNNABLE) for _ in range(n)]


ALL_SCHEDULERS = [
    lambda: RoundRobinScheduler(),
    lambda: RandomScheduler(seed=7),
    lambda: AdversarialScheduler(seed=7),
]


class TestResetDeterminism:
    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_reset_restores_the_decision_stream(self, make):
        sched = make()
        first = _drive(sched)
        second = _drive(sched)
        assert first == second

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_fresh_instance_equals_reset_instance(self, make):
        used = make()
        _drive(used)          # consume some stream
        _drive(used)          # and again
        assert _drive(used) == _drive(make())

    def test_random_reset_reseeds(self):
        # regression: reset() used to be a no-op, so each launch
        # continued the RNG stream and multi-launch runs were not
        # reproducible from the constructor arguments
        sched = RandomScheduler(seed=123)
        launch1 = _drive(sched)
        launch2 = _drive(sched)
        assert launch1 == launch2

    def test_adversarial_reset_clears_stickiness_state(self):
        sched = AdversarialScheduler(seed=5)
        sched.reset()
        sched.choose([0, 1, 2])
        before = sched.state()
        _drive(sched, 17)
        sched.reset()
        sched.choose([0, 1, 2])
        assert sched.state() == before


class TestStateIntrospection:
    def test_round_robin_state_tracks_position(self):
        sched = RoundRobinScheduler()
        sched.reset()
        s0 = sched.state()
        sched.choose(RUNNABLE)
        assert sched.state() != s0

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_state_is_a_tuple_and_resets(self, make):
        sched = make()
        sched.reset()
        initial = sched.state()
        assert isinstance(initial, tuple)
        for _ in range(9):
            sched.choose(RUNNABLE)
        sched.reset()
        assert sched.state() == initial

    def test_base_scheduler_contract_defaults(self):
        class Fixed(Scheduler):
            def choose(self, runnable):
                return runnable[0]

        sched = Fixed()
        assert sched.needs_pending is False
        assert sched.state() == ()
        sched.observe([0, 1], None)  # no-op hook must exist
        sched.reset()
        assert sched.choose([3, 4]) == 3


class TestExecutorIntegration:
    def test_multi_launch_run_is_reproducible(self):
        """Two executors with equal constructor args produce identical
        schedules across several launches (exercises per-launch reset)."""
        from repro.gpu.accesses import AccessKind, DType
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.simt import SimtExecutor

        def kernel(ctx, arr):
            v = yield ctx.load(arr, ctx.tid, AccessKind.VOLATILE)
            yield ctx.store(arr, ctx.tid, v + 1, AccessKind.VOLATILE)

        def run() -> tuple[bytes, list]:
            mem = GlobalMemory()
            arr = mem.alloc("a", 8, DType.I32)
            ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed=3))
            for _ in range(3):
                ex.launch(kernel, 8, arr)
            order = [(e.tid, e.launch, e.step) for e in ex.events]
            return mem.fingerprint(), order

        assert run() == run()
