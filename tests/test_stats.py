"""Tests for the methodology statistics (median, geomean, deviation)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.correlation import pearson
from repro.utils.stats import geometric_mean, median, relative_deviation


class TestMedian:
    def test_odd_count(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_count_averages(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_nine_reps_like_the_paper(self):
        runtimes = [10.0, 10.1, 9.9, 10.2, 9.8, 10.0, 10.3, 9.7, 10.0]
        assert median(runtimes) == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1))
    def test_median_between_min_and_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestGeometricMean:
    def test_identity_on_constant(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_speedup_symmetry(self):
        # a speedup and its inverse cancel in geomean — the reason the
        # paper uses geomeans for speedup ratios
        assert geometric_mean([0.5, 2.0]) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestRelativeDeviation:
    def test_identical_runs_have_zero_deviation(self):
        assert relative_deviation([5.0, 5.0, 5.0]) == 0.0

    def test_small_deviation(self):
        # mirrors the paper's 0.6 % median relative deviation claim
        values = [100.0, 100.6, 99.4, 100.0, 100.3]
        assert relative_deviation(values) < 0.01

    def test_zero_median_rejected(self):
        with pytest.raises(ValueError):
            relative_deviation([0.0, 0.0])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_independent_of_scale_and_shift(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0, 1.0, 4.0, 1.0]
        r1 = pearson(xs, ys)
        r2 = pearson([10 * x + 5 for x in xs], ys)
        assert r1 == pytest.approx(r2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_zero_variance(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])

    @given(st.lists(st.tuples(st.floats(min_value=-100, max_value=100),
                              st.floats(min_value=-100, max_value=100)),
                    min_size=3, max_size=30))
    def test_bounded(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        try:
            r = pearson(xs, ys)
        except ValueError:
            return  # zero variance draw
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
