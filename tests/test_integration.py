"""End-to-end integration tests: the paper's headline shapes.

These run the real study machinery on a handful of scaled suite inputs
and assert the *qualitative* results of Section VI — who wins, roughly
by how much, and the cross-device trend — not exact table cells.
"""

from __future__ import annotations

import pytest

from repro import Study, Variant
from repro.core.report import geomean_summary
from repro.core.variants import list_algorithms
from repro.utils.stats import geometric_mean

INPUTS = ["internet", "amazon0601", "citationCiteseer", "rmat16.sym",
          "USA-road-d.NY"]
DIRECTED = ["star", "toroid-wedge", "web-Google"]


@pytest.fixture(scope="module")
def study():
    return Study(reps=3)


def geomean_speedup(study, algo, device, inputs):
    cells = [study.speedup(algo, name, device) for name in inputs]
    return geometric_mean([c.speedup for c in cells])


class TestHeadlineShapes:
    def test_cc_substantially_slower(self, study):
        """Tables IV-VII: race-free CC loses 10-60 %."""
        for device in ("titanv", "4090"):
            gm = geomean_speedup(study, "cc", device, INPUTS)
            assert gm < 0.9, f"CC on {device}: {gm}"

    def test_scc_substantially_slower(self, study):
        """Table VIII: race-free SCC loses 20-50 %."""
        for device in ("titanv", "a100"):
            gm = geomean_speedup(study, "scc", device, DIRECTED)
            assert gm < 0.95, f"SCC on {device}: {gm}"

    def test_gc_and_mst_nearly_unaffected(self, study):
        """Tables IV-VII: GC and MST stay above ~0.92 geomean."""
        for algo in ("gc", "mst"):
            gm = geomean_speedup(study, algo, "titanv", INPUTS)
            assert gm > 0.90, f"{algo}: {gm}"

    def test_mis_racefree_faster(self, study):
        """The headline: race-free MIS wins on every device."""
        for device in ("titanv", "2070super", "a100", "4090"):
            gm = geomean_speedup(study, "mis", device, INPUTS)
            assert gm > 1.0, f"MIS on {device}: {gm}"

    def test_2070super_least_penalized_for_cc(self, study):
        """Fig. 6: the Turing part suffers least from the conversion."""
        turing = geomean_speedup(study, "cc", "2070super", INPUTS)
        for device in ("titanv", "a100", "4090"):
            assert turing > geomean_speedup(study, "cc", device, INPUTS)

    def test_newer_gpus_hurt_more_overall(self, study):
        """Section VII's trend, aggregated over CC+SCC."""
        old = (geomean_speedup(study, "cc", "2070super", INPUTS)
               * geomean_speedup(study, "scc", "2070super", DIRECTED))
        new = (geomean_speedup(study, "cc", "4090", INPUTS)
               * geomean_speedup(study, "scc", "4090", DIRECTED))
        assert new < old


class TestCrossCutting:
    def test_all_racy_algorithms_registered(self):
        keys = {a.key for a in list_algorithms()}
        assert keys == {"apsp", "cc", "gc", "mis", "mst", "scc"}

    def test_racefree_runs_have_no_racy_traffic(self, study):
        """After the transform, no shared site may remain plain or
        volatile — checked on real runs via the recorded stats."""
        for algo in ("cc", "gc", "mis", "scc"):
            result = study.run(algo, "internet" if algo != "scc" else "star",
                               "titanv", Variant.RACE_FREE)
            assert result.last_run.stats.volatile_loads == 0
            assert result.last_run.stats.volatile_stores == 0

    def test_geomean_summary_over_multiple_devices(self, study):
        cells = []
        for device in ("titanv", "4090"):
            for name in INPUTS[:2]:
                cells.append(study.speedup("mis", name, device))
        summary = geomean_summary(cells)
        assert set(summary) == {"titanv", "4090"}

    def test_run_to_run_determinism(self):
        """Same seeds, same graphs, same devices: identical medians."""
        a = Study(reps=2).speedup("cc", "internet", "titanv")
        b = Study(reps=2).speedup("cc", "internet", "titanv")
        assert a.baseline_ms == b.baseline_ms
        assert a.racefree_ms == b.racefree_ms
