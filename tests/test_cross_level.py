"""Cross-level consistency: the SIMT event stream must agree with the
access plans the performance level prices.

The central correctness property of the reproduction is that the two
variants of a code differ only in access *kinds*.  These tests verify
it where it is observable end to end: in a race-free SIMT run, every
access that reaches a shared array must be atomic; in a baseline run,
the racy arrays must see non-atomic traffic.
"""

from __future__ import annotations

import pytest

from repro.algorithms import cc, gc, mis, mst, scc
from repro.core.variants import Variant
from repro.gpu.accesses import AccessKind
from repro.gpu.interleave import RandomScheduler
from repro.gpu.timing import stats_from_launches

#: shared (racy-in-baseline) arrays per algorithm at the SIMT level
SHARED_ARRAYS = {
    "cc": ("cc_label",),
    "gc": ("gc_color", "gc_posscol"),
    "mis": ("mis_nstat",),
    "mst": ("mst_parent", "mst_best"),
    "scc": ("scc_pathmax", "scc_goagain"),
}

RUNNERS = {
    "cc": lambda g, v: cc.run_simt(g, v, scheduler=RandomScheduler(5)),
    "gc": lambda g, v: gc.run_simt(g, v, scheduler=RandomScheduler(5)),
    "mis": lambda g, v: mis.run_simt(g, v, scheduler=RandomScheduler(5)),
    "mst": lambda g, v: mst.run_simt(g.with_random_weights(1), v,
                                     scheduler=RandomScheduler(5)),
}


@pytest.mark.parametrize("algo", ["cc", "gc", "mis", "mst"])
class TestUndirectedCodes:
    def test_racefree_shared_accesses_all_atomic(self, algo, tiny_graph):
        _, ex = RUNNERS[algo](tiny_graph, Variant.RACE_FREE)
        shared = SHARED_ARRAYS[algo]
        bad = [e for e in ex.events
               if e.span.array in shared
               and e.access is not AccessKind.ATOMIC]
        assert bad == [], f"{algo}: non-atomic shared accesses {bad[:3]}"

    def test_baseline_has_nonatomic_shared_traffic(self, algo, tiny_graph):
        _, ex = RUNNERS[algo](tiny_graph, Variant.BASELINE)
        shared = SHARED_ARRAYS[algo]
        racy = [e for e in ex.events
                if e.span.array in shared
                and e.access is not AccessKind.ATOMIC]
        assert racy, f"{algo}: baseline shows no racy traffic"


class TestSCC:
    def test_racefree_shared_accesses_all_atomic(self, tiny_directed):
        _, ex = scc.run_simt(tiny_directed, Variant.RACE_FREE,
                             scheduler=RandomScheduler(5))
        bad = [e for e in ex.events
               if e.span.array in SHARED_ARRAYS["scc"]
               and e.access is not AccessKind.ATOMIC]
        assert bad == []

    def test_baseline_has_nonatomic_shared_traffic(self, tiny_directed):
        _, ex = scc.run_simt(tiny_directed, Variant.BASELINE,
                             scheduler=RandomScheduler(5))
        racy = [e for e in ex.events
                if e.span.array in SHARED_ARRAYS["scc"]
                and e.access is not AccessKind.ATOMIC]
        assert racy


class TestStatsBridge:
    def test_stats_from_launches_matches_event_counts(self, tiny_graph):
        """The SIMT->AccessStats bridge must preserve totals."""
        import numpy as np

        from repro.gpu.accesses import DType
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.simt import SimtExecutor

        mem = GlobalMemory()
        ex = SimtExecutor(mem, scheduler=RandomScheduler(2))
        n = tiny_graph.num_vertices
        offsets = mem.alloc("o", n + 1, DType.I64)
        indices = mem.alloc("i", max(1, tiny_graph.num_edges), DType.I32)
        label = mem.alloc("l", n, DType.I32)
        changed = mem.alloc("c", 1, DType.I32)
        mem.upload(offsets, tiny_graph.row_offsets)
        mem.upload(indices, tiny_graph.col_indices)
        mem.upload(label, np.arange(n))

        kernel = cc.make_cc_kernel(Variant.RACE_FREE)
        stats_list = []
        while True:
            mem.element_write(changed, 0, 0)
            stats_list.append(
                ex.launch(kernel, n, offsets, indices, label, changed))
            if mem.element_read(changed, 0) == 0:
                break

        agg = stats_from_launches(stats_list)
        ev_loads = sum(1 for e in ex.events
                       if e.is_read and not e.is_write)
        ev_stores = sum(1 for e in ex.events
                        if e.is_write and not e.is_read)
        ev_rmws = sum(1 for e in ex.events if e.is_read and e.is_write)
        assert (agg.plain_loads + agg.volatile_loads + agg.atomic_loads
                == ev_loads)
        assert (agg.plain_stores + agg.volatile_stores + agg.atomic_stores
                == ev_stores)
        assert agg.atomic_rmws == ev_rmws
        assert agg.rounds == len(stats_list)
