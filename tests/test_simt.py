"""Tests for the SIMT interpreter: execution, barriers, register caching,
deadlock detection, scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlockError, KernelError
from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.interleave import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor


def make_exec(**kwargs):
    mem = GlobalMemory()
    return mem, SimtExecutor(mem, **kwargs)


class TestBasicExecution:
    def test_every_thread_runs(self):
        mem, ex = make_exec()
        out = mem.alloc("out", 8, DType.I32)

        def kernel(ctx, out):
            yield ctx.store(out, ctx.tid, ctx.tid * 10)

        stats = ex.launch(kernel, 8, out)
        assert np.array_equal(mem.download(out), np.arange(8) * 10)
        assert stats.stores[AccessKind.PLAIN] == 8

    def test_guarded_threads_noop(self):
        mem, ex = make_exec()
        out = mem.alloc("out", 2, DType.I32)

        def kernel(ctx, out):
            if ctx.tid >= out.length:
                return
            yield ctx.store(out, ctx.tid, 1)

        ex.launch(kernel, 16, out)
        assert np.array_equal(mem.download(out), [1, 1])

    def test_load_returns_stored_value(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=41)

        def kernel(ctx, arr):
            v = yield ctx.load(arr, 0)
            yield ctx.store(arr, 0, v + 1)

        ex.launch(kernel, 1, arr)
        assert mem.element_read(arr, 0) == 42

    def test_signed_load(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=-7)
        seen = []

        def kernel(ctx, arr):
            v = yield ctx.load(arr, 0)
            seen.append(v)

        ex.launch(kernel, 1, arr)
        assert seen == [-7]

    def test_bad_yield_rejected(self):
        mem, ex = make_exec()

        def kernel(ctx):
            yield "not an op"

        with pytest.raises(KernelError):
            ex.launch(kernel, 1)

    def test_invalid_launch_config(self):
        mem, ex = make_exec()
        with pytest.raises(KernelError):
            ex.launch(lambda ctx: iter(()), 0)
        with pytest.raises(KernelError):
            ex.launch(lambda ctx: iter(()), 4, block_dim=0)


class TestAtomics:
    def test_rmw_add_sums_exactly(self):
        mem, ex = make_exec()
        ctr = mem.alloc("ctr", 1, DType.I32)

        def kernel(ctx, ctr):
            yield ctx.atomic_rmw(ctr, 0, RMWOp.ADD, 1)

        ex.launch(kernel, 50, ctr)
        assert mem.element_read(ctr, 0) == 50

    def test_cas_returns_old(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=5)
        olds = []

        def kernel(ctx, arr):
            old = yield ctx.atomic_cas(arr, 0, 5, 9)
            olds.append(old)

        ex.launch(kernel, 2, arr)
        assert sorted(olds) == [5, 9]
        assert mem.element_read(arr, 0) == 9

    def test_signed_min_max(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 2, DType.I32, fill=0)

        def kernel(ctx, arr):
            yield ctx.atomic_rmw(arr, 0, RMWOp.MIN, -5)
            yield ctx.atomic_rmw(arr, 1, RMWOp.MAX, -5)

        ex.launch(kernel, 1, arr)
        assert mem.element_read(arr, 0) == -5
        assert mem.element_read(arr, 1) == 0

    def test_exch(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=3)
        olds = []

        def kernel(ctx, arr):
            old = yield ctx.atomic_rmw(arr, 0, RMWOp.EXCH, 7)
            olds.append(old)

        ex.launch(kernel, 1, arr)
        assert olds == [3]
        assert mem.element_read(arr, 0) == 7

    def test_atomic_char_rejected(self):
        """CUDA atomics do not support char operands (Section IV.C)."""
        mem, ex = make_exec()
        arr = mem.alloc("a", 4, DType.U8)

        def kernel(ctx, arr):
            yield ctx.load(arr, 0, AccessKind.ATOMIC)

        with pytest.raises(KernelError):
            ex.launch(kernel, 1, arr)

    def test_misaligned_atomic_rejected(self):
        from repro.errors import MemoryAccessError
        mem, ex = make_exec()
        arr = mem.alloc("a", 8, DType.U8)

        def kernel(ctx, arr):
            yield ctx.load_span(arr.cast_span(1, 4), AccessKind.ATOMIC)

        with pytest.raises(MemoryAccessError):
            ex.launch(kernel, 1, arr)


class TestRegisterCaching:
    def test_plain_reload_served_from_register(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=1)

        def kernel(ctx, arr):
            a = yield ctx.load(arr, 0, AccessKind.PLAIN)
            b = yield ctx.load(arr, 0, AccessKind.PLAIN)
            assert a == b

        stats = ex.launch(kernel, 1, arr)
        assert stats.loads[AccessKind.PLAIN] == 1
        assert stats.register_hits == 1

    def test_volatile_always_reloads(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32)

        def kernel(ctx, arr):
            yield ctx.load(arr, 0, AccessKind.VOLATILE)
            yield ctx.load(arr, 0, AccessKind.VOLATILE)

        stats = ex.launch(kernel, 1, arr)
        assert stats.loads[AccessKind.VOLATILE] == 2
        assert stats.register_hits == 0

    def test_own_store_invalidates(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=1)
        seen = []

        def kernel(ctx, arr):
            yield ctx.load(arr, 0, AccessKind.PLAIN)
            yield ctx.store(arr, 0, 99, AccessKind.PLAIN)
            v = yield ctx.load(arr, 0, AccessKind.PLAIN)
            seen.append(v)

        stats = ex.launch(kernel, 1, arr)
        assert seen == [99]
        assert stats.loads[AccessKind.PLAIN] == 2

    def test_fence_invalidates(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32)

        def kernel(ctx, arr):
            yield ctx.load(arr, 0, AccessKind.PLAIN)
            yield ctx.fence()
            yield ctx.load(arr, 0, AccessKind.PLAIN)

        stats = ex.launch(kernel, 1, arr)
        assert stats.loads[AccessKind.PLAIN] == 2

    def test_caching_can_be_disabled(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, register_cache_plain=False)
        arr = mem.alloc("a", 1, DType.I32)

        def kernel(ctx, arr):
            yield ctx.load(arr, 0, AccessKind.PLAIN)
            yield ctx.load(arr, 0, AccessKind.PLAIN)

        stats = ex.launch(kernel, 1, arr)
        assert stats.loads[AccessKind.PLAIN] == 2

    def test_infinite_poll_detected(self):
        """Fig. 1's thread T4: polling a register-cached value forever."""
        mem, ex = make_exec()
        arr = mem.alloc("a", 1, DType.I32, fill=-1)

        def kernel(ctx, arr):
            if ctx.tid == 0:
                while True:
                    v = yield ctx.load(arr, 0, AccessKind.PLAIN)
                    if v != -1:
                        return
            else:
                yield ctx.store(arr, 0, 0, AccessKind.PLAIN)

        with pytest.raises(DeadlockError):
            ex.launch(kernel, 2, arr)


class TestBarriers:
    def test_barrier_orders_phases(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 4, DType.I32)
        out = mem.alloc("b", 4, DType.I32)

        def kernel(ctx, arr, out):
            yield ctx.store(arr, ctx.tid, ctx.tid + 1)
            yield ctx.barrier()
            # read the neighbor's value: defined because of the barrier
            v = yield ctx.load(arr, (ctx.tid + 1) % 4)
            yield ctx.store(out, ctx.tid, v)

        ex.launch(kernel, 4, arr, out, block_dim=4)
        assert np.array_equal(mem.download(out), [2, 3, 4, 1])

    def test_barrier_divergence_detected(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 2, DType.I32)

        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield ctx.barrier()
            yield ctx.store(arr, ctx.tid, 1)

        with pytest.raises(DeadlockError):
            ex.launch(kernel, 2, arr, block_dim=2)

    def test_barrier_scopes_to_block(self):
        mem, ex = make_exec()
        arr = mem.alloc("a", 4, DType.I32)

        def kernel(ctx, arr):
            yield ctx.store(arr, ctx.tid, ctx.block)
            yield ctx.barrier()

        ex.launch(kernel, 4, arr, block_dim=2)
        assert np.array_equal(mem.download(arr), [0, 0, 1, 1])

    def test_max_steps_guard(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, max_steps=10)
        arr = mem.alloc("a", 1, DType.I32)

        def kernel(ctx, arr):
            while True:
                yield ctx.load(arr, 0, AccessKind.VOLATILE)

        with pytest.raises(DeadlockError):
            ex.launch(kernel, 1, arr)


class TestSchedulers:
    @pytest.mark.parametrize("scheduler", [
        RoundRobinScheduler(),
        RandomScheduler(7),
        AdversarialScheduler(7),
    ])
    def test_all_schedulers_complete_work(self, scheduler):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, scheduler=scheduler)
        ctr = mem.alloc("c", 1, DType.I32)

        def kernel(ctx, ctr):
            yield ctx.atomic_rmw(ctr, 0, RMWOp.ADD, 1)

        ex.launch(kernel, 20, ctr)
        assert mem.element_read(ctr, 0) == 20

    def test_adversarial_stickiness_validation(self):
        with pytest.raises(ValueError):
            AdversarialScheduler(0, stickiness=1.5)

    def test_round_robin_is_fair(self):
        sched = RoundRobinScheduler()
        picks = [sched.choose([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
