"""Tests for ECL-MST (both execution levels, both variants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import mst, verify
from repro.core.variants import Variant, get_algorithm
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.gpu.device import get_device
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector
from repro.perf.engine import run_algorithm

ALGO = lambda: get_algorithm("mst")
DEV = lambda: get_device("titanv")


def weighted(graph, seed=1):
    return graph.with_random_weights(seed=seed)


class TestPerfCorrectness:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_path_takes_all_edges(self, path_graph, variant):
        g = weighted(path_graph)
        run = run_algorithm(ALGO(), g, DEV(), variant)
        verify.check_mst(g, run.output["in_mst"])
        assert run.output["in_mst"].sum() == 9  # n - 1 canonical edges

    @pytest.mark.parametrize("variant", list(Variant))
    def test_forest_on_disconnected_graph(self, two_triangles, variant):
        g = weighted(two_triangles)
        run = run_algorithm(ALGO(), g, DEV(), variant)
        verify.check_mst(g, run.output["in_mst"])
        assert run.output["in_mst"].sum() == 4  # 2 edges per triangle

    def test_known_tiny_instance(self):
        # square with diagonal: MST must take the three lightest edges
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        w = [1, 8, 2, 9, 3]
        g = CSRGraph.from_edges(4, np.array(edges), directed=False,
                                symmetrize=True, weights=np.array(w))
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        assert run.output["weight"] == 1 + 2 + 3
        verify.check_mst(g, run.output["in_mst"])

    def test_variants_agree_on_weight(self, small_graph):
        g = weighted(small_graph)
        base = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        assert base.output["weight"] == free.output["weight"]

    def test_edgeless_graph(self):
        g = CSRGraph.empty(3).with_weights(np.zeros(0, dtype=np.int64))
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        assert run.output["weight"] == 0

    @settings(max_examples=12, deadline=None)
    @given(st.integers(8, 50), st.floats(1.5, 5.0), st.integers(0, 100))
    def test_random_graphs_verified(self, n, avg, seed):
        g = weighted(gen.random_uniform(n, avg, seed=seed), seed=seed)
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        verify.check_mst(g, run.output["in_mst"])


class TestAccessProfile:
    def test_baseline_parent_reads_volatile(self, small_graph):
        """ECL-MST's shared structures are volatile in the baseline."""
        run = run_algorithm(ALGO(), weighted(small_graph), DEV(),
                            Variant.BASELINE)
        assert run.stats.volatile_loads > 0
        assert run.stats.atomic_rmws > 0  # atomicMin elections

    def test_conversion_is_cheap(self, small_graph):
        """Paper: MST slows only 0-8 % (implicit path compression)."""
        g = weighted(small_graph)
        base = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        assert base.runtime_ms / free.runtime_ms > 0.85

    def test_path_compression_bounds_jump_traffic(self, small_graph):
        """Converted (jump) loads must stay within a small multiple of
        the edge count — the compression argument of Section VI.A."""
        g = weighted(small_graph)
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        assert run.stats.atomic_loads < 10 * g.num_edges


class TestSimtLevel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_correct_under_schedules(self, tiny_graph, variant, seed):
        g = weighted(tiny_graph, seed=9)
        mask, _ = mst.run_simt(g, variant, scheduler=RandomScheduler(seed))
        verify.check_mst(g, mask)

    def test_adversarial_schedule(self, tiny_graph):
        g = weighted(tiny_graph, seed=9)
        mask, _ = mst.run_simt(g, Variant.RACE_FREE,
                               scheduler=AdversarialScheduler(11))
        verify.check_mst(g, mask)

    def test_baseline_races_racefree_clean(self, tiny_graph):
        g = weighted(tiny_graph, seed=9)
        _, ex_base = mst.run_simt(g, Variant.BASELINE,
                                  scheduler=RandomScheduler(2))
        assert RaceDetector().check(ex_base)
        _, ex_free = mst.run_simt(g, Variant.RACE_FREE,
                                  scheduler=RandomScheduler(2))
        assert RaceDetector().check(ex_free) == []


class TestPacking:
    def test_pack_orders_by_weight_then_edge(self):
        assert mst._pack(1, 99) < mst._pack(2, 0)
        assert mst._pack(5, 1) < mst._pack(5, 2)

    def test_unpack_edge(self):
        assert mst._unpack_edge(mst._pack(123, 456)) == 456


class TestVerifier:
    def test_rejects_cycle(self, two_triangles):
        g = weighted(two_triangles)
        mask = np.ones(g.num_edges, dtype=bool)
        src, dst = g.edge_array()
        mask[src > dst] = False  # all canonical edges: contains cycles
        with pytest.raises(ValidationError):
            verify.check_mst(g, mask)

    def test_rejects_non_spanning(self, path_graph):
        g = weighted(path_graph)
        with pytest.raises(ValidationError):
            verify.check_mst(g, np.zeros(g.num_edges, dtype=bool))

    def test_rejects_unweighted(self, path_graph):
        with pytest.raises(ValidationError):
            verify.check_mst(path_graph,
                             np.zeros(path_graph.num_edges, dtype=bool))

    def test_rejects_suboptimal_weight(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        w = [1, 1, 10]
        g = CSRGraph.from_edges(3, np.array(edges), directed=False,
                                symmetrize=True, weights=np.array(w))
        # spanning but includes the heavy edge
        src, dst = g.edge_array()
        mask = np.zeros(g.num_edges, dtype=bool)
        picked = 0
        for i, (u, v) in enumerate(zip(src.tolist(), dst.tolist())):
            if u < v and (u, v) in {(0, 1), (0, 2)}:
                mask[i] = True
                picked += 1
        assert picked == 2
        with pytest.raises(ValidationError):
            verify.check_mst(g, mask)
