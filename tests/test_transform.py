"""Tests for the race-removal transform (Section IV as code)."""

from __future__ import annotations

import pytest

from repro.core.transform import (
    AccessPlan,
    AccessSite,
    plan_for,
    remove_races,
    site_kind,
)
from repro.core.variants import Variant
from repro.errors import StudyError
from repro.gpu.accesses import AccessKind


def sample_plan() -> AccessPlan:
    return AccessPlan("demo", (
        AccessSite("demo.plain", AccessKind.PLAIN),
        AccessSite("demo.volatile", AccessKind.VOLATILE),
        AccessSite("demo.atomic", AccessKind.ATOMIC, is_rmw=True),
        AccessSite("demo.private", AccessKind.PLAIN, shared=False),
    ))


class TestTransform:
    def test_racy_sites_identified(self):
        racy = {s.name for s in sample_plan().racy_sites()}
        assert racy == {"demo.plain", "demo.volatile"}

    def test_has_races(self):
        assert sample_plan().has_races

    def test_remove_races_converts_shared_nonatomic(self):
        converted = remove_races(sample_plan())
        assert converted.site("demo.plain").kind is AccessKind.ATOMIC
        assert converted.site("demo.volatile").kind is AccessKind.ATOMIC

    def test_remove_races_preserves_private(self):
        converted = remove_races(sample_plan())
        assert converted.site("demo.private").kind is AccessKind.PLAIN

    def test_remove_races_idempotent(self):
        once = remove_races(sample_plan())
        assert remove_races(once) == once

    def test_result_is_race_free(self):
        assert not remove_races(sample_plan()).has_races

    def test_plan_for_variants(self):
        plan = sample_plan()
        assert plan_for(plan, Variant.BASELINE) == plan
        assert not plan_for(plan, Variant.RACE_FREE).has_races

    def test_site_kind_lookup(self):
        plan = sample_plan()
        assert site_kind(plan, Variant.BASELINE,
                         "demo.plain") is AccessKind.PLAIN
        assert site_kind(plan, Variant.RACE_FREE,
                         "demo.plain") is AccessKind.ATOMIC

    def test_unknown_site_rejected(self):
        with pytest.raises(StudyError):
            sample_plan().site("demo.missing")


class TestAlgorithmPlans:
    """The five racy codes' plans must match Section IV.A's findings."""

    @pytest.mark.parametrize("module,array_hint", [
        ("repro.algorithms.cc", "label"),
        ("repro.algorithms.gc", "color"),
        ("repro.algorithms.mis", "nstat"),
        ("repro.algorithms.mst", "parent"),
        ("repro.algorithms.scc", "pathmax"),
    ])
    def test_racy_codes_declare_races(self, module, array_hint):
        import importlib

        plan = importlib.import_module(module).ACCESS_PLAN
        assert plan.has_races
        assert any(array_hint in s.name for s in plan.racy_sites())

    def test_apsp_declares_no_races(self):
        from repro.algorithms.apsp import ACCESS_PLAN

        assert not ACCESS_PLAN.has_races

    def test_cc_scc_baselines_rely_on_plain(self):
        """Section VII: CC and SCC 'rely heavily on racy non-volatile
        accesses' — their dominant sites must be PLAIN."""
        from repro.algorithms.cc import ACCESS_PLAN as cc_plan
        from repro.algorithms.scc import ACCESS_PLAN as scc_plan

        assert cc_plan.site("cc.label.jump_read").kind is AccessKind.PLAIN
        assert scc_plan.site("scc.pathmax.read").kind is AccessKind.PLAIN

    def test_gc_mst_baselines_use_volatile(self):
        """Section VII: GC and MST 'already use volatile data
        structures'."""
        from repro.algorithms.gc import ACCESS_PLAN as gc_plan
        from repro.algorithms.mst import ACCESS_PLAN as mst_plan

        assert gc_plan.site("gc.color.read").kind is AccessKind.VOLATILE
        assert (mst_plan.site("mst.parent.jump_read").kind
                is AccessKind.VOLATILE)
