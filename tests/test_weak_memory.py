"""Tests for the buffered-store (weak-memory) execution modes.

The memory-model zoo (:mod:`repro.memmodel`) supplies the semantics:
``relaxed_gpu`` buffers non-atomic stores per thread and drains them
*out of program order* (lowest address first), so the classic
unsynchronized message-passing idiom breaks; ``tso`` keeps FIFO buffers
with store-to-load forwarding, which forbids that reorder but still
exhibits store buffering.  The deprecated ``weak_memory=True`` executor
flag is kept as an alias for ``memory_model="tso"``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import cc, mis, verify
from repro.core.variants import Variant
from repro.errors import KernelError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.atomics import atomic_read, atomic_write
from repro.gpu.interleave import AdversarialScheduler, RoundRobinScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor


def weak_exec(seed=0, capacity=8, model="relaxed_gpu"):
    mem = GlobalMemory()
    ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                      memory_model=model, store_buffer_capacity=capacity,
                      record_events=False)
    return mem, ex


class TestLegacyFlag:
    """`weak_memory=True` survives as a deprecated alias for TSO."""

    def test_alias_warns_and_maps_to_tso(self):
        with pytest.warns(DeprecationWarning):
            ex = SimtExecutor(GlobalMemory(), weak_memory=True,
                              record_events=False)
        assert ex.memory_model.key == "tso"
        assert ex.weak_memory is True

    def test_alias_conflicts_with_explicit_model(self):
        with pytest.raises(KernelError):
            SimtExecutor(GlobalMemory(), weak_memory=True,
                         memory_model="sc")

    def test_legacy_message_passing_stays_ordered(self):
        """Under the TSO alias the buffer is FIFO: the payload always
        drains before the flag, so legacy weak-memory runs of the
        publication idiom are *correct* (stronger, never weaker)."""
        for seed in range(40):
            mem = GlobalMemory()
            with pytest.warns(DeprecationWarning):
                ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                                  weak_memory=True, store_buffer_capacity=1,
                                  record_events=False)
            buf = mem.alloc("buf", 2, DType.I32)
            scratch = mem.alloc("scratch", 1, DType.I32)
            result = []

            def kernel(ctx, buf, scratch):
                if ctx.tid == 0:
                    yield ctx.store(buf, 1, 99, AccessKind.PLAIN)
                    yield ctx.store(buf, 0, 1, AccessKind.PLAIN)
                    for _ in range(8):
                        yield ctx.load(scratch, 0, AccessKind.VOLATILE)
                else:
                    for _ in range(8):
                        flag = yield ctx.load(buf, 0, AccessKind.VOLATILE)
                        if flag == 1:
                            data = yield ctx.load(buf, 1,
                                                  AccessKind.VOLATILE)
                            result.append(data)
                            return

            ex.launch(kernel, 2, buf, scratch)
            assert not result or result[0] == 99


class TestStoreBufferSemantics:
    def test_invalid_capacity(self):
        with pytest.raises(KernelError):
            SimtExecutor(GlobalMemory(), memory_model="relaxed_gpu",
                         store_buffer_capacity=0)

    def test_own_stores_visible_to_self(self):
        """Reading over an own buffered store makes it visible first
        (relaxed_gpu drains; tso forwards) — never a stale read."""
        for model in ("relaxed_gpu", "tso"):
            mem, ex = weak_exec(model=model)
            arr = mem.alloc("a", 4, DType.I32)
            seen = []

            def kernel(ctx, arr):
                yield ctx.store(arr, 2, 42, AccessKind.PLAIN)
                v = yield ctx.load(arr, 2, AccessKind.VOLATILE)
                seen.append(v)

            ex.launch(kernel, 1, arr)
            assert seen == [42], model

    def test_tso_forwarding_does_not_drain(self):
        """TSO satisfies an exact-span reload from the buffer itself:
        the store stays invisible to other threads."""
        mem = GlobalMemory()
        ex = SimtExecutor(mem, scheduler=RoundRobinScheduler(),
                          memory_model="tso", record_events=False)
        arr = mem.alloc("a", 1, DType.I32)
        mid = []

        def kernel(ctx, arr):
            yield ctx.store(arr, 0, 9, AccessKind.PLAIN)
            v = yield ctx.load(arr, 0, AccessKind.VOLATILE)
            mid.append((v, int(mem.element_read(arr, 0))))

        ex.launch(kernel, 1, arr)
        assert mid == [(9, 0)]  # forwarded own value; memory still 0
        assert mem.element_read(arr, 0) == 9  # exit drained it

    def test_stores_visible_after_exit(self):
        for model in ("relaxed_gpu", "tso"):
            mem, ex = weak_exec(model=model)
            arr = mem.alloc("a", 2, DType.I32)

            def kernel(ctx, arr):
                yield ctx.store(arr, ctx.tid, ctx.tid + 7, AccessKind.PLAIN)

            ex.launch(kernel, 2, arr)
            assert np.array_equal(mem.download(arr), [7, 8]), model

    def test_fence_drains(self):
        mem = GlobalMemory()
        arr = mem.alloc("a", 1, DType.I32)
        observed = []

        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield ctx.store(arr, 0, 5, AccessKind.PLAIN)
                yield ctx.fence()
                # spin so the launch doesn't end before T1 reads
                for _ in range(6):
                    yield ctx.load(arr, 0, AccessKind.VOLATILE)
            else:
                for _ in range(6):
                    v = yield ctx.load(arr, 0, AccessKind.VOLATILE)
                    observed.append(v)

        ex2 = SimtExecutor(mem, scheduler=RoundRobinScheduler(),
                           memory_model="relaxed_gpu", record_events=False)
        ex2.launch(kernel, 2, arr)
        assert observed[-1] == 5  # fence published the store

    def test_unsynchronized_message_passing_fails(self):
        """data then flag, both plain: relaxed_gpu's out-of-order drain
        can make the flag visible before the data.

        A capacity-1 buffer forces an overflow drain after the second
        store; the drain picks the lowest address — the flag — so the
        publication escapes before the payload while the writer is
        still busy.
        """
        broken = 0
        for seed in range(120):
            mem, ex = weak_exec(seed=seed, capacity=1)
            buf = mem.alloc("buf", 2, DType.I32)  # [0]=flag, [1]=data
            scratch = mem.alloc("scratch", 1, DType.I32)
            result = []

            def kernel(ctx, buf, scratch):
                if ctx.tid == 0:
                    yield ctx.store(buf, 1, 99, AccessKind.PLAIN)  # data
                    yield ctx.store(buf, 0, 1, AccessKind.PLAIN)   # flag
                    for _ in range(8):  # stay busy; no fence yet
                        yield ctx.load(scratch, 0, AccessKind.VOLATILE)
                else:
                    for _ in range(8):
                        flag = yield ctx.load(buf, 0, AccessKind.VOLATILE)
                        if flag == 1:
                            data = yield ctx.load(buf, 1,
                                                  AccessKind.VOLATILE)
                            result.append(data)
                            return

            ex.launch(kernel, 2, buf, scratch)
            if result and result[0] != 99:
                broken += 1
        assert broken > 0, "weak memory never reordered the publication"

    def test_atomic_message_passing_works(self):
        """The race-free idiom: atomic data and flag accesses."""
        for seed in range(120):
            mem, ex = weak_exec(seed=seed)
            buf = mem.alloc("buf", 2, DType.I32)
            result = []

            def kernel(ctx, buf):
                if ctx.tid == 0:
                    yield from atomic_write(ctx, buf, 1, 99)
                    yield from atomic_write(ctx, buf, 0, 1)
                else:
                    flag = yield from atomic_read(ctx, buf, 0)
                    if flag == 1:
                        data = yield from atomic_read(ctx, buf, 1)
                        result.append(data)

            ex.launch(kernel, 2, buf)
            assert not result or result[0] == 99

    def test_per_address_coherence_preserved(self):
        """Two stores to the same location drain in program order."""
        for model in ("relaxed_gpu", "tso"):
            for seed in range(40):
                mem, ex = weak_exec(seed=seed, capacity=16, model=model)
                arr = mem.alloc("a", 1, DType.I32)

                def kernel(ctx, arr):
                    yield ctx.store(arr, 0, 1, AccessKind.PLAIN)
                    yield ctx.store(arr, 0, 2, AccessKind.PLAIN)

                ex.launch(kernel, 1, arr)
                assert mem.element_read(arr, 0) == 2, model

    def test_capacity_overflow_drains_oldest_address_first(self):
        mem, ex = weak_exec(capacity=2)
        arr = mem.alloc("a", 8, DType.I32)

        def kernel(ctx, arr):
            for i in (5, 3, 7):  # overflow after the third store
                yield ctx.store(arr, i, i, AccessKind.PLAIN)
            # nothing else: remaining entries drain at exit

        ex.launch(kernel, 1, arr)
        got = mem.download(arr)
        assert got[3] == 3 and got[5] == 5 and got[7] == 7


class TestAlgorithmsUnderWeakMemory:
    """The race-free codes must stay correct on the weaker machine —
    the paper's portability argument, executed."""

    def test_cc_racefree_correct(self, tiny_graph):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, scheduler=AdversarialScheduler(3),
                          memory_model="relaxed_gpu", record_events=False)
        labels, _ = cc.run_simt(tiny_graph, Variant.RACE_FREE, executor=ex)
        verify.check_components(tiny_graph, labels)

    def test_mis_racefree_correct(self, tiny_graph):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, scheduler=AdversarialScheduler(4),
                          memory_model="relaxed_gpu", record_events=False)
        in_set, _ = mis.run_simt(tiny_graph, Variant.RACE_FREE, executor=ex)
        verify.check_mis(tiny_graph, in_set)
