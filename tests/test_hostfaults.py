"""Tests for host-fault injection (repro.core.hostfaults) and the
self-healing trace cache (repro.perf.trace, format 2).

Covers spec parsing/validation, deterministic seeded draws, filename
targeting, each storage fault's observable effect through
``atomic_write_text``, the no-op byte-identity guarantee (no plan, and
an installed all-zero-rate plan), the parent-directory fsync, and the
trace cache's quarantine / checksum / degrade-to-memory behaviour.
"""

from __future__ import annotations

import errno
import json
import os
import pickle
import stat

import pytest

from repro.core import hostfaults
from repro.core.hostfaults import (
    DISRUPTION_KINDS,
    STORAGE_KINDS,
    HostFaultInjector,
    HostFaultKind,
    HostFaultPlan,
    HostFaultSpec,
)
from repro.core.variants import Variant
from repro.errors import FaultConfigError
from repro.gpu.timing import AccessStats
from repro.perf.trace import (
    DEGRADE_AFTER,
    TRACE_FORMAT,
    Trace,
    TraceCache,
    payload_crc,
)
from repro.utils import atomicio
from repro.utils.atomicio import atomic_write_text


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends without an installed plan."""
    hostfaults.uninstall()
    yield
    hostfaults.uninstall()


def _all_zero_plan(**kwargs) -> HostFaultPlan:
    return HostFaultPlan(
        [HostFaultSpec(kind, 0.0) for kind in HostFaultKind], **kwargs)


class TestPlanParsing:
    def test_parse_rates_and_bare_kind(self):
        plan = HostFaultPlan.parse("torn=0.3,kill=1,enospc")
        assert plan.rate(HostFaultKind.TORN_WRITE) == pytest.approx(0.3)
        assert plan.rate(HostFaultKind.WORKER_KILL) == 1.0
        assert plan.rate(HostFaultKind.NO_SPACE) == 1.0
        assert plan.rate(HostFaultKind.BIT_FLIP) == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown host fault"):
            HostFaultPlan.parse("sharknado=0.5")

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultConfigError, match="bad rate"):
            HostFaultPlan.parse("torn=lots")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(FaultConfigError, match=r"\[0, 1\]"):
            HostFaultPlan.parse("torn=1.5")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultConfigError, match="empty"):
            HostFaultPlan.parse("  , ,")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="duplicate"):
            HostFaultPlan.parse("torn=0.2,torn=0.4")

    def test_negative_stall_rejected(self):
        with pytest.raises(FaultConfigError, match="stall_seconds"):
            HostFaultPlan.parse("stall", stall_seconds=-1.0)

    def test_every_kind_is_storage_or_disruption(self):
        assert STORAGE_KINDS | DISRUPTION_KINDS == set(HostFaultKind)
        assert not STORAGE_KINDS & DISRUPTION_KINDS

    def test_plan_is_picklable(self):
        plan = HostFaultPlan.parse(
            "kill=0.7,torn=0.2", seed=5, targets=("trace-*.json",),
            disrupt_generations=2)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.describe() == plan.describe()
        assert clone.draw(HostFaultKind.WORKER_KILL, "cc", "internet",
                          "titanv", 0) == plan.draw(
            HostFaultKind.WORKER_KILL, "cc", "internet", "titanv", 0)


class TestDeterministicDraws:
    def test_same_seed_same_draws(self):
        a = HostFaultPlan.parse("torn=0.5", seed=3)
        b = HostFaultPlan.parse("torn=0.5", seed=3)
        keys = [("f.json", i) for i in range(32)]
        assert [a.draw(HostFaultKind.TORN_WRITE, *k) for k in keys] == \
               [b.draw(HostFaultKind.TORN_WRITE, *k) for k in keys]

    def test_draws_in_unit_interval_and_seed_sensitive(self):
        a = HostFaultPlan.parse("torn=0.5", seed=0)
        b = HostFaultPlan.parse("torn=0.5", seed=1)
        da = [a.draw(HostFaultKind.TORN_WRITE, "f", i) for i in range(64)]
        db = [b.draw(HostFaultKind.TORN_WRITE, "f", i) for i in range(64)]
        assert all(0.0 <= x < 1.0 for x in da)
        assert da != db

    def test_rate_zero_never_triggers_rate_one_always(self):
        plan = HostFaultPlan.parse("torn=1.0,bitflip=0.0")
        for i in range(16):
            assert plan.triggers(HostFaultKind.TORN_WRITE, "f", i)
            assert not plan.triggers(HostFaultKind.BIT_FLIP, "f", i)

    def test_targets_glob_matching(self):
        plan = HostFaultPlan.parse("torn=1.0", targets=("trace-*.json",))
        assert plan.targets_path("trace-abc123.json")
        assert not plan.targets_path("sweep.ckpt")
        assert HostFaultPlan.parse("torn=1.0").targets_path("anything")


class TestStorageInjection:
    def test_enospc_raises_and_preserves_old_file(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        atomic_write_text(path, "old generation")
        with hostfaults.installed(HostFaultPlan.parse("enospc=1.0")):
            with pytest.raises(OSError) as exc_info:
                atomic_write_text(path, "new generation")
        assert exc_info.value.errno == errno.ENOSPC
        assert path.read_text() == "old generation"
        # the hook fires before mkstemp, so nothing is left behind
        assert list(tmp_path.iterdir()) == [path]

    def test_eio_raises_with_errno(self, tmp_path):
        with hostfaults.installed(HostFaultPlan.parse("eio=1.0")):
            with pytest.raises(OSError) as exc_info:
                atomic_write_text(tmp_path / "x.json", "{}")
        assert exc_info.value.errno == errno.EIO

    def test_torn_write_is_a_strict_prefix(self, tmp_path):
        path = tmp_path / "x.json"
        text = json.dumps({"k": list(range(40))})
        with hostfaults.installed(HostFaultPlan.parse("torn=1.0")):
            atomic_write_text(path, text)
        stored = path.read_text()
        assert len(stored) < len(text)
        assert text.startswith(stored)

    def test_bitflip_changes_exactly_one_character(self, tmp_path):
        path = tmp_path / "x.json"
        text = json.dumps({"k": list(range(40))})
        with hostfaults.installed(HostFaultPlan.parse("bitflip=1.0")):
            atomic_write_text(path, text)
        stored = path.read_text()
        assert len(stored) == len(text)
        diffs = [i for i, (a, b) in enumerate(zip(text, stored)) if a != b]
        assert len(diffs) == 1

    def test_per_file_write_index_keys_decisions(self):
        # two injectors from the same plan replay the same mangle
        # sequence write for write — the per-name counter, not wall
        # clock or randomness, keys every decision
        from pathlib import Path

        plan = HostFaultPlan.parse("torn=0.5,bitflip=0.3", seed=7)
        text = "x" * 200
        inj_a, inj_b = HostFaultInjector(plan), HostFaultInjector(plan)
        seq_a = [inj_a.filter_write(Path("f.json"), text)
                 for _ in range(16)]
        seq_b = [inj_b.filter_write(Path("f.json"), text)
                 for _ in range(16)]
        assert seq_a == seq_b
        # a 0.5/0.3 plan over 16 writes mangles some and spares others
        assert any(s != text for s in seq_a)
        assert any(s == text for s in seq_a)

    def test_targets_scope_the_blast_radius(self, tmp_path):
        plan = HostFaultPlan.parse("enospc=1.0",
                                   targets=("trace-*.json",))
        with hostfaults.installed(plan):
            atomic_write_text(tmp_path / "sweep.ckpt", "safe")
            with pytest.raises(OSError):
                atomic_write_text(tmp_path / "trace-abc.json", "{}")
        assert (tmp_path / "sweep.ckpt").read_text() == "safe"


class TestNoOpGuarantee:
    def test_no_plan_and_zero_rate_plan_write_identical_bytes(
            self, tmp_path):
        text = json.dumps({"payload": list(range(100))}, indent=1)
        bare = tmp_path / "bare.json"
        zeroed = tmp_path / "zeroed.json"
        atomic_write_text(bare, text)
        with hostfaults.installed(_all_zero_plan()):
            atomic_write_text(zeroed, text)
        assert bare.read_bytes() == zeroed.read_bytes()

    def test_installed_restores_previous_state(self):
        assert hostfaults.active_plan() is None
        assert atomicio._WRITE_HOOK is None
        outer = HostFaultPlan.parse("torn=1.0")
        with hostfaults.installed(outer):
            assert hostfaults.active_plan() is outer
            with hostfaults.installed(_all_zero_plan()):
                assert hostfaults.active_plan() is not outer
            assert hostfaults.active_plan() is outer
            assert atomicio._WRITE_HOOK is not None
        assert hostfaults.active_plan() is None
        assert atomicio._WRITE_HOOK is None

    def test_maybe_disrupt_without_plan_is_a_noop(self):
        hostfaults.maybe_disrupt(None, ("cc", "internet", "titanv"), 0)

    def test_disrupt_generations_bounds_worker_faults(self):
        plan = HostFaultPlan.parse("kill=1.0", disrupt_generations=1,
                                   stall_seconds=0.0)
        key = ("cc", "internet", "titanv")
        # generation >= bound returns before any trigger is drawn —
        # safe to call in-process even with kill=1.0
        hostfaults.maybe_disrupt(plan, key, 1)
        hostfaults.maybe_disrupt(plan, key, 5)
        assert plan.triggers(HostFaultKind.WORKER_KILL, *key, 0)


def test_atomic_write_fsyncs_parent_directory(tmp_path, monkeypatch):
    synced_dirs = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced_dirs.append(stat.S_ISDIR(os.fstat(fd).st_mode))
        real_fsync(fd)

    monkeypatch.setattr(atomicio.os, "fsync", recording_fsync)
    atomic_write_text(tmp_path / "x.json", "{}")
    assert True in synced_dirs    # the parent directory entry table
    assert False in synced_dirs   # the payload itself


# ----------------------------------------------------------------------
# Self-healing trace cache
# ----------------------------------------------------------------------
def _trace(seed: int = 0) -> Trace:
    stats = AccessStats()
    stats.rounds = 3
    return Trace(algorithm="cc", variant=Variant.BASELINE, seed=seed,
                 staleness_rounds=-1, graph_fp=f"graph{seed}",
                 plan_fp="plan", stats=stats, output_fp="out", output=None)


class TestTraceCacheSelfHealing:
    def test_disk_roundtrip_with_checksum(self, tmp_path):
        writer = TraceCache(disk_dir=tmp_path)
        trace = _trace()
        writer.store(trace)
        files = list(tmp_path.glob("trace-*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["format"] == TRACE_FORMAT
        assert payload["crc"] == payload_crc(payload)
        reader = TraceCache(disk_dir=tmp_path)
        hit = reader.lookup(trace.key())
        assert hit is not None and hit.rounds == 3 and hit.output is None
        assert reader.disk_hits == 1 and reader.quarantined == 0

    def test_torn_file_quarantined_then_healed(self, tmp_path):
        writer = TraceCache(disk_dir=tmp_path)
        trace = _trace()
        writer.store(trace)
        path = next(tmp_path.glob("trace-*.json"))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        reader = TraceCache(disk_dir=tmp_path)
        assert reader.lookup(trace.key()) is None
        assert reader.quarantined == 1
        assert not path.exists()
        corpses = list(tmp_path.glob("*.corrupt"))
        assert len(corpses) == 1
        # re-recording heals the slot; the corpse stays for post-mortem
        reader.store(trace)
        healed = TraceCache(disk_dir=tmp_path)
        assert healed.lookup(trace.key()) is not None
        assert list(tmp_path.glob("*.corrupt")) == corpses

    def test_bitflip_caught_by_checksum(self, tmp_path):
        writer = TraceCache(disk_dir=tmp_path)
        trace = _trace()
        writer.store(trace)
        path = next(tmp_path.glob("trace-*.json"))
        path.write_text(path.read_text().replace('"output_fp": "out"',
                                                 '"output_fp": "oot"'))
        reader = TraceCache(disk_dir=tmp_path)
        assert reader.lookup(trace.key()) is None
        assert reader.quarantined == 1
        assert list(tmp_path.glob("*.corrupt"))

    def test_wrong_shape_quarantined(self, tmp_path):
        writer = TraceCache(disk_dir=tmp_path)
        trace = _trace()
        writer.store(trace)
        path = next(tmp_path.glob("trace-*.json"))
        path.write_text("[1, 2, 3]")
        reader = TraceCache(disk_dir=tmp_path)
        assert reader.lookup(trace.key()) is None
        assert reader.quarantined == 1

    def test_old_format_is_a_plain_miss_not_a_quarantine(self, tmp_path):
        writer = TraceCache(disk_dir=tmp_path)
        trace = _trace()
        writer.store(trace)
        path = next(tmp_path.glob("trace-*.json"))
        payload = json.loads(path.read_text())
        payload["format"] = 1
        path.write_text(json.dumps(payload))
        reader = TraceCache(disk_dir=tmp_path)
        assert reader.lookup(trace.key()) is None
        assert reader.quarantined == 0
        assert path.exists()  # left in place to be re-recorded over

    def test_degrades_to_memory_after_consecutive_disk_errors(
            self, tmp_path):
        plan = HostFaultPlan.parse("enospc=1.0",
                                   targets=("trace-*.json",))
        cache = TraceCache(disk_dir=tmp_path)
        with hostfaults.installed(plan):
            for seed in range(DEGRADE_AFTER):
                cache.store(_trace(seed))
            assert cache.degraded
            assert cache.disk_errors == DEGRADE_AFTER
            # degraded mode stops touching the disk entirely
            cache.store(_trace(DEGRADE_AFTER))
            assert cache.disk_errors == DEGRADE_AFTER
        # the memory layer never lost anything
        assert len(cache) == DEGRADE_AFTER + 1
        for seed in range(DEGRADE_AFTER + 1):
            assert cache.lookup(_trace(seed).key()) is not None
        assert not list(tmp_path.glob("trace-*.json"))

    def test_intervening_success_resets_the_degrade_counter(
            self, tmp_path):
        plan = HostFaultPlan.parse("enospc=1.0",
                                   targets=("trace-*.json",))
        cache = TraceCache(disk_dir=tmp_path)
        with hostfaults.installed(plan):
            cache.store(_trace(0))
            cache.store(_trace(1))
        cache.store(_trace(2))  # uninjected: succeeds, resets the run
        with hostfaults.installed(plan):
            cache.store(_trace(3))
            cache.store(_trace(4))
        assert cache.disk_errors == 4
        assert not cache.degraded
