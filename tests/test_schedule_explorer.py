"""Acceptance tests for systematic schedule exploration (repro.check).

The central scenario is the one from the paper's Fig. 1 discussion: a
two-thread unprotected counter increment.  The explorer must enumerate
the full bounded schedule space, beat naive DFS via DPOR, find the
race, and produce a minimized decision log that replays to the
identical failing state.
"""

from __future__ import annotations

import pytest

from repro.check import (
    BUDGETS,
    ExploreBudget,
    ReplayScheduler,
    ScheduleExplorer,
    check,
    replay_failure,
)
from repro.check.harness import Program
from repro.errors import ExplorationError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.atomics import atomic_add


def racy_counter_kernel(ctx, ctr):
    v = yield ctx.load(ctr, 0, AccessKind.VOLATILE)
    yield ctx.store(ctr, 0, v + 1, AccessKind.VOLATILE)


def atomic_counter_kernel(ctx, ctr):
    yield from atomic_add(ctx, ctr, 0, 1)


def counter_setup(mem):
    return (mem.alloc("ctr", 1, DType.I32),)


def counter_invariant(mem, handles):
    return mem.element_read(handles[0], 0) == 2


WIDE_BUDGET = ExploreBudget(max_schedules=500, max_steps_per_run=1_000,
                            max_seconds=30.0, preemption_bound=4)


def run_check(kernel, **kw):
    kw.setdefault("budget", WIDE_BUDGET)
    return check(kernel, 2, setup=counter_setup,
                 invariant=counter_invariant, **kw)


class TestAcceptanceScenario:
    """The ISSUE's acceptance criterion, end to end."""

    def test_racy_counter_full_story(self):
        report = run_check(racy_counter_kernel, compare_naive=True)

        # full bounded schedule space enumerated
        assert report.explore.complete
        assert report.naive.complete
        # two threads, two decisions each: C(4,2) = 6 naive schedules;
        # sleep-set DPOR needs only 4 representatives
        assert report.naive.schedules == 6
        assert report.explore.schedules == 4
        assert report.dpor_reduction == pytest.approx(1.5)

        # the race is found
        assert not report.ok
        kinds = {r.kind for r in report.races}
        assert "write-write" in kinds and "read-write" in kinds

        # a minimized decision log replays to the identical bad state
        inv = next(f for f in report.failures if f.kind == "invariant")
        assert inv.replay_verified
        assert inv.minimized is not None
        assert len(inv.minimized.deviations) == 1  # one forced preemption
        program = Program("counter", counter_setup,
                          lambda ex, h: ex.launch(
                              racy_counter_kernel, 2, *h, block_dim=2),
                          counter_invariant)
        first = replay_failure(program, inv.repro_log, budget=WIDE_BUDGET)
        second = replay_failure(program, inv.repro_log, budget=WIDE_BUDGET)
        assert first.fingerprint == second.fingerprint == inv.fingerprint
        assert first.check_ok is False

    def test_race_free_counter_passes_exhaustively(self):
        report = run_check(atomic_counter_kernel)
        assert report.explore.complete
        assert report.ok
        assert not report.races  # neither actual nor predicted
        assert report.explore.distinct_final_states == 1
        # two atomic RMWs commute-check as dependent, so both orders run
        assert report.explore.schedules == 2


class TestExplorationControls:
    def test_schedule_budget_truncates(self):
        tight = ExploreBudget(max_schedules=2, max_steps_per_run=1_000,
                              max_seconds=30.0, preemption_bound=4)
        report = run_check(racy_counter_kernel, budget=tight)
        assert report.explore.schedules == 2
        assert not report.explore.complete

    def test_preemption_bound_zero_keeps_run_to_completion_orders(self):
        bound0 = ExploreBudget(max_schedules=100, max_steps_per_run=1_000,
                               max_seconds=30.0, preemption_bound=0)
        # naive DFS under bound 0: exactly the two serial orders
        report = run_check(racy_counter_kernel, budget=bound0,
                           mode="naive")
        assert report.explore.complete
        assert report.explore.schedules == 2
        assert report.explore.preemption_pruned > 0
        # serial orders of the counter are correct — but the race is
        # still flagged because the accesses are unsynchronized
        assert report.races
        # DPOR under bound 0 prunes the conflict-seeded branch too (the
        # backtrack point IS a preemption) but keeps the race verdict
        dpor = run_check(racy_counter_kernel, budget=bound0)
        assert dpor.explore.preemption_pruned > 0
        assert dpor.races

    def test_state_dedupe_preserves_the_verdict(self):
        plain = run_check(racy_counter_kernel)
        deduped = run_check(racy_counter_kernel, state_dedupe=True)
        assert deduped.races and not deduped.ok
        assert deduped.explore.schedules <= plain.explore.schedules

    def test_naive_mode_explores_everything(self):
        report = run_check(racy_counter_kernel, mode="naive")
        assert report.explore.complete
        assert report.explore.schedules == 6

    def test_stop_on_failure_short_circuits(self):
        report = run_check(racy_counter_kernel, stop_on_failure=True)
        assert report.failures
        assert report.explore.stopped_early
        assert report.explore.schedules < 4

    def test_unknown_mode_and_budget_rejected(self):
        with pytest.raises(ExplorationError):
            ScheduleExplorer(lambda s, p=None: None, mode="bogus")
        with pytest.raises(ExplorationError):
            ScheduleExplorer(lambda s, p=None: None, budget="huge")

    def test_named_budgets_are_ordered(self):
        assert (BUDGETS["smoke"].max_schedules
                < BUDGETS["default"].max_schedules
                < BUDGETS["deep"].max_schedules)
        assert "schedules" in BUDGETS["smoke"].describe()


class TestBarrierAndMultiLaunch:
    def test_barrier_limits_the_schedule_space(self):
        """With a barrier between write and read phases, DPOR sees no
        conflicting concurrent pair and needs exactly one schedule."""

        def kernel(ctx, arr, out):
            yield ctx.store(arr, ctx.tid, ctx.tid + 1, AccessKind.PLAIN)
            yield ctx.barrier()
            v = yield ctx.load(arr, 1 - ctx.tid, AccessKind.PLAIN)
            yield ctx.store(out, ctx.tid, v, AccessKind.PLAIN)

        def setup(mem):
            return (mem.alloc("arr", 2, DType.I32),
                    mem.alloc("out", 2, DType.I32))

        def invariant(mem, handles):
            return (mem.element_read(handles[1], 0) == 2
                    and mem.element_read(handles[1], 1) == 1)

        report = check(kernel, 2, setup=setup, invariant=invariant,
                       budget=WIDE_BUDGET)
        assert report.ok
        assert report.explore.complete
        assert report.explore.schedules == 1

    def test_two_launch_program_explores_and_passes(self):
        def kernel(ctx, arr):
            v = yield ctx.load(arr, ctx.tid, AccessKind.PLAIN)
            yield ctx.store(arr, ctx.tid, v + 1, AccessKind.PLAIN)

        def setup(mem):
            return (mem.alloc("arr", 2, DType.I32),)

        def execute(ex, handles):
            ex.launch(kernel, 2, *handles, block_dim=2)
            ex.launch(kernel, 2, *handles, block_dim=2)

        def invariant(mem, handles):
            return (mem.element_read(handles[0], 0) == 2
                    and mem.element_read(handles[0], 1) == 2)

        program = Program("two-launch", setup, execute, invariant)
        report = check(program, budget=WIDE_BUDGET)
        assert report.ok
        assert report.explore.complete
        # threads touch disjoint elements: one schedule per launch
        assert report.explore.schedules == 1

    def test_replay_covers_multiple_launches(self):
        def kernel(ctx, arr):
            v = yield ctx.load(arr, 0, AccessKind.VOLATILE)
            yield ctx.store(arr, 0, v + 1, AccessKind.VOLATILE)

        def setup(mem):
            return (mem.alloc("arr", 1, DType.I32),)

        def execute(ex, handles):
            ex.launch(kernel, 2, *handles, block_dim=2)
            ex.launch(kernel, 2, *handles, block_dim=2)

        program = Program("racy-two-launch", setup, execute,
                          lambda mem, h: mem.element_read(h[0], 0) == 4)
        report = check(program, budget=WIDE_BUDGET)
        assert not report.ok
        inv = next((f for f in report.failures if f.kind == "invariant"),
                   None)
        assert inv is not None and inv.replay_verified
        assert len(inv.repro_log.launches) == 2


class TestRunnerContract:
    def test_nondeterministic_runner_is_diagnosed(self):
        """A runner whose runnable sets drift between executions must
        raise ExplorationError, not silently explore garbage."""
        calls = {"n": 0}

        def flaky_runner(scheduler, probe=None):
            from repro.check import RunOutcome
            calls["n"] += 1
            scheduler.reset()
            threads = [0, 1] if calls["n"] % 2 else [0, 1, 2]
            for _ in range(2):
                scheduler.choose(threads)
            return RunOutcome(events=[], fingerprint=None)

        explorer = ScheduleExplorer(flaky_runner, mode="naive",
                                    budget=WIDE_BUDGET)
        with pytest.raises(ExplorationError):
            explorer.explore()
