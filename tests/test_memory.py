"""Tests for the byte-granular global memory model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryAccessError
from repro.gpu.accesses import DType, MemSpan
from repro.gpu.memory import (
    GlobalMemory,
    pack_int2,
    split_native_words,
    unpack_int2,
)


class TestAllocation:
    def test_alloc_and_fill(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 4, DType.I32, fill=-1)
        assert all(mem.element_read(h, i) == -1 for i in range(4))

    def test_double_alloc_rejected(self):
        mem = GlobalMemory()
        mem.alloc("a", 1, DType.I32)
        with pytest.raises(MemoryAccessError):
            mem.alloc("a", 1, DType.I32)

    def test_negative_length_rejected(self):
        with pytest.raises(MemoryAccessError):
            GlobalMemory().alloc("a", -1, DType.I32)

    def test_free_then_use_rejected(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 1, DType.I32)
        mem.free("a")
        with pytest.raises(MemoryAccessError):
            mem.element_read(h, 0)

    def test_free_unallocated_rejected(self):
        with pytest.raises(MemoryAccessError):
            GlobalMemory().free("nope")

    def test_handle_lookup(self):
        mem = GlobalMemory()
        h = mem.alloc("x", 3, DType.U8)
        assert mem.handle("x") == h
        with pytest.raises(MemoryAccessError):
            mem.handle("y")


class TestTransfer:
    def test_upload_download_i32(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 5, DType.I32)
        vals = np.array([-2, -1, 0, 1, 2], dtype=np.int64)
        mem.upload(h, vals)
        assert np.array_equal(mem.download(h), vals)

    def test_upload_download_u8(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 4, DType.U8)
        mem.upload(h, np.array([0, 127, 200, 255]))
        assert np.array_equal(mem.download(h), [0, 127, 200, 255])

    def test_upload_download_i64(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 3, DType.I64)
        vals = np.array([-(1 << 40), 0, (1 << 40)], dtype=np.int64)
        mem.upload(h, vals)
        assert np.array_equal(mem.download(h), vals)

    def test_upload_length_checked(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 3, DType.I32)
        with pytest.raises(MemoryAccessError):
            mem.upload(h, np.zeros(4))


class TestElementOps:
    @pytest.mark.parametrize("dtype,value", [
        (DType.U8, 0xAB),
        (DType.I32, -123456),
        (DType.U32, 0xDEADBEEF),
        (DType.I64, -(1 << 50)),
        (DType.U64, (1 << 60) + 7),
        (DType.INT2, pack_int2(-3, 9)),
    ])
    def test_write_read_roundtrip(self, dtype, value):
        mem = GlobalMemory()
        h = mem.alloc("a", 2, dtype)
        mem.element_write(h, 1, value)
        assert mem.element_read(h, 1) == value

    def test_out_of_bounds_element(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 2, DType.I32)
        with pytest.raises(MemoryAccessError):
            h.span(2)
        with pytest.raises(MemoryAccessError):
            h.span(-1)

    def test_subspan_bounds(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 1, DType.I64)
        h.subspan(0, 4, 4)  # high half OK
        with pytest.raises(MemoryAccessError):
            h.subspan(0, 5, 4)

    def test_cast_span_bounds(self):
        mem = GlobalMemory()
        h = mem.alloc("a", 8, DType.U8)
        h.cast_span(4, 4)
        with pytest.raises(MemoryAccessError):
            h.cast_span(6, 4)

    def test_char_array_int_view(self):
        """Fig. 3: an int-sized read over a char array sees 4 bytes."""
        mem = GlobalMemory()
        h = mem.alloc("stat", 8, DType.U8)
        for i, b in enumerate([0x11, 0x22, 0x33, 0x44]):
            mem.element_write(h, 4 + i, b)
        word = mem.span_read(h.cast_span(4, 4))
        assert word == 0x44332211  # little-endian


class TestWordSplitting:
    def test_aligned_64bit_splits_in_two(self):
        pieces = split_native_words(MemSpan("a", 8, 8))
        assert [(p.start, p.nbytes) for p in pieces] == [(8, 4), (12, 4)]

    def test_single_byte_stays_whole(self):
        pieces = split_native_words(MemSpan("a", 5, 1))
        assert len(pieces) == 1

    def test_unaligned_span_splits_at_boundary(self):
        pieces = split_native_words(MemSpan("a", 6, 4))
        assert [(p.start, p.nbytes) for p in pieces] == [(6, 2), (8, 2)]

    @given(st.integers(0, 64), st.integers(1, 16))
    def test_pieces_cover_exactly(self, start, nbytes):
        pieces = split_native_words(MemSpan("a", start, nbytes))
        covered = []
        for p in pieces:
            covered.extend(range(p.start, p.end))
        assert covered == list(range(start, start + nbytes))


class TestInt2:
    def test_pack_unpack(self):
        assert unpack_int2(pack_int2(-5, 1 << 30)) == (-5, 1 << 30)

    @given(st.integers(-(2 ** 31), 2 ** 31 - 1),
           st.integers(-(2 ** 31), 2 ** 31 - 1))
    def test_roundtrip(self, a, b):
        assert unpack_int2(pack_int2(a, b)) == (a, b)


class TestSpanOverlap:
    def test_overlap_same_array(self):
        assert MemSpan("a", 0, 4).overlaps(MemSpan("a", 3, 4))
        assert not MemSpan("a", 0, 4).overlaps(MemSpan("a", 4, 4))

    def test_no_overlap_across_arrays(self):
        assert not MemSpan("a", 0, 4).overlaps(MemSpan("b", 0, 4))
