"""Unit and property tests for the CSR graph representation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph


def edges_strategy(max_n: int = 30, max_m: int = 80):
    return st.integers(min_value=2, max_value=max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_m,
            ),
        )
    )


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [2]

    def test_symmetrize_doubles_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1)], directed=False, symmetrize=True)
        assert g.num_edges == 2
        assert list(g.neighbors(1)) == [0]

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)], directed=True)
        assert g.num_edges == 1

    def test_duplicates_deduped(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 1), (0, 1)], directed=True)
        assert g.num_edges == 1

    def test_dedupe_keeps_minimum_weight(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 1)], directed=True,
                                weights=[9, 4])
        assert g.num_edges == 1
        assert g.weights[0] == 4

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5)], directed=True)

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(-1, 0)], directed=True)

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(0, 1)], directed=True, weights=[1, 2])


class TestValidation:
    def test_bad_offsets_start(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32),
                     directed=True)

    def test_decreasing_offsets(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int32),
                     directed=True)

    def test_offsets_end_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0], dtype=np.int32),
                     directed=True)

    def test_out_of_range_index(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([7], dtype=np.int32),
                     directed=True)


class TestAccessors:
    def test_degrees_match_neighbors(self, small_graph):
        degs = small_graph.degrees()
        for v in range(0, small_graph.num_vertices, 17):
            assert degs[v] == len(small_graph.neighbors(v))

    def test_edge_array_consistent_with_iteration(self, two_triangles):
        src, dst = two_triangles.edge_array()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(
            two_triangles.edges())

    def test_vertex_bounds_checked(self, two_triangles):
        with pytest.raises(GraphError):
            two_triangles.neighbors(99)
        with pytest.raises(GraphError):
            two_triangles.degree(-1)


class TestDerived:
    def test_reversed_swaps_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        r = g.reversed()
        assert sorted(r.edges()) == [(1, 0), (2, 1)]

    def test_reversed_twice_is_identity(self, tiny_directed):
        rr = tiny_directed.reversed().reversed()
        assert sorted(rr.edges()) == sorted(tiny_directed.edges())

    def test_symmetric_check(self, two_triangles, tiny_directed):
        assert two_triangles.check_symmetric()

    def test_random_weights_symmetric(self, two_triangles):
        g = two_triangles.with_random_weights(seed=3)
        weight_of = {}
        src, dst = g.edge_array()
        for u, v, w in zip(src.tolist(), dst.tolist(), g.weights.tolist()):
            weight_of[(u, v)] = w
        for (u, v), w in weight_of.items():
            assert weight_of[(v, u)] == w

    def test_random_weights_deterministic(self, two_triangles):
        a = two_triangles.with_random_weights(seed=3).weights
        b = two_triangles.with_random_weights(seed=3).weights
        assert np.array_equal(a, b)

    def test_random_weights_seed_sensitivity(self, small_graph):
        a = small_graph.with_random_weights(seed=1).weights
        b = small_graph.with_random_weights(seed=2).weights
        assert not np.array_equal(a, b)

    def test_to_networkx_roundtrip_counts(self, small_graph):
        nxg = small_graph.to_networkx()
        assert nxg.number_of_nodes() == small_graph.num_vertices
        # undirected networkx collapses both CSR directions into one edge
        assert nxg.number_of_edges() == small_graph.num_edges // 2

    def test_weights_required_for_edge_weights_of(self, two_triangles):
        with pytest.raises(GraphError):
            two_triangles.edge_weights_of(0)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(edges_strategy())
    def test_csr_invariants(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, np.array(edges, dtype=np.int64).reshape(-1, 2),
                                directed=False, symmetrize=True)
        # offsets monotone, bounded
        assert g.row_offsets[0] == 0
        assert g.row_offsets[-1] == g.num_edges
        assert np.all(np.diff(g.row_offsets) >= 0)
        # symmetry: (u, v) implies (v, u)
        pairs = set(zip(*[a.tolist() for a in g.edge_array()]))
        assert all((v, u) in pairs for (u, v) in pairs)
        # no self-loops
        assert all(u != v for (u, v) in pairs)
        # degrees sum to edge count
        assert int(g.degrees().sum()) == g.num_edges
