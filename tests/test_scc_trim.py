"""Tests for SCC's trim-1 preprocessing and the inputs CLI command."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import scc, verify
from repro.core.variants import Variant, get_algorithm
from repro.gpu.device import get_device
from repro.gpu.timing import TimingModel
from repro.graphs import generators as gen
from repro.perf.engine import Recorder, algorithm_plan


def run_scc(graph, trim: bool, variant=Variant.BASELINE):
    device = get_device("titanv")
    algo = get_algorithm("scc")
    recorder = Recorder(algorithm_plan(algo), variant, device)
    out = scc.run_perf(graph, recorder, seed=7, trim=trim)
    return out, recorder.stats, TimingModel(device).estimate_ms(recorder.stats)


class TestTrim:
    @pytest.mark.parametrize("trim", [False, True])
    def test_results_identical(self, tiny_directed, trim):
        out, _, _ = run_scc(tiny_directed, trim)
        verify.check_scc(tiny_directed, out["labels"])

    def test_partitions_agree(self, tiny_directed):
        a, _, _ = run_scc(tiny_directed, trim=False)
        b, _, _ = run_scc(tiny_directed, trim=True)
        # same partition (labels may differ only by renaming)
        la, lb = a["labels"], b["labels"]
        mapping = {}
        for x, y in zip(la.tolist(), lb.tolist()):
            assert mapping.setdefault(x, y) == y

    def test_trim_reduces_traffic_on_powerlaw(self):
        """Power-law graphs have many zero-in-degree leaves; trimming
        them cuts the propagation workload."""
        g = gen.directed_powerlaw(800, 6.0, seed=4)
        _, stats_plain, _ = run_scc(g, trim=False)
        _, stats_trim, _ = run_scc(g, trim=True)
        assert stats_trim.plain_loads < stats_plain.plain_loads

    def test_trim_on_dag_settles_everything(self):
        edges = np.array([(0, 1), (1, 2), (0, 2), (2, 3)])
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(4, edges, directed=True)
        out, stats, _ = run_scc(g, trim=True)
        verify.check_scc(g, out["labels"])

    def test_trim_noop_on_single_cycle(self, directed_cycle):
        """A cycle has no trivial vertices: trim must retire nothing."""
        out, _, _ = run_scc(directed_cycle, trim=True)
        assert len(set(out["labels"].tolist())) == 1


class TestInputsCommand:
    def test_undirected_table(self, capsys):
        from repro.cli import main

        assert main(["inputs"]) == 0
        out = capsys.readouterr().out
        assert "Table II analog" in out
        assert "soc-LiveJournal1" in out
        assert "4847571" in out  # the paper's vertex count appears

    def test_directed_table(self, capsys):
        from repro.cli import main

        assert main(["inputs", "--directed"]) == 0
        out = capsys.readouterr().out
        assert "Table III analog" in out
        assert "klein-bottle" in out
