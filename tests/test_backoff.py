"""Unit tests for repro.utils.backoff (exponential + full jitter)."""

from __future__ import annotations

import pytest

from repro.utils.backoff import BackoffPolicy, full_jitter_delay


class TestNominal:
    def test_exponential_growth(self):
        policy = BackoffPolicy(base_s=0.5, jitter=False)
        assert [policy.nominal(a) for a in range(4)] == [
            0.5, 1.0, 2.0, 4.0]

    def test_cap_applies(self):
        policy = BackoffPolicy(base_s=1.0, cap_s=3.0, jitter=False)
        assert [policy.nominal(a) for a in range(4)] == [
            1.0, 2.0, 3.0, 3.0]

    def test_custom_multiplier(self):
        policy = BackoffPolicy(base_s=1.0, multiplier=3.0, jitter=False)
        assert policy.nominal(2) == 9.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=1.0, multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=1.0, cap_s=-2.0)


class TestJitter:
    def test_delay_within_full_jitter_bounds(self):
        policy = BackoffPolicy(base_s=1.0, seed=7)
        for attempt in range(5):
            delay = policy.delay(attempt)
            assert 0.0 <= delay < policy.nominal(attempt)

    def test_deterministic_per_seed_and_salt(self):
        a = BackoffPolicy(base_s=1.0, seed=7)
        b = BackoffPolicy(base_s=1.0, seed=7)
        assert [a.delay(i) for i in range(4)] == [
            b.delay(i) for i in range(4)]
        assert a.delay(2, salt="x") != pytest.approx(
            a.delay(2, salt="y"))

    def test_different_seeds_differ(self):
        a = BackoffPolicy(base_s=1.0, seed=1)
        b = BackoffPolicy(base_s=1.0, seed=2)
        assert [a.delay(i) for i in range(6)] != [
            b.delay(i) for i in range(6)]

    def test_no_jitter_returns_nominal(self):
        policy = BackoffPolicy(base_s=0.25, jitter=False)
        assert policy.delay(3) == policy.nominal(3) == 2.0


class TestDeadlineClamp:
    def test_remaining_time_caps_the_delay(self):
        policy = BackoffPolicy(base_s=100.0, jitter=False)
        assert policy.delay(0, remaining_s=0.25) == 0.25

    def test_exhausted_deadline_means_no_sleep(self):
        policy = BackoffPolicy(base_s=1.0, jitter=False)
        assert policy.delay(0, remaining_s=0.0) == 0.0
        assert policy.delay(0, remaining_s=-5.0) == 0.0

    def test_none_remaining_is_unbounded(self):
        policy = BackoffPolicy(base_s=4.0, jitter=False)
        assert policy.delay(0, remaining_s=None) == 4.0


def test_full_jitter_delay_convenience():
    delay = full_jitter_delay(0.5, attempt=2, seed=3)
    assert 0.0 <= delay < 2.0
    assert delay == full_jitter_delay(0.5, attempt=2, seed=3)
