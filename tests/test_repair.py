"""Unit tests for the repro.repair stages and the override hooks."""

import pytest

from repro.core.transform import site_kind, with_site_kinds
from repro.core.variants import Variant
from repro.errors import ReproError, StudyError
from repro.gpu.accesses import AccessKind, MemoryOrder
from repro.gpu.overrides import (
    active_overrides,
    current_override,
    site_kind_overrides,
)
from repro.repair.localize import cluster_obligations, localize
from repro.repair.prefilter import prefilter
from repro.repair.synth import Fix, FixSet, synthesize
from repro.repair.targets import get_target, list_targets
from repro.repair.verify import reference_output, run_once, verify_candidate


class TestOverrides:
    def test_no_override_by_default(self):
        assert current_override("cc.label.jump_read") is None
        assert active_overrides() == {}

    def test_override_shadows_plan(self):
        from repro.algorithms import cc

        plan = cc.ACCESS_PLAN
        base = site_kind(plan, Variant.BASELINE, "cc.label.jump_read")
        assert base is AccessKind.PLAIN
        with site_kind_overrides({"cc.label.jump_read":
                                  AccessKind.ATOMIC}):
            assert site_kind(plan, Variant.BASELINE,
                             "cc.label.jump_read") is AccessKind.ATOMIC
        # restored on exit
        assert site_kind(plan, Variant.BASELINE,
                         "cc.label.jump_read") is base

    def test_overrides_nest_innermost_wins(self):
        with site_kind_overrides({"x": AccessKind.VOLATILE}):
            with site_kind_overrides({"x": AccessKind.ATOMIC}):
                assert current_override("x") is AccessKind.ATOMIC
            assert current_override("x") is AccessKind.VOLATILE
        assert current_override("x") is None

    def test_override_must_name_real_site(self):
        from repro.algorithms import cc

        with site_kind_overrides({"cc.nonexistent": AccessKind.ATOMIC}):
            with pytest.raises(StudyError):
                site_kind(cc.ACCESS_PLAN, Variant.BASELINE,
                          "cc.nonexistent")

    def test_non_kind_value_rejected(self):
        with pytest.raises(ReproError):
            with site_kind_overrides({"x": "atomic"}):
                pass


class TestWithSiteKinds:
    def test_replaces_only_named_sites(self):
        from repro.algorithms import cc

        plan = with_site_kinds(cc.ACCESS_PLAN,
                               {"cc.label.jump_read": AccessKind.ATOMIC})
        assert plan.site("cc.label.jump_read").kind is AccessKind.ATOMIC
        assert plan.site("cc.label.jump_write").kind is AccessKind.PLAIN

    def test_orders_applied(self):
        from repro.algorithms import cc

        plan = with_site_kinds(
            cc.ACCESS_PLAN,
            {"cc.label.jump_read": AccessKind.ATOMIC},
            orders={"cc.label.jump_read": MemoryOrder.SEQ_CST})
        assert plan.site("cc.label.jump_read").order is MemoryOrder.SEQ_CST

    def test_unknown_site_rejected(self):
        from repro.algorithms import cc

        with pytest.raises(StudyError):
            with_site_kinds(cc.ACCESS_PLAN, {"nope": AccessKind.ATOMIC})


class TestStableSiteIds:
    def test_site_id_uses_labels_not_offsets(self):
        from repro.repair.localize import collect_reports

        target = get_target("cc")
        reports, _ = collect_reports(target, seeds=(0,))
        labeled = [r for r in reports
                   if "cc.label" in r.site_id]
        assert labeled, "CC localization should hit labeled sites"
        # stable across graph positions: no byte offsets in the id
        for r in labeled:
            assert "[" not in r.site_id

    def test_to_json_shape(self):
        from repro.repair.localize import collect_reports

        target = get_target("twophase")
        reports, _ = collect_reports(target, seeds=(0,))
        assert reports
        blob = reports[0].to_json()
        assert blob["site_id"].startswith("tp_buf:")
        assert set(blob) >= {"array", "byte", "kind", "predicted",
                             "site_id", "fixable_sites", "accesses"}
        assert len(blob["accesses"]) == 2
        assert {a["site"] for a in blob["accesses"]} == {
            "twophase.buf.read", "twophase.buf.write"}


class TestLocalize:
    def test_twophase_obligation(self):
        target = get_target("twophase")
        obligations, events = localize(target, seeds=(0,))
        assert len(obligations) == 1
        ob = obligations[0]
        assert ob.sites == ("twophase.buf.read", "twophase.buf.write")
        assert events, "localization must surface the event stream"

    def test_cluster_merges_by_site_id(self):
        target = get_target("twophase")
        from repro.repair.localize import collect_reports

        reports, _ = collect_reports(target, seeds=(0, 1))
        merged = cluster_obligations(reports + reports)
        ids = [ob.obligation_id for ob in merged]
        assert len(ids) == len(set(ids))


class TestPrefilter:
    def test_private_and_atomic_sites_filtered(self):
        target = get_target("cc")
        obligations, events = localize(target, seeds=(0,))
        report = prefilter(target.plan, events, obligations)
        assert report.verdicts["cc.label.hook"] == "atomic"
        assert "cc.label.jump_read" in report.suspect_sites
        assert "cc.label.hook" not in report.suspect_sites

    def test_unshared_site_is_private(self):
        target = get_target("mis")
        report = prefilter(target.plan, [], [])
        assert report.verdicts["mis.prio.read"] == "private"

    def test_unexercised_site(self):
        target = get_target("scc")
        report = prefilter(target.plan, [], [])
        assert report.verdicts["scc.goagain.read"] == "unexercised"


class TestSynthesize:
    def test_candidates_exclude_filtered_sites(self):
        target = get_target("cc")
        obligations, events = localize(target, seeds=(0,))
        filtered = prefilter(target.plan, events, obligations)
        candidates = synthesize(target, obligations, filtered)
        for cand in candidates:
            assert "cc.label.hook" not in cand.kinds()

    def test_barrier_slot_candidates(self):
        target = get_target("twophase")
        obligations, events = localize(target, seeds=(0,))
        filtered = prefilter(target.plan, events, obligations)
        candidates = synthesize(target, obligations, filtered)
        labels = [c.label for c in candidates]
        assert "barrier:twophase.phase" in labels
        assert any(c.label == "atomic-suspects" for c in candidates)

    def test_max_candidates_cap(self):
        target = get_target("cc")
        obligations, events = localize(target, seeds=(0,))
        filtered = prefilter(target.plan, events, obligations)
        candidates = synthesize(target, obligations, filtered,
                                max_candidates=1)
        assert len(candidates) == 1

    def test_fixset_helpers(self):
        fs = FixSet(label="t", fixes=(
            Fix("promote", "a", to_kind=AccessKind.ATOMIC),
            Fix("promote", "b", to_kind=AccessKind.ATOMIC,
                order=MemoryOrder.SEQ_CST),
            Fix("barrier", "slot"),
        ))
        assert fs.kinds() == {"a": AccessKind.ATOMIC,
                              "b": AccessKind.ATOMIC}
        assert fs.orders() == {"b": MemoryOrder.SEQ_CST}
        assert fs.barriers() == frozenset({"slot"})
        smaller = fs.without(fs.fixes[0])
        assert smaller.size == 2


class TestVerify:
    def test_twophase_barrier_accepted(self):
        target = get_target("twophase")
        fs = FixSet(label="b", fixes=(Fix("barrier", "twophase.phase"),))
        verdict = verify_candidate(target, fs, budget="smoke")
        assert verdict.accepted
        assert verdict.verdict == "accepted"

    def test_twophase_atomic_rejected_by_invariant(self):
        target = get_target("twophase")
        fs = FixSet(label="a", fixes=(
            Fix("promote", "twophase.buf.read",
                to_kind=AccessKind.ATOMIC),
            Fix("promote", "twophase.buf.write",
                to_kind=AccessKind.ATOMIC),
        ))
        verdict = verify_candidate(target, fs, budget="smoke")
        assert not verdict.accepted

    def test_empty_fixset_rejected_when_racy(self):
        target = get_target("twophase")
        verdict = verify_candidate(target, FixSet(label="noop", fixes=()),
                                   budget="smoke")
        assert not verdict.accepted
        assert not verdict.race_free

    def test_unusable_candidate_rejected_not_raised(self):
        # a 1-byte site promoted to ATOMIC while the write stays
        # volatile cannot execute without the typecast helpers on the
        # *write* path; whatever the failure mode, it must surface as a
        # rejection, never as an exception
        target = get_target("twophase")
        fs = FixSet(label="x", fixes=(
            Fix("promote", "twophase.buf.read",
                to_kind=AccessKind.ATOMIC),))
        verdict = verify_candidate(target, fs, budget="smoke")
        assert not verdict.accepted

    def test_run_once_reports_output(self):
        target = get_target("cc")
        completed, ok, output = run_once(
            target, FixSet(label="rf", fixes=(
                Fix("promote", "cc.label.jump_read",
                    to_kind=AccessKind.ATOMIC),
                Fix("promote", "cc.label.jump_write",
                    to_kind=AccessKind.ATOMIC),
            )))
        assert completed and ok
        assert output is not None

    def test_reference_output_matches_racefree_variant(self):
        import numpy as np

        from repro.algorithms import cc

        target = get_target("cc")
        ref = reference_output(target)
        labels, _ = cc.run_simt(target.verify_graph, Variant.RACE_FREE)
        assert np.array_equal(np.asarray(ref), labels)


class TestTargets:
    def test_registry(self):
        assert list_targets() == ["apsp_shared", "cc", "gc", "mis",
                                  "mis_packed", "mst", "scc", "twophase"]
        with pytest.raises(ReproError):
            get_target("bogus")

    def test_gc_verify_graph_degree_bound(self):
        target = get_target("gc")
        assert int(target.verify_graph.degrees().max()) < 31

    def test_mst_target_graphs_are_preweighted(self):
        # run_simt would otherwise weight an internal copy the
        # invariant checker never sees
        target = get_target("mst")
        assert target.verify_graph.has_weights
        assert target.localize_graph.has_weights
        assert target.perf_graph.has_weights

    def test_mst_target_end_to_end(self):
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.simt import SimtExecutor

        target = get_target("mst")
        prog = target.build_program(frozenset())
        mem = GlobalMemory()
        handles = prog.setup(mem)
        prog.execute(SimtExecutor(mem), handles)
        prog.invariant(mem, handles)  # check_mst on the stashed mask
