"""Tests for the packed single-byte MIS mode (status + priority in one
byte — the paper's Section II.B.4 footprint optimization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import mis, verify
from repro.core.variants import Variant
from repro.graphs import generators as gen
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector


class TestPackedPriorities:
    def test_fit_in_the_byte_range(self, small_graph):
        packed = mis.make_packed_priorities(small_graph, seed=0)
        assert packed.min() >= 0
        assert packed.max() <= 0xFD  # below the IN/OUT markers

    def test_preserve_inverse_degree_ordering(self, small_graph):
        packed = mis.make_packed_priorities(small_graph, seed=0)
        degs = small_graph.degrees()
        hub = int(np.argmax(degs))
        leaf = int(np.argmin(degs))
        assert packed[leaf] >= packed[hub]

    def test_markers_distinct(self):
        assert mis.PACKED_IN != mis.PACKED_OUT
        assert mis.PACKED_IN > 0xFD and mis.PACKED_OUT > 0xFD


class TestPackedKernel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_valid_mis_under_schedules(self, tiny_graph, variant, seed):
        in_set, _ = mis.run_simt_packed(tiny_graph, variant,
                                        scheduler=RandomScheduler(seed))
        verify.check_mis(tiny_graph, in_set)

    def test_adversarial_schedules(self, tiny_graph):
        for seed in (5, 6):
            in_set, _ = mis.run_simt_packed(
                tiny_graph, Variant.RACE_FREE,
                scheduler=AdversarialScheduler(seed))
            verify.check_mis(tiny_graph, in_set)

    def test_quantized_ties_resolved(self):
        """Many vertices share a quantized priority byte on a clique-ish
        graph; the id tie-break must still yield a valid MIS."""
        g = gen.copaper_graph(40, 12.0, seed=3)
        in_set, _ = mis.run_simt_packed(g, Variant.RACE_FREE,
                                        scheduler=RandomScheduler(2))
        verify.check_mis(g, in_set)

    def test_baseline_races_racefree_clean(self, tiny_graph):
        _, ex = mis.run_simt_packed(tiny_graph, Variant.BASELINE,
                                    scheduler=RandomScheduler(3))
        races = RaceDetector().check(ex)
        assert any(r.array == "misp_nstat" for r in races)
        _, ex = mis.run_simt_packed(tiny_graph, Variant.RACE_FREE,
                                    scheduler=RandomScheduler(3))
        assert RaceDetector().check(ex) == []

    def test_set_size_comparable_to_unpacked(self, tiny_graph):
        packed, _ = mis.run_simt_packed(tiny_graph, Variant.RACE_FREE,
                                        scheduler=RandomScheduler(4))
        unpacked, _ = mis.run_simt(tiny_graph, Variant.RACE_FREE,
                                   scheduler=RandomScheduler(4))
        assert abs(int(packed.sum()) - int(unpacked.sum())) <= 3


class TestAblationHooks:
    def test_zero_staleness_removes_the_advantage(self, small_graph):
        from repro.core.variants import get_algorithm
        from repro.gpu.device import get_device
        from repro.gpu.timing import TimingModel
        from repro.perf.engine import Recorder, algorithm_plan

        device = get_device("titanv")
        algo = get_algorithm("mis")
        times = {}
        for variant in Variant:
            recorder = Recorder(algorithm_plan(algo), variant, device)
            mis.run_perf(small_graph, recorder, seed=7, stale_fraction=0.0)
            times[variant] = TimingModel(device).estimate_ms(recorder.stats)
        # without the visibility mechanism the race-free variant pays
        # the atomic extra and cannot win
        assert times[Variant.BASELINE] <= times[Variant.RACE_FREE] * 1.01

    def test_rounds_equal_without_staleness(self, small_graph):
        from repro.core.variants import get_algorithm
        from repro.gpu.device import get_device
        from repro.perf.engine import Recorder, algorithm_plan

        device = get_device("titanv")
        algo = get_algorithm("mis")
        rounds = {}
        for variant in Variant:
            recorder = Recorder(algorithm_plan(algo), variant, device)
            mis.run_perf(small_graph, recorder, seed=7, stale_fraction=0.0)
            rounds[variant] = recorder.stats.rounds
        assert rounds[Variant.BASELINE] == rounds[Variant.RACE_FREE]
