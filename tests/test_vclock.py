"""Vector-clock happens-before engine: unit tests and cross-checks
against the original pairwise shadow scan."""

from __future__ import annotations

import pytest

from repro.check.vclock import VectorClock, VectorClockEngine, conflicts
from repro.core.variants import Variant
from repro.gpu.accesses import AccessKind, DType, MemSpan
from repro.gpu.interleave import AdversarialScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector
from repro.gpu.simt import AccessEvent, SimtExecutor
from repro.errors import DeadlockError, ReproError
from repro.patterns import PATTERNS, execute_pattern, get_pattern


def ev(step, tid, *, launch=0, block=0, epoch=0, array="x", start=0,
       nbytes=4, read=False, write=False, access=AccessKind.PLAIN,
       value=0):
    return AccessEvent(step=step, launch=launch, tid=tid, block=block,
                       epoch=epoch,
                       span=MemSpan(array, start, nbytes),
                       is_read=read, is_write=write, access=access,
                       value=value)


def collect(events, history=4):
    """Run the engine standalone; return (first_tid, second_tid,
    predicted) triples deduped per pair."""
    seen = set()

    def on_report(a, b, byte, predicted):
        seen.add((a.tid, b.tid, a.is_write, b.is_write, predicted))
        return True

    VectorClockEngine(on_report, history=history).analyze(events)
    return seen


class TestVectorClock:
    def test_advance_join_contains(self):
        a = VectorClock()
        assert a.advance(1) == 1
        assert a.advance(1) == 2
        b = VectorClock()
        b.advance(2)
        b.join(a)
        assert b.contains(1, 2)
        assert not b.contains(1, 3)
        assert b.get(2) == 1
        c = b.copy()
        c.advance(1)
        assert not b.contains(1, 3)  # copy is independent

    def test_conflicts_predicate(self):
        w0 = ev(1, 0, write=True)
        w1 = ev(2, 1, write=True)
        r1 = ev(2, 1, read=True)
        a0 = ev(1, 0, write=True, access=AccessKind.ATOMIC)
        a1 = ev(2, 1, write=True, access=AccessKind.ATOMIC)
        assert conflicts(w0, w1)
        assert conflicts(w0, r1)
        assert not conflicts(w0, ev(2, 0, write=True))  # same thread
        assert not conflicts(r1, ev(3, 0, read=True))   # two reads
        assert not conflicts(a0, a1)                    # both atomic
        assert conflicts(a0, w1)                        # atomic vs plain


class TestHappensBefore:
    def test_adjacent_writes_race(self):
        races = collect([ev(1, 0, write=True), ev(2, 1, write=True)])
        assert (0, 1, True, True, False) in races

    def test_launch_boundary_orders(self):
        races = collect([
            ev(1, 0, write=True, launch=0),
            ev(1, 1, read=True, launch=1),
            ev(2, 1, write=True, launch=1),
        ])
        assert races == set()

    def test_barrier_orders_within_block(self):
        races = collect([
            ev(1, 0, write=True, epoch=0),
            ev(2, 1, write=True, epoch=1),
        ])
        assert races == set()

    def test_barrier_does_not_order_across_blocks(self):
        races = collect([
            ev(1, 0, block=0, write=True, epoch=0),
            ev(2, 1, block=1, write=True, epoch=1),
        ])
        assert (0, 1, True, True, False) in races

    def test_atomics_do_not_synchronize(self):
        # t0 plain-writes, t1 atomically RMWs, t2 plain-reads: the
        # atomic in the middle creates no happens-before edge
        races = collect([
            ev(1, 0, write=True),
            ev(2, 1, read=True, write=True, access=AccessKind.ATOMIC),
            ev(3, 2, read=True),
        ])
        assert (0, 2, True, False, True) in races  # predicted w-r
        assert (0, 1, True, True, False) in races  # plain vs atomic


class TestPredictiveReports:
    def test_displaced_write_predicts(self):
        """w(t0); w(t1); w(t2): the pairwise scan only sees the two
        adjacent pairs — the (t0, t2) race needs the history window."""
        events = [ev(1, 0, write=True), ev(2, 1, write=True),
                  ev(3, 2, write=True)]
        races = collect(events)
        assert (0, 2, True, True, True) in races

        # cross-check: the pairwise engine cannot see it
        pairwise = RaceDetector(engine="pairwise",
                                dedupe_by_location=False)
        pairs = {(r.first.tid, r.second.tid)
                 for r in pairwise.analyze(events)}
        assert (0, 2) not in pairs
        assert {(0, 1), (1, 2)} <= pairs

    def test_displaced_reader_predicts(self):
        """r(t0); w(t1) clears readers; w(t2) still races with r(t0)."""
        races = collect([ev(1, 0, read=True), ev(2, 1, write=True),
                         ev(3, 2, write=True)])
        assert (0, 2, False, True, True) in races

    def test_history_zero_disables_prediction(self):
        events = [ev(1, 0, write=True), ev(2, 1, write=True),
                  ev(3, 2, write=True)]
        races = collect(events, history=0)
        assert all(not predicted for *_, predicted in races)

    def test_prediction_respects_happens_before(self):
        """A displaced write separated by a launch boundary is ordered:
        no predicted report on race-free multi-launch programs."""
        races = collect([
            ev(1, 0, write=True, launch=0),
            ev(1, 1, write=True, launch=1),
            ev(2, 2, write=True, launch=2),
        ])
        assert races == set()


class TestDetectorIntegration:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError):
            RaceDetector(engine="magic")

    def test_predictive_flag_filters_reports(self):
        events = [ev(1, 0, write=True), ev(2, 1, write=True),
                  ev(3, 2, write=True)]
        with_pred = RaceDetector(dedupe_by_location=False).analyze(events)
        without = RaceDetector(dedupe_by_location=False,
                               predictive=False).analyze(events)
        assert any(r.predicted for r in with_pred)
        assert not any(r.predicted for r in without)
        assert len(without) < len(with_pred)

    def test_describe_marks_predicted(self):
        events = [ev(1, 0, write=True), ev(2, 1, write=True),
                  ev(3, 2, write=True)]
        reports = RaceDetector(dedupe_by_location=False).analyze(events)
        predicted = next(r for r in reports if r.predicted)
        assert predicted.describe().startswith("predicted ")


def _pattern_events(name, variant, seed):
    pattern = get_pattern(name)
    kernel, n_threads, setup, _check = pattern.build(variant)
    mem = GlobalMemory()
    handles = setup(mem)
    ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                      max_steps=50_000)
    try:
        execute_pattern(name, kernel, n_threads, ex, handles)
    except DeadlockError:
        pass
    return ex.events


class TestCrossCheckOnPatternTraces:
    """On every recorded pattern trace, the vclock engine must find at
    least everything the pairwise scan finds (predictive reports are a
    superset), and must stay silent wherever the program is race-free."""

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_vclock_superset_of_pairwise(self, name, variant, seed):
        events = _pattern_events(name, variant, seed)
        pairwise = RaceDetector(engine="pairwise",
                                dedupe_by_location=False,
                                max_reports=100_000).analyze(events)
        vclock = RaceDetector(engine="vclock",
                              dedupe_by_location=False,
                              max_reports=100_000).analyze(events)
        pairwise_pairs = {(r.first.tid, r.second.tid, r.byte, r.kind)
                          for r in pairwise}
        vclock_pairs = {(r.first.tid, r.second.tid, r.byte, r.kind)
                        for r in vclock}
        assert pairwise_pairs <= vclock_pairs

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_no_reports_on_race_free_code(self, name, seed):
        pattern = get_pattern(name)
        variant = (Variant.RACE_FREE if pattern.expected_racy
                   else Variant.BASELINE)
        events = _pattern_events(name, variant, seed)
        assert RaceDetector(engine="vclock").analyze(events) == []
