"""End-to-end tests of the repair pipeline and its CLI surface."""

import json

import pytest

from repro.cli import main
from repro.repair import repair


class TestTwophasePipeline:
    @pytest.fixture(scope="class")
    def report(self):
        return repair("twophase", budget="smoke")

    def test_ok_and_barrier_wins(self, report):
        assert report.ok
        assert report.top_fix is not None
        top = report.top_fix.fixset
        assert top.barriers() == frozenset({"twophase.phase"})
        assert top.kinds() == {}

    def test_rejections_are_explained(self, report):
        rejected = [c for c in report.candidates if not c.accepted]
        assert rejected, "the racy candidates must have been tried"
        assert all(c.verdict != "accepted" for c in rejected)

    def test_render_mentions_verdicts(self, report):
        text = report.render()
        assert "[ACCEPT]" in text
        assert "barrier@twophase.phase" in text

    def test_json_round_trip(self, report):
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["target"] == "twophase"
        assert blob["accepted"] >= 1
        assert blob["ranked"][0]["fixset"]["fixes"]


class TestCcPipeline:
    @pytest.fixture(scope="class")
    def report(self):
        return repair("cc", budget="smoke",
                      devices=("titanv", "a100"))

    def test_obligations_found(self, report):
        assert report.obligations
        ids = {ob.obligation_id for ob in report.obligations}
        assert any(id_.startswith("cc_label:") for id_ in ids)

    def test_every_accepted_fix_is_verified(self, report):
        accepted = [c for c in report.candidates if c.accepted]
        assert accepted
        for verdict in accepted:
            assert verdict.race_free
            assert verdict.completes
            assert verdict.invariant_ok
            assert verdict.output_equivalent
            assert verdict.schedules_explored >= 1

    def test_top_fix_matches_racefree_within_noise(self, report):
        # the issue's acceptance bar: the winning fix prices within
        # noise tolerance of the hand-written race-free variant on at
        # least one device
        top = report.top_fix
        assert top is not None
        assert any(abs(ratio - 1.0) <= 0.05
                   for ratio in top.vs_racefree.values())

    def test_ranked_by_geomean(self, report):
        geomeans = [r.geomean_ms for r in report.ranked]
        assert geomeans == sorted(geomeans)

    def test_seq_cst_prices_worse_than_relaxed(self, report):
        relaxed = next((r for r in report.ranked
                        if r.fixset.label == "atomic-suspects"), None)
        seq_cst = next((r for r in report.ranked
                        if "seqcst" in r.fixset.label), None)
        if relaxed is None or seq_cst is None:
            pytest.skip("both orderings must survive shrink to compare")
        assert seq_cst.geomean_ms > relaxed.geomean_ms


class TestApspSharedPipeline:
    """The staged-tile APSP kernel: a *barrier* race, where atomics
    are the wrong tool and must be rejected on output, not vibes."""

    @pytest.fixture(scope="class")
    def report(self):
        return repair("apsp_shared", budget="smoke")

    def test_ok_and_barrier_is_the_only_fix(self, report):
        assert report.ok
        top = report.top_fix
        assert top is not None
        assert top.fixset.barriers() == frozenset({"apsp.sync"})
        assert top.fixset.kinds() == {}

    def test_atomic_candidates_rejected_on_output(self, report):
        atomics = [c for c in report.candidates
                   if c.fixset.kinds() and not c.fixset.barriers()]
        assert atomics, "atomic candidates must have been tried"
        assert all(not c.accepted for c in atomics)

    def test_obligations_name_the_tile(self, report):
        assert report.obligations
        sites = {site for ob in report.obligations
                 for site in ob.sites}
        assert any(site.startswith("apsp.tile") for site in sites)


class TestMisPackedPipeline:
    """The packed single-byte MIS kernel as a repair target."""

    @pytest.fixture(scope="class")
    def report(self):
        return repair("mis_packed", budget="smoke")

    def test_ok_with_accepted_atomic_fix(self, report):
        assert report.ok
        assert report.obligations
        accepted = [c for c in report.candidates if c.accepted]
        assert accepted
        assert report.top_fix is not None
        assert report.top_fix.fixset.kinds(), \
            "the packed kernel's fix promotes access kinds"

    def test_accepted_fixes_verified_end_to_end(self, report):
        for verdict in (c for c in report.candidates if c.accepted):
            assert verdict.race_free
            assert verdict.completes
            assert verdict.invariant_ok
            assert verdict.output_equivalent


class TestRepairCli:
    def test_repair_twophase_text(self, capsys):
        assert main(["repair", "twophase", "--budget", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "barrier@twophase.phase" in out

    def test_repair_json_output(self, tmp_path, capsys):
        path = tmp_path / "repair.json"
        assert main(["repair", "twophase", "--budget", "smoke",
                     "--json", str(path)]) == 0
        blob = json.loads(path.read_text())
        assert blob["ok"] is True
        assert blob["reports"][0]["target"] == "twophase"

    def test_unknown_target_exits_2(self, capsys):
        assert main(["repair", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheckJsonCli:
    def test_check_json_reports_races(self, tmp_path):
        path = tmp_path / "check.json"
        assert main(["check", "lost_update", "--variant", "baseline",
                     "--budget", "smoke", "--json", str(path)]) == 0
        blob = json.loads(path.read_text())
        report = blob["reports"][0]
        assert report["ok"] is False
        assert report["expected_racy"] is True
        assert report["races"]
        race = report["races"][0]
        assert race["site_id"]
        assert race["accesses"]

    def test_check_json_clean_pattern(self, tmp_path):
        path = tmp_path / "check.json"
        assert main(["check", "lost_update", "--variant", "racefree",
                     "--budget", "smoke", "--json", str(path)]) == 0
        blob = json.loads(path.read_text())
        assert blob["reports"][0]["races"] == []
