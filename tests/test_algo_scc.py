"""Tests for ECL-SCC (both execution levels, both variants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import scc, verify
from repro.core.variants import Variant, get_algorithm
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.gpu.device import get_device
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector
from repro.perf.engine import run_algorithm

ALGO = lambda: get_algorithm("scc")
DEV = lambda: get_device("titanv")


class TestPerfCorrectness:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_cycle_is_one_scc(self, directed_cycle, variant):
        run = run_algorithm(ALGO(), directed_cycle, DEV(), variant)
        verify.check_scc(directed_cycle, run.output["labels"])
        assert len(set(run.output["labels"].tolist())) == 1

    @pytest.mark.parametrize("variant", list(Variant))
    def test_dag_is_all_trivial(self, variant):
        edges = np.array([(0, 1), (1, 2), (0, 2), (2, 3)])
        g = CSRGraph.from_edges(4, edges, directed=True)
        run = run_algorithm(ALGO(), g, DEV(), variant)
        verify.check_scc(g, run.output["labels"])
        assert len(set(run.output["labels"].tolist())) == 4

    def test_two_cycles_bridged(self):
        # 0->1->2->0 and 3->4->5->3 with a one-way bridge 2->3
        edges = np.array([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3),
                          (2, 3)])
        g = CSRGraph.from_edges(6, edges, directed=True)
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        verify.check_scc(g, run.output["labels"])
        labels = run.output["labels"]
        assert len(set(labels.tolist())) == 2

    def test_variants_agree(self, tiny_directed):
        base = run_algorithm(ALGO(), tiny_directed, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), tiny_directed, DEV(), Variant.RACE_FREE)
        assert np.array_equal(base.output["labels"], free.output["labels"])

    def test_mesh_graph(self):
        g = gen.directed_torus(6, 5)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        verify.check_scc(g, run.output["labels"])
        assert len(set(run.output["labels"].tolist())) == 1

    @settings(max_examples=12, deadline=None)
    @given(st.integers(6, 40), st.floats(1.0, 3.0), st.integers(0, 100))
    def test_random_digraphs_verified(self, n, avg, seed):
        g = gen.directed_powerlaw(n, avg, seed=seed)
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        verify.check_scc(g, run.output["labels"])


class TestAccessProfile:
    def test_baseline_pathmax_is_plain(self, tiny_directed):
        run = run_algorithm(ALGO(), tiny_directed, DEV(), Variant.BASELINE)
        assert run.stats.plain_loads > 0
        assert run.stats.atomic_loads == 0

    def test_racefree_substantially_slower(self):
        """The paper's SCC result (geomean 0.50-0.81)."""
        g = gen.directed_powerlaw(800, 8.0, seed=5)
        base = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        assert base.runtime_ms / free.runtime_ms < 0.95

    def test_goagain_contention_only_racefree(self, tiny_directed):
        base = run_algorithm(ALGO(), tiny_directed, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), tiny_directed, DEV(), Variant.RACE_FREE)
        assert base.stats.contended_atomics == 0
        assert free.stats.contended_atomics > 0

    def test_mesh_needs_more_rounds_than_powerlaw(self):
        """Long mesh diameters drive SCC's propagation round count."""
        mesh = gen.directed_torus(16, 16)
        pl = gen.directed_powerlaw(256, 6.0, seed=2)
        mesh_run = run_algorithm(ALGO(), mesh, DEV(), Variant.BASELINE)
        pl_run = run_algorithm(ALGO(), pl, DEV(), Variant.BASELINE)
        assert mesh_run.rounds > pl_run.rounds


class TestSimtLevel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_correct_under_schedules(self, tiny_directed, variant, seed):
        labels, _ = scc.run_simt(tiny_directed, variant,
                                 scheduler=RandomScheduler(seed))
        verify.check_scc(tiny_directed, labels)

    def test_adversarial_schedule(self, directed_cycle):
        labels, _ = scc.run_simt(directed_cycle, Variant.RACE_FREE,
                                 scheduler=AdversarialScheduler(4))
        verify.check_scc(directed_cycle, labels)

    def test_baseline_races_on_int2_pairs(self, tiny_directed):
        _, ex = scc.run_simt(tiny_directed, Variant.BASELINE,
                             scheduler=RandomScheduler(6))
        races = RaceDetector().check(ex)
        assert any(r.array == "scc_pathmax" for r in races)

    def test_racefree_clean(self, tiny_directed):
        _, ex = scc.run_simt(tiny_directed, Variant.RACE_FREE,
                             scheduler=RandomScheduler(6))
        assert RaceDetector().check(ex) == []


class TestTarjanReference:
    def test_tarjan_on_known_graph(self):
        edges = np.array([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        g = CSRGraph.from_edges(4, edges, directed=True)
        comp = verify.tarjan_scc(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_tarjan_matches_networkx(self, tiny_directed):
        import networkx as nx

        comp = verify.tarjan_scc(tiny_directed)
        nxg = tiny_directed.to_networkx()
        for component in nx.strongly_connected_components(nxg):
            labels = {int(comp[v]) for v in component}
            assert len(labels) == 1


class TestVerifier:
    def test_rejects_merge(self):
        edges = np.array([(0, 1), (1, 0), (2, 3), (3, 2)])
        g = CSRGraph.from_edges(4, edges, directed=True)
        with pytest.raises(ValidationError):
            verify.check_scc(g, np.zeros(4, dtype=np.int64))

    def test_rejects_split(self, directed_cycle):
        with pytest.raises(ValidationError):
            verify.check_scc(directed_cycle, np.arange(8, dtype=np.int64))
