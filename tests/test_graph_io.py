"""Round-trip tests for graph serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import generators as gen
from repro.graphs.io import (
    read_binary,
    read_edgelist,
    write_binary,
    write_edgelist,
)


def _assert_same(a, b):
    assert a.num_vertices == b.num_vertices
    assert a.directed == b.directed
    assert np.array_equal(a.row_offsets, b.row_offsets)
    assert np.array_equal(a.col_indices, b.col_indices)
    if a.weights is None:
        assert b.weights is None
    else:
        assert np.array_equal(a.weights, b.weights)


class TestBinary:
    def test_roundtrip_unweighted(self, tmp_path):
        g = gen.random_uniform(50, 4.0, seed=1)
        path = tmp_path / "g.eclr"
        write_binary(g, path)
        _assert_same(g, read_binary(path))

    def test_roundtrip_weighted_directed(self, tmp_path):
        g = gen.directed_powerlaw(40, 3.0, seed=2).with_random_weights(5)
        path = tmp_path / "g.eclr"
        write_binary(g, path)
        back = read_binary(path)
        _assert_same(g, back)
        assert back.directed

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.eclr"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(GraphFormatError):
            read_binary(path)

    def test_truncated_file_rejected(self, tmp_path):
        g = gen.random_uniform(50, 4.0, seed=1)
        path = tmp_path / "g.eclr"
        write_binary(g, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphFormatError):
            read_binary(path)


class TestEdgelist:
    def test_roundtrip(self, tmp_path):
        g = gen.grid2d(5)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        _assert_same(g, read_edgelist(path))

    def test_roundtrip_weighted(self, tmp_path):
        g = gen.grid2d(4).with_random_weights(seed=1)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        _assert_same(g, read_edgelist(path))

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not a header\n0 1\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# vertices 3 directed 0 weighted 0\n0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)
