"""Tests for the Indigo3-style bug-variant generator."""

from __future__ import annotations

import pytest

from repro.core.variants import Variant
from repro.errors import StudyError
from repro.gpu.device import get_device
from repro.graphs import generators as gen
from repro.patterns.mutator import (
    enumerate_variants,
    migration_path,
)


def cc_plan():
    from repro.algorithms.cc import ACCESS_PLAN

    return ACCESS_PLAN


class TestEnumeration:
    def test_counts_subsets(self):
        plan = cc_plan()
        k = len(plan.racy_sites())
        variants = list(enumerate_variants(plan))
        assert len(variants) == 2 ** k

    def test_first_is_baseline_last_is_complete(self):
        variants = list(enumerate_variants(cc_plan()))
        assert variants[0].label == "baseline"
        assert not variants[0].is_complete
        assert variants[-1].is_complete
        assert variants[-1].label == "race-free"

    def test_partial_variants_still_have_races(self):
        variants = list(enumerate_variants(cc_plan()))
        for v in variants[:-1]:
            assert v.plan.has_races, v.label

    def test_max_variants_cap(self):
        variants = list(enumerate_variants(cc_plan(), max_variants=3))
        assert len(variants) == 3

    def test_raceless_plan_rejected(self):
        from repro.algorithms.apsp import ACCESS_PLAN

        with pytest.raises(StudyError):
            list(enumerate_variants(ACCESS_PLAN))

    def test_detector_flags_every_partial_variant(self, tiny_graph):
        """The Indigo3 use-case: a sound detector must flag every
        variant that is not the full conversion."""
        from repro.algorithms import cc
        from repro.gpu.interleave import RandomScheduler
        from repro.gpu.racecheck import RaceDetector

        original = cc.ACCESS_PLAN
        try:
            for variant in enumerate_variants(cc_plan()):
                cc.ACCESS_PLAN = variant.plan
                _, ex = cc.run_simt(tiny_graph, Variant.BASELINE,
                                    scheduler=RandomScheduler(3))
                races = RaceDetector().check(ex)
                if variant.is_complete:
                    assert not races, variant.label
                else:
                    assert races, f"missed races in {variant.label}"
        finally:
            cc.ACCESS_PLAN = original


class TestMigrationPath:
    @pytest.fixture(scope="class")
    def path(self):
        graph = gen.preferential_attachment(300, 3, seed=11)
        return migration_path("cc", graph, get_device("titanv"))

    def test_covers_all_sites(self, path):
        assert path[0].remaining_racy_sites == len(cc_plan().racy_sites())
        assert path[-1].remaining_racy_sites == 0
        assert path[-1].variant.is_complete

    def test_runtime_monotonically_nondecreasing(self, path):
        """Converting a racy site can only add cost in this model."""
        runtimes = [s.runtime_ms for s in path]
        assert all(a <= b + 1e-12 for a, b in zip(runtimes, runtimes[1:]))

    def test_greedy_defers_the_expensive_jump_reads(self, path):
        """CC's conversion budget concentrates in the jump reads, so
        the greedy order converts them last."""
        assert "cc.label.jump_read" in path[-1].variant.converted
        order = list(path[-1].variant.converted)
        assert order.index("cc.label.jump_read") == len(order) - 1

    def test_no_races_no_path(self):
        with pytest.raises(StudyError):
            migration_path("apsp",
                           gen.random_uniform(8, 2.0, seed=1)
                           .with_random_weights(1),
                           get_device("titanv"))
