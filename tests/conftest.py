"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """A 24-vertex undirected random graph (fast SIMT runs)."""
    return gen.random_uniform(24, 3.0, seed=5, name="tiny")


@pytest.fixture
def tiny_directed() -> CSRGraph:
    """A 20-vertex directed power-law graph with nontrivial SCCs."""
    return gen.directed_powerlaw(20, 2.5, seed=3, name="tinyd")


@pytest.fixture
def small_graph() -> CSRGraph:
    """A few hundred vertices: big enough to exercise vectorized paths."""
    return gen.preferential_attachment(300, 3, seed=11, name="small")


@pytest.fixture
def path_graph() -> CSRGraph:
    """A 10-vertex path (deterministic degenerate structure)."""
    edges = np.array([(i, i + 1) for i in range(9)], dtype=np.int64)
    return CSRGraph.from_edges(10, edges, directed=False, symmetrize=True,
                               name="path10")


@pytest.fixture
def two_triangles() -> CSRGraph:
    """Two disconnected triangles: 2 components, chromatic number 3."""
    edges = np.array(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], dtype=np.int64
    )
    return CSRGraph.from_edges(6, edges, directed=False, symmetrize=True,
                               name="triangles")


@pytest.fixture
def directed_cycle() -> CSRGraph:
    """An 8-vertex directed cycle: one SCC."""
    edges = np.array([(i, (i + 1) % 8) for i in range(8)], dtype=np.int64)
    return CSRGraph.from_edges(8, edges, directed=True, name="cycle8")
