"""Unit tests for the metrics registry and span recorder."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import metrics as m
from repro.telemetry.metrics import (
    NULL_FAMILY,
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    telemetry_enabled,
)
from repro.telemetry.spans import NULL_SPANS, SpanRecorder, get_spans


@pytest.fixture(autouse=True)
def _restore_telemetry():
    yield
    telemetry.disable()


# ----------------------------------------------------------------------
# Disabled (default) path
# ----------------------------------------------------------------------
def test_disabled_by_default():
    assert get_registry() is NULL_REGISTRY
    assert get_spans() is NULL_SPANS
    assert not telemetry_enabled()


def test_null_registry_is_a_true_noop():
    reg = get_registry()
    fam = reg.counter("anything", "help", ("a",))
    assert fam is NULL_FAMILY
    # all operations return without allocating any sample state
    fam.inc(5, "x")
    fam.set(1.0, "x")
    fam.observe(2.0, "x")
    assert fam.labels("x") is NULL_FAMILY
    assert reg.families() == []
    assert len(reg) == 0
    assert reg.snapshot() == {"format": m.SNAPSHOT_FORMAT, "families": []}


def test_null_span_recorder_is_a_noop():
    with get_spans().span("anything", a=1) as sp:
        sp.set(x=2).set_sim_ms(3.0)
    assert get_spans().snapshot() == []


def test_enable_disable_roundtrip():
    reg, spans = telemetry.enable()
    assert telemetry_enabled()
    assert get_registry() is reg
    assert get_spans() is spans
    telemetry.disable()
    assert get_registry() is NULL_REGISTRY


def test_session_restores_previous_sinks():
    assert not telemetry_enabled()
    with telemetry.session() as (reg, spans):
        assert get_registry() is reg
        reg.counter("c").inc()
    assert get_registry() is NULL_REGISTRY


# ----------------------------------------------------------------------
# Counters / gauges / histograms
# ----------------------------------------------------------------------
def test_counter_accumulates_per_labelset():
    reg = MetricsRegistry()
    fam = reg.counter("hits", "h", ("kind",))
    fam.inc(1, "a")
    fam.inc(2, "a")
    fam.inc(5, "b")
    assert fam.value("a") == 3
    assert fam.value("b") == 5
    assert fam.value("never") == 0


def test_counter_rejects_decrease():
    fam = MetricsRegistry().counter("c")
    with pytest.raises(ValueError, match="cannot decrease"):
        fam.inc(-1)


def test_label_arity_checked():
    fam = MetricsRegistry().counter("c", "h", ("a", "b"))
    with pytest.raises(ValueError, match="label value"):
        fam.inc(1, "only-one")


def test_gauge_last_write_wins():
    fam = MetricsRegistry().gauge("g", "h", ("k",))
    fam.set(1.0, "x")
    fam.set(0.25, "x")
    assert fam.value("x") == 0.25


def test_histogram_buckets_and_sum():
    fam = MetricsRegistry().histogram("h", "h", buckets=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 50.0):
        fam.observe(v)
    hist = fam.hist()
    # bisect_left: 1.0 lands in the le=1.0 bucket (first), 5.0 in
    # le=10.0, 50.0 in +Inf
    assert hist.counts == [2, 1, 1]
    assert hist.sum == 56.5
    assert hist.count == 4


def test_bound_labels_handle():
    fam = MetricsRegistry().counter("c", "h", ("k",))
    bound = fam.labels("x")
    bound.inc(3)
    bound.inc()
    assert fam.value("x") == 4


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("name")
    with pytest.raises(ValueError, match="re-declared"):
        reg.gauge("name")
    with pytest.raises(ValueError, match="re-declared"):
        reg.counter("name", labelnames=("extra",))


def test_wrong_operation_for_kind():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").set(1.0)
    with pytest.raises(ValueError):
        reg.gauge("g").observe(1.0)
    with pytest.raises(ValueError):
        reg.histogram("h").inc(1)


def test_redeclare_same_family_is_fetch():
    reg = MetricsRegistry()
    a = reg.counter("c", "h", ("k",))
    b = reg.counter("c", "h", ("k",))
    assert a is b


# ----------------------------------------------------------------------
# snapshot / merge
# ----------------------------------------------------------------------
def _filled_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("runs", "r", ("algo",)).inc(2, "cc")
    reg.gauge("rate", "g", ("algo",)).set(0.5, "cc")
    h = reg.histogram("ms", "h", ("algo",), buckets=(1.0, 5.0))
    h.observe(0.5, "cc")
    h.observe(9.0, "cc")
    reg.counter("ops", "p", ("event",),
                scope=m.SCOPE_PROCESS).inc(7, "hit")
    return reg


def test_snapshot_merge_roundtrip():
    snap = _filled_registry().snapshot()
    merged = MetricsRegistry()
    merged.merge(snap)
    assert merged.snapshot() == snap


def test_snapshot_scope_filter():
    reg = _filled_registry()
    sim = reg.snapshot(scope=m.SCOPE_SIM)
    names = [f["name"] for f in sim["families"]]
    assert "ops" not in names
    assert set(names) == {"runs", "rate", "ms"}


def test_merge_accumulates_counters_and_histograms():
    snap = _filled_registry().snapshot()
    reg = MetricsRegistry()
    reg.merge(snap)
    reg.merge(snap)
    assert reg.get("runs").value("cc") == 4
    assert reg.get("ops").value("hit") == 14
    hist = reg.get("ms").hist("cc")
    assert hist.count == 4
    assert hist.counts == [2, 0, 2]
    # gauges: last write wins
    assert reg.get("rate").value("cc") == 0.5


def test_merge_order_determinism_for_integer_counters():
    """Whole-number counter merges commute — the property the
    parallel==serial sim-scope guarantee rests on."""
    a = MetricsRegistry()
    a.counter("c", "h", ("k",)).inc(3, "x")
    b = MetricsRegistry()
    b.counter("c", "h", ("k",)).inc(11, "x")
    ab = MetricsRegistry()
    ab.merge(a.snapshot())
    ab.merge(b.snapshot())
    ba = MetricsRegistry()
    ba.merge(b.snapshot())
    ba.merge(a.snapshot())
    assert ab.snapshot() == ba.snapshot()


def test_merge_associativity():
    parts = []
    for i in range(3):
        reg = MetricsRegistry()
        reg.counter("c", "h", ("k",)).inc(i + 1, "x")
        reg.histogram("h", "h", ("k",), buckets=(1.0,)).observe(i, "x")
        parts.append(reg.snapshot())
    left = MetricsRegistry()
    left.merge(parts[0])
    left.merge(parts[1])
    left.merge(parts[2])
    mid = MetricsRegistry()
    mid.merge(parts[1])
    mid.merge(parts[2])
    right = MetricsRegistry()
    right.merge(parts[0])
    right.merge(mid.snapshot())
    assert left.snapshot() == right.snapshot()


def test_merge_rejects_unknown_format():
    with pytest.raises(ValueError, match="snapshot format"):
        MetricsRegistry().merge({"format": 999, "families": []})


def test_merge_rejects_bucket_mismatch():
    reg = MetricsRegistry()
    reg.histogram("h", "h", buckets=(1.0, 2.0)).observe(0.5)
    snap = reg.snapshot()
    snap["families"][0]["samples"][0]["counts"] = [1, 0]  # wrong length
    other = MetricsRegistry()
    with pytest.raises(ValueError, match="bucket count"):
        other.merge(snap)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def _fake_clock():
    state = [0.0]

    def clock() -> float:
        state[0] += 0.5
        return state[0]

    return clock


def test_span_nesting_and_stable_ids():
    rec = SpanRecorder(clock=_fake_clock())
    with rec.span("outer", device="titanv") as outer:
        with rec.span("inner") as inner:
            inner.set_sim_ms(2.0)
        with rec.span("inner"):
            pass
    rec2 = SpanRecorder(clock=_fake_clock())
    with rec2.span("outer", device="titanv"):
        with rec2.span("inner") as sp:
            sp.set_sim_ms(2.0)
        with rec2.span("inner"):
            pass
    assert [s.span_id for s in rec.finished] == \
        [s.span_id for s in rec2.finished]
    inner1, inner2, out = rec.finished
    assert out.name == "outer" and out.parent_id is None
    assert inner1.parent_id == out.span_id
    # two same-named siblings get distinct sequence-derived ids
    assert inner1.span_id != inner2.span_id
    assert inner1.sim_ms == 2.0
    assert out.attrs == {"device": "titanv"}
    assert out.duration_s is not None and out.duration_s > 0


def test_span_stack_unwinds_on_exception():
    rec = SpanRecorder(clock=_fake_clock())
    with pytest.raises(RuntimeError):
        with rec.span("outer"):
            with rec.span("inner"):
                raise RuntimeError("boom")
    assert rec.current is None
    assert [s.name for s in rec.finished] == ["inner", "outer"]


def test_span_merge_tags_worker():
    rec = SpanRecorder(clock=_fake_clock())
    with rec.span("work"):
        pass
    parent = SpanRecorder(clock=_fake_clock())
    parent.merge(rec.snapshot(), worker="1234")
    assert parent.finished[0].attrs["worker"] == "1234"
