"""Corpus regression: the racy variants race, the race-free ones don't.

The paper's premise is that each baseline kernel (CC, MIS, GC, SCC)
contains real data races and each Section IV.B rewrite removes them.
This suite pins that premise with the vector-clock engine: every racy
variant must produce at least one race report on a small graph, and
every race-free variant must produce none under the same schedules.
"""

import pytest

from repro.core.variants import Variant
from repro.errors import DeadlockError, TransientKernelFault
from repro.gpu.interleave import RandomScheduler, RoundRobinScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector
from repro.gpu.simt import SimtExecutor
from repro.graphs import generators as gen


def _cc_graph():
    return gen.random_uniform(24, 3.0, seed=7)


def _mis_graph():
    return gen.random_uniform(24, 3.0, seed=11)


def _gc_graph():
    return gen.random_uniform(24, 3.0, seed=13)


def _scc_graph():
    return gen.directed_powerlaw(24, 2.5, seed=17)


def _run(algorithm, graph, variant, scheduler):
    """One instrumented run; returns the event stream (maybe partial)."""
    mem = GlobalMemory()
    executor = SimtExecutor(mem, scheduler=scheduler, record_events=True)
    try:
        algorithm(graph, variant, executor=executor)
    except (DeadlockError, TransientKernelFault):
        pass  # a truncated run still yields an analyzable prefix
    return executor.events


def _race_reports(algorithm, graph, variant):
    """Union of vclock reports over a deterministic schedule set."""
    detector = RaceDetector(engine="vclock", predictive=True)
    reports = []
    for scheduler in (RoundRobinScheduler(), RandomScheduler(seed=0),
                      RandomScheduler(seed=1)):
        reports.extend(detector.analyze(
            _run(algorithm, graph, variant, scheduler)))
    return reports


CORPUS = []


def _register(key, module_name, graph_factory):
    import importlib

    module = importlib.import_module(f"repro.algorithms.{module_name}")
    CORPUS.append(pytest.param(module.run_simt, graph_factory,
                               id=key))


_register("cc", "cc", _cc_graph)
_register("mis", "mis", _mis_graph)
_register("gc", "gc", _gc_graph)
_register("scc", "scc", _scc_graph)


@pytest.mark.parametrize("algorithm,graph_factory", CORPUS)
def test_racy_variant_reports_at_least_one_race(algorithm,
                                                graph_factory):
    reports = _race_reports(algorithm, graph_factory(), Variant.BASELINE)
    assert len(reports) >= 1


@pytest.mark.parametrize("algorithm,graph_factory", CORPUS)
def test_racefree_variant_reports_no_race(algorithm, graph_factory):
    reports = _race_reports(algorithm, graph_factory(),
                            Variant.RACE_FREE)
    assert reports == []


def test_racy_reports_carry_stable_site_ids():
    from repro.algorithms import cc

    reports = _race_reports(cc.run_simt, _cc_graph(), Variant.BASELINE)
    assert all(r.site_id for r in reports)
    labeled = [r for r in reports if "cc.label" in r.site_id]
    assert labeled, "labeled kernel sites must appear in site ids"
