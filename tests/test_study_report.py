"""Tests for the study framework and report generation."""

from __future__ import annotations

import pytest

from repro import Study, Variant
from repro.core.report import (
    correlation_table,
    fig6_bars,
    geomean_summary,
    speedup_table,
    to_csv,
)
from repro.core.study import SpeedupCell
from repro.errors import StudyError
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def study():
    return Study(reps=3)


class TestStudy:
    def test_run_produces_median_of_reps(self, study):
        g = gen.random_uniform(200, 4.0, seed=1, name="t200")
        result = study.run("cc", g, "titanv", Variant.BASELINE)
        assert len(result.runtimes_ms) == 3
        assert result.median_ms > 0

    def test_memoization(self, study):
        g = gen.random_uniform(200, 4.0, seed=1, name="t200")
        a = study.run("cc", g, "titanv", Variant.BASELINE)
        b = study.run("cc", g, "titanv", Variant.BASELINE)
        assert a is b

    def test_speedup_cell(self, study):
        g = gen.random_uniform(200, 4.0, seed=1, name="t200")
        cell = study.speedup("cc", g, "titanv")
        assert cell.speedup == pytest.approx(
            cell.baseline_ms / cell.racefree_ms)

    def test_suite_input_by_name(self, study):
        cell = study.speedup("mis", "internet", "2070super")
        assert cell.input_name == "internet"
        assert cell.speedup > 0

    def test_invalid_reps(self):
        with pytest.raises(StudyError):
            Study(reps=0)

    def test_unknown_algorithm(self, study):
        with pytest.raises(StudyError):
            study.run("pagerank", "internet", "titanv", Variant.BASELINE)

    def test_weights_added_when_needed(self, study):
        cell = study.speedup("mst", "internet", "titanv")
        assert cell.racefree_ms > 0

    def test_runs_are_stable(self, study):
        """Reps vary seeds; the relative deviation should stay small,
        mirroring the paper's 0.6 % claim."""
        g = gen.random_uniform(300, 4.0, seed=2, name="t300")
        result = study.run("gc", g, "titanv", Variant.BASELINE)
        assert result.relative_deviation < 0.2


class TestReports:
    def _cells(self):
        return [
            SpeedupCell("cc", "g1", "titanv", 2.0, 4.0),
            SpeedupCell("mis", "g1", "titanv", 4.0, 3.0),
            SpeedupCell("cc", "g2", "titanv", 3.0, 3.0),
            SpeedupCell("mis", "g2", "titanv", 5.0, 4.0),
        ]

    def test_speedup_table_layout(self):
        table = speedup_table(self._cells(), title="Table IV analog")
        assert "Table IV analog" in table
        assert "Geomean Speedup" in table
        assert "Min Speedup" in table and "Max Speedup" in table
        assert "g1" in table and "g2" in table

    def test_speedup_table_empty_rejected(self):
        with pytest.raises(StudyError):
            speedup_table([])

    def test_geomean_summary(self):
        summary = geomean_summary(self._cells())
        assert summary["titanv"]["cc"] == pytest.approx((0.5 * 1.0) ** 0.5)
        assert summary["titanv"]["mis"] == pytest.approx(
            ((4 / 3) * (5 / 4)) ** 0.5)

    def test_fig6_bars_renders_marker(self):
        bars = fig6_bars(geomean_summary(self._cells()))
        assert "CC" in bars and "MIS" in bars
        assert "|" in bars  # the 1.0 reference mark

    def test_csv_export(self):
        csv = to_csv(self._cells())
        lines = csv.splitlines()
        assert lines[0] == "input,device,cc,mis"
        assert lines[1].startswith("g1,titanv,0.5000")

    def test_csv_empty_rejected(self):
        with pytest.raises(StudyError):
            to_csv([])

    def test_correlation_table_on_suite_inputs(self):
        study = Study(reps=1)
        cells = [study.speedup("mis", name, "titanv")
                 for name in ("internet", "USA-road-d.NY", "rmat16.sym",
                              "amazon0601")]
        table = correlation_table(cells)
        assert "Edge Count" in table
        assert "Vertex Count" in table
        assert "Average Degree" in table
