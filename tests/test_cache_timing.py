"""Tests for the cache models and the timing model."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpu.accesses import MemSpan
from repro.gpu.cache import AnalyticCache, CacheHierarchy, CacheSim
from repro.gpu.device import DEVICE_ORDER, PAPER_GPUS, get_device
from repro.gpu.timing import AccessStats, TimingModel


class TestCacheSim:
    def test_first_touch_misses_second_hits(self):
        c = CacheSim(capacity_bytes=1024, ways=2, line_bytes=128)
        span = MemSpan("a", 0, 4)
        assert c.access(span) == 0
        assert c.access(span) == 1
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_eviction_under_capacity_pressure(self):
        c = CacheSim(capacity_bytes=256, ways=1, line_bytes=128)
        for i in range(16):
            c.access(MemSpan("a", i * 128, 4))
        assert c.stats.evictions > 0

    def test_multi_line_span_counts_per_line(self):
        c = CacheSim(capacity_bytes=1024, ways=2, line_bytes=128)
        c.access(MemSpan("a", 0, 256))
        assert c.stats.accesses == 2

    def test_contains_is_non_mutating(self):
        c = CacheSim(capacity_bytes=1024, ways=2, line_bytes=128)
        span = MemSpan("a", 0, 4)
        assert not c.contains(span)
        c.access(span)
        assert c.contains(span)
        assert c.stats.accesses == 1

    def test_flush(self):
        c = CacheSim(capacity_bytes=1024, ways=2, line_bytes=128)
        span = MemSpan("a", 0, 4)
        c.access(span)
        c.flush()
        assert not c.contains(span)

    def test_invalid_dimensions(self):
        with pytest.raises(DeviceError):
            CacheSim(0)

    def test_distinct_arrays_distinct_tags(self):
        c = CacheSim(capacity_bytes=4096, ways=4, line_bytes=128)
        c.access(MemSpan("a", 0, 4))
        assert c.access(MemSpan("b", 0, 4)) == 0  # different array: miss

    def test_hit_rate_statistic(self):
        c = CacheSim(capacity_bytes=1024, ways=2, line_bytes=128)
        span = MemSpan("a", 0, 4)
        for _ in range(10):
            c.access(span)
        assert c.stats.hit_rate == pytest.approx(0.9)


class TestAnalyticCache:
    def test_fully_resident_footprint_hits_on_rereference(self):
        c = AnalyticCache(capacity_bytes=1 << 20)
        rate = c.hit_rate(footprint_bytes=1 << 16, accesses=1e6)
        assert rate > 0.95

    def test_oversized_footprint_scales_down(self):
        c = AnalyticCache(capacity_bytes=1 << 16)
        small = c.hit_rate(footprint_bytes=1 << 16, accesses=1e6)
        large = c.hit_rate(footprint_bytes=1 << 22, accesses=1e6)
        assert large < small

    def test_no_reuse_means_no_hits(self):
        c = AnalyticCache(capacity_bytes=1 << 20, line_bytes=128)
        # every access touches a fresh line
        rate = c.hit_rate(footprint_bytes=128 * 1000, accesses=1000)
        assert rate == pytest.approx(0.0)

    def test_zero_inputs(self):
        c = AnalyticCache(capacity_bytes=1 << 20)
        assert c.hit_rate(0, 100) == 0.0
        assert c.hit_rate(100, 0) == 0.0

    def test_hierarchy_aggregates_l1_over_sms(self):
        dev = get_device("titanv")
        h = CacheHierarchy.for_device(dev)
        assert h.l1.capacity_bytes == dev.l1_bytes * dev.sms
        assert h.l2.capacity_bytes == dev.l2_bytes


class TestDevices:
    def test_paper_table1_specs(self):
        tv = get_device("titanv")
        assert (tv.cores, tv.sms, tv.l1_kb) == (5120, 80, 96)
        a100 = get_device("a100")
        assert a100.l2_mb == 40.0 and a100.memory_gb == 40
        rtx = get_device("4090")
        assert rtx.cores == 16384 and rtx.architecture == "Ada Lovelace"

    def test_lookup_by_display_name(self):
        assert get_device("2070 Super").name == "2070 Super"
        assert get_device("Titan V").architecture == "Volta"

    def test_unknown_device(self):
        with pytest.raises(DeviceError):
            get_device("h100")

    def test_device_order_covers_all(self):
        assert set(DEVICE_ORDER) == set(PAPER_GPUS)

    def test_titanv_predates_libcupp(self):
        assert not get_device("titanv").supports_libcupp

    def test_newer_devices_penalize_atomics_more(self):
        """The Fig. 6 trend: synchronization hurts more on newer parts."""
        t = get_device("2070super")
        for newer in ("a100", "4090"):
            d = get_device(newer)
            assert d.atomic_store_extra_cycles > t.atomic_store_extra_cycles
            assert d.atomic_contention_cycles > t.atomic_contention_cycles


class TestTimingModel:
    def _stats(self, **kwargs) -> AccessStats:
        base = dict(footprint_bytes=1 << 16, rounds=1)
        base.update(kwargs)
        return AccessStats(**base)

    def test_atomics_cost_more_than_plain(self):
        model = TimingModel(get_device("titanv"))
        plain = model.estimate_ms(self._stats(plain_loads=1e6))
        atomic = model.estimate_ms(self._stats(atomic_loads=1e6))
        assert atomic > plain

    def test_atomic_stores_cost_more_than_atomic_loads(self):
        model = TimingModel(get_device("titanv"))
        loads = model.estimate_ms(self._stats(atomic_loads=1e6))
        stores = model.estimate_ms(self._stats(atomic_stores=1e6))
        assert stores > loads

    def test_volatile_close_to_atomic_loads(self):
        """The paper's GC/MST observation: volatile -> atomic is cheap."""
        model = TimingModel(get_device("titanv"))
        vol = model.estimate_ms(self._stats(volatile_loads=1e6))
        atm = model.estimate_ms(self._stats(atomic_loads=1e6))
        assert atm / vol < 1.25

    def test_contention_adds_cost(self):
        model = TimingModel(get_device("a100"))
        free = model.estimate_ms(self._stats(atomic_rmws=1e5))
        hot = model.estimate_ms(self._stats(atomic_rmws=1e5,
                                            contended_atomics=1e5))
        assert hot > free

    def test_rounds_add_launch_overhead(self):
        model = TimingModel(get_device("titanv"))
        one = model.estimate_ms(self._stats(rounds=1))
        many = model.estimate_ms(self._stats(rounds=1000))
        assert many > one

    def test_register_hits_are_free(self):
        model = TimingModel(get_device("titanv"))
        a = model.estimate_ms(self._stats(plain_loads=1000))
        b = model.estimate_ms(self._stats(plain_loads=1000,
                                          register_hits=1e9))
        assert a == pytest.approx(b)

    def test_breakdown_sums_to_total(self):
        model = TimingModel(get_device("4090"))
        stats = self._stats(plain_loads=1e5, volatile_loads=1e4,
                            atomic_rmws=1e3, compute_ops=1e4, rounds=7)
        bd = model.estimate(stats)
        dev = model.device
        cycles = (bd.plain_cycles + bd.volatile_cycles + bd.atomic_cycles
                  + bd.contention_cycles + bd.compute_cycles)
        expect = dev.cycles_to_ms(cycles / dev.parallel_lanes)
        assert bd.total_ms == pytest.approx(expect + bd.launch_overhead_ms)

    def test_merge_accumulates_and_footprint_maxes(self):
        a = AccessStats(plain_loads=10, footprint_bytes=100)
        b = AccessStats(plain_loads=5, footprint_bytes=400)
        a.merge(b)
        assert a.plain_loads == 15
        assert a.footprint_bytes == 400

    def test_total_accesses(self):
        s = AccessStats(plain_loads=1, plain_stores=2, volatile_loads=3,
                        volatile_stores=4, atomic_loads=5, atomic_stores=6,
                        atomic_rmws=7)
        assert s.total_accesses == 28
