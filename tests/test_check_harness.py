"""The property-check harness over the whole pattern corpus, plus the
``repro check`` CLI surface."""

from __future__ import annotations

import pytest

from repro.check import check, program_from_pattern
from repro.cli import main
from repro.core.variants import Variant
from repro.errors import ReproError
from repro.gpu.accesses import AccessKind, DType
from repro.patterns import PATTERNS

RACY = sorted(p.name for p in PATTERNS.values() if p.expected_racy)
CLEAN = sorted(p.name for p in PATTERNS.values() if not p.expected_racy)


class TestPatternCorpusCoverage:
    @pytest.mark.parametrize("name", RACY)
    def test_every_racy_idiom_is_detected_within_smoke_budget(self, name):
        report = check(name, variant=Variant.BASELINE, budget="smoke")
        assert not report.ok
        assert report.races, f"{name}: no race found"

    @pytest.mark.parametrize("name", RACY)
    def test_every_fix_passes_bounded_exploration(self, name):
        report = check(name, variant=Variant.RACE_FREE, budget="smoke")
        assert report.ok, report.summary()
        assert not report.races

    @pytest.mark.parametrize("name", CLEAN)
    @pytest.mark.parametrize("variant", list(Variant))
    def test_false_positive_probes_stay_clean(self, name, variant):
        report = check(name, variant=variant, budget="smoke")
        assert report.ok, report.summary()
        assert report.explore.complete

    def test_racy_failures_come_with_verified_repros(self):
        report = check("torn_wide_write", variant=Variant.BASELINE,
                       budget="smoke")
        assert report.failures
        race = next(f for f in report.failures if f.kind == "race")
        assert race.replay_verified
        assert race.minimized is not None
        assert race.repro_log.total_decisions > 0


class TestHarnessAPI:
    def test_program_from_pattern_names_the_variant(self):
        program = program_from_pattern("lost_update", Variant.RACE_FREE)
        assert program.name == "lost_update/racefree"

    def test_bare_kernel_requires_setup(self):
        def kernel(ctx, arr):
            yield ctx.store(arr, 0, 1)

        with pytest.raises(ReproError, match="num_threads"):
            check(kernel)

    def test_bad_target_type_rejected(self):
        with pytest.raises(ReproError, match="target"):
            check(42)

    def test_unknown_budget_rejected(self):
        with pytest.raises(ReproError, match="budget"):
            check("lost_update", budget="enormous")

    def test_faults_compose_with_exploration(self):
        """Exploring under a fault plan: the schedule space of the
        *faulted* program is searched, deterministically."""
        r1 = check("lost_update", variant=Variant.BASELINE,
                   budget="smoke", faults="stall=0.2")
        r2 = check("lost_update", variant=Variant.BASELINE,
                   budget="smoke", faults="stall=0.2")
        assert not r1.ok  # the race is still found under faults
        assert r1.explore.schedules == r2.explore.schedules
        assert len(r1.races) == len(r2.races)

    def test_summary_is_human_readable(self):
        report = check("publish_payload", variant=Variant.BASELINE,
                       budget="smoke", compare_naive=True)
        text = report.summary()
        assert "schedules explored" in text
        assert "naive baseline" in text
        assert "FAIL" in text

    def test_invariant_wired_to_algorithms_verify(self):
        """check() composing with the repro.algorithms.verify checkers:
        a two-thread label-propagation toy validated by
        check_components on every explored schedule."""
        import numpy as np

        from repro.algorithms.verify import check_components
        from repro.errors import ValidationError
        from repro.graphs.csr import CSRGraph

        # path graph 0-1: both endpoints must agree on one label
        graph = CSRGraph.from_edges(2, [(0, 1)], directed=False,
                                    symmetrize=True)

        def kernel(ctx, label):
            # each vertex adopts min(own, neighbor) — atomic MIN
            from repro.gpu.accesses import RMWOp
            other = 1 - ctx.tid
            v = yield ctx.load(label, other, AccessKind.VOLATILE)
            yield ctx.atomic_rmw(label, ctx.tid, RMWOp.MIN, v)

        def setup(mem):
            label = mem.alloc("label", 2, DType.I32)
            mem.upload(label, np.arange(2))
            return (label,)

        def invariant(mem, handles):
            labels = mem.download(handles[0])
            try:
                check_components(graph, labels)
            except ValidationError:
                return False
            return True

        report = check(kernel, 2, setup=setup, invariant=invariant,
                       budget="smoke")
        assert report.explore.schedules > 1
        assert not any(f.kind == "invariant" for f in report.failures)


class TestCheckCli:
    def test_check_single_pattern(self, capsys):
        rc = main(["check", "lost_update", "--budget", "smoke",
                   "--variant", "baseline"])
        out = capsys.readouterr().out
        assert rc == 0  # racy baseline failing is the expected outcome
        assert "verdict:            FAIL" in out
        assert "race:" in out

    def test_check_reports_reduction_factor(self, capsys):
        rc = main(["check", "torn_wide_write", "--budget", "smoke",
                   "--compare-naive"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DPOR reduction" in out

    def test_check_clean_probe_passes(self, capsys):
        rc = main(["check", "kernel_boundary", "--budget", "smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict:            PASS" in out
        assert "MISSED RACE" not in out and "FALSE ALARM" not in out

    def test_check_unknown_pattern_fails_cleanly(self, capsys):
        rc = main(["check", "not_a_pattern", "--budget", "smoke"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_check_naive_mode_and_overrides(self, capsys):
        rc = main(["check", "flag_spin", "--budget", "smoke",
                   "--mode", "naive", "--max-schedules", "10",
                   "--preemption-bound", "1", "--no-minimize"])
        assert rc == 0
        assert "schedules explored" in capsys.readouterr().out
