"""Integration tests for telemetry across the simulation stack.

The acceptance properties of the subsystem:

* telemetry off (the default) leaves study results, ``save_results``
  JSON, and resilient checkpoints byte-identical;
* the merged registry of a parallel (``jobs=N``) sweep equals the
  serial registry on every sim-scope family;
* the engine's L1 hit-rate gauges mechanically reproduce the paper's
  Section VI.A explanation (baseline CC has the higher L1 hit rate).
"""

from __future__ import annotations

import json

import pytest

from repro import ResilientStudy, Study, Variant, telemetry
from repro.gpu.faults import FaultPlan
from repro.telemetry.metrics import SCOPE_SIM, get_registry

INPUTS = ["internet"]
ALGOS = ["cc", "mis"]


@pytest.fixture(autouse=True)
def _restore_telemetry():
    yield
    telemetry.disable()


def _sweep(tmp_path, *, jobs: int, name: str,
           telemetry_on: bool) -> tuple[dict, bytes]:
    """One small resilient sweep; returns (sim snapshot, results bytes)."""
    out = tmp_path / f"{name}.json"
    if telemetry_on:
        with telemetry.session() as (registry, _spans):
            study = ResilientStudy(reps=2, trace_cache=False, jobs=jobs)
            study.sweep("titanv", ALGOS, INPUTS)
            study.save_results(out)
            snap = registry.snapshot(scope=SCOPE_SIM)
    else:
        study = ResilientStudy(reps=2, trace_cache=False, jobs=jobs)
        study.sweep("titanv", ALGOS, INPUTS)
        study.save_results(out)
        snap = {}
    return snap, out.read_bytes()


# ----------------------------------------------------------------------
# Telemetry off: bit-identical outputs
# ----------------------------------------------------------------------
def test_off_and_on_save_results_identical(tmp_path):
    _, off = _sweep(tmp_path, jobs=1, name="off", telemetry_on=False)
    _, on = _sweep(tmp_path, jobs=1, name="on", telemetry_on=True)
    assert off == on


def test_off_and_on_checkpoints_identical(tmp_path):
    # no fault plan: failure records carry wall-clock elapsed_s, which
    # differs between any two runs — the telemetry-off/on comparison
    # needs the deterministic (results-only) checkpoint payload
    def checkpoint(name: str, enabled: bool) -> bytes:
        path = tmp_path / f"{name}.ckpt"

        def run() -> None:
            study = ResilientStudy(reps=2, trace_cache=False,
                                   checkpoint=path, retries=1)
            study.sweep("titanv", ["cc"], INPUTS)

        if enabled:
            with telemetry.session():
                run()
        else:
            run()
        return path.read_bytes()

    assert checkpoint("off", False) == checkpoint("on", True)


# ----------------------------------------------------------------------
# Parallel == serial on sim scope
# ----------------------------------------------------------------------
def test_parallel_sim_scope_registry_equals_serial(tmp_path):
    serial_snap, serial_bytes = _sweep(tmp_path, jobs=1, name="serial",
                                       telemetry_on=True)
    par_snap, par_bytes = _sweep(tmp_path, jobs=2, name="parallel",
                                 telemetry_on=True)
    assert serial_bytes == par_bytes
    assert json.dumps(serial_snap, sort_keys=True) == \
        json.dumps(par_snap, sort_keys=True)
    # and the comparison is not vacuous
    names = [f["name"] for f in serial_snap["families"]]
    assert "repro_accesses_total" in names
    assert "repro_l1_hit_rate" in names
    assert "repro_cells_total" in names


def test_plain_study_parallel_sim_scope_equals_serial(tmp_path):
    def run(jobs: int) -> dict:
        with telemetry.session() as (registry, _spans):
            study = Study(reps=2, trace_cache=False, jobs=jobs)
            study.speedup_table("titanv", ALGOS, INPUTS)
            return registry.snapshot(scope=SCOPE_SIM)

    assert json.dumps(run(1), sort_keys=True) == \
        json.dumps(run(2), sort_keys=True)


def test_parallel_worker_spans_are_attributed():
    with telemetry.session() as (_registry, spans):
        study = Study(reps=1, trace_cache=False, jobs=2)
        study.speedup_table("titanv", ["cc"], INPUTS)
        shipped = [s for s in spans.finished if "worker" in s.attrs]
        assert shipped, "worker spans should be merged with attribution"
        assert any(s.name == "study.run" for s in shipped)


# ----------------------------------------------------------------------
# Section VI.A: the L1 hit-rate explanation
# ----------------------------------------------------------------------
def test_cc_baseline_l1_hit_rate_exceeds_race_free():
    with telemetry.session() as (registry, _spans):
        study = Study(reps=1, trace_cache=False)
        study.speedup("cc", "internet", "titanv")
        gauge = registry.get("repro_l1_hit_rate")
        base = gauge.value("cc", "internet", "titanv", "baseline")
        free = gauge.value("cc", "internet", "titanv", "racefree")
    assert base > free > 0


def test_atomic_bypass_counts_rise_in_race_free_cc():
    with telemetry.session() as (registry, _spans):
        study = Study(reps=1, trace_cache=False)
        study.speedup("cc", "internet", "titanv")
        fam = registry.get("repro_atomic_l1_bypass_total")
        base = fam.value("cc", "internet", "titanv", "baseline")
        free = fam.value("cc", "internet", "titanv", "racefree")
    assert free > base


# ----------------------------------------------------------------------
# Engine / resilience / trace-cache instrumentation details
# ----------------------------------------------------------------------
def test_record_replay_source_counter(tmp_path):
    # replay happens when a second study prices the same configuration
    # from the shared disk layer (each rep has its own seed, so one
    # study's reps all record)
    with telemetry.session() as (registry, _spans):
        first = Study(reps=2, trace_cache=str(tmp_path / "tc"))
        first.run("cc", "internet", "titanv", Variant.BASELINE)
        second = Study(reps=2, trace_cache=str(tmp_path / "tc"))
        second.run("cc", "internet", "titanv", Variant.BASELINE)
        fam = registry.get("repro_perf_trace_source_total")
        assert fam.value("record") == 2
        assert fam.value("replay") == 2
        events = registry.get("repro_trace_cache_events_total")
        assert events.value("record") == 2
        assert events.value("disk_hit") == 2
        assert registry.get("repro_trace_cache_disk_entries").value() == 2


def test_cells_total_counts_outcomes():
    with telemetry.session() as (registry, _spans):
        study = ResilientStudy(reps=1, trace_cache=False, retries=0,
                               faults=FaultPlan.parse("abort=1.0", seed=1))
        study.sweep("titanv", ["cc"], INPUTS)
        cells = registry.get("repro_cells_total")
        assert cells.value("fault") == 2  # both variants abort
        assert registry.get("repro_cell_attempts_total").value() == 2


def test_cells_total_ok_path():
    with telemetry.session() as (registry, _spans):
        study = ResilientStudy(reps=1, trace_cache=False)
        study.sweep("titanv", ["cc"], INPUTS)
        assert registry.get("repro_cells_total").value("ok") == 2
        # the resilient cell runner drives run_algorithm directly, so
        # its tree is sweep -> cell -> record (no study.run level)
        span_names = {s.name for s in _spans.finished}
        assert {"study.sweep", "sweep.cell", "perf.record"} <= span_names


def test_runs_and_rounds_counters():
    with telemetry.session() as (registry, _spans):
        study = Study(reps=2, trace_cache=False)
        study.run("cc", "internet", "titanv", Variant.BASELINE)
        labels = ("cc", "internet", "titanv", "baseline")
        assert registry.get("repro_perf_runs_total").value(*labels) == 2
        assert registry.get("repro_perf_rounds_total").value(*labels) > 0
        hist = registry.get("repro_runtime_ms").hist(*labels)
        assert hist.count == 2
