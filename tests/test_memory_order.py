"""Tests for the memory-order pricing extension (Section IV.B)."""

from __future__ import annotations

import pytest

from repro.core.transform import AccessPlan, AccessSite, with_order
from repro.core.variants import Variant
from repro.gpu.accesses import AccessKind, MemoryOrder
from repro.gpu.device import get_device
from repro.gpu.timing import AccessStats, TimingModel
from repro.perf.engine import Recorder


def plan_with(order: MemoryOrder) -> AccessPlan:
    return with_order(AccessPlan("t", (
        AccessSite("t.site", AccessKind.PLAIN),
        AccessSite("t.private", AccessKind.PLAIN, shared=False),
    )), order)


class TestWithOrder:
    def test_sets_order_on_shared_sites(self):
        plan = plan_with(MemoryOrder.SEQ_CST)
        assert plan.site("t.site").order is MemoryOrder.SEQ_CST

    def test_private_sites_untouched(self):
        plan = plan_with(MemoryOrder.SEQ_CST)
        assert plan.site("t.private").order is MemoryOrder.RELAXED

    def test_default_plans_are_relaxed(self):
        from repro.algorithms.cc import ACCESS_PLAN

        assert all(s.order is MemoryOrder.RELAXED
                   for s in ACCESS_PLAN.sites)


class TestOrderedAtomicCounting:
    def _count(self, order: MemoryOrder, variant=Variant.RACE_FREE):
        recorder = Recorder(plan_with(order), variant,
                            get_device("titanv"))
        recorder.load("t.site", count=100)
        recorder.store("t.site", count=10)
        return recorder.stats.ordered_atomics

    def test_relaxed_counts_nothing(self):
        assert self._count(MemoryOrder.RELAXED) == 0

    def test_acq_rel_counts_once(self):
        assert self._count(MemoryOrder.ACQ_REL) == 110

    def test_seq_cst_counts_double(self):
        assert self._count(MemoryOrder.SEQ_CST) == 220

    def test_baseline_plain_accesses_never_ordered(self):
        assert self._count(MemoryOrder.SEQ_CST,
                           variant=Variant.BASELINE) == 0


class TestOrderedAtomicPricing:
    def test_ordered_atomics_cost_extra(self):
        model = TimingModel(get_device("titanv"))
        base = AccessStats(atomic_loads=1e5, footprint_bytes=1 << 16,
                           rounds=1)
        ordered = AccessStats(atomic_loads=1e5, ordered_atomics=1e5,
                              footprint_bytes=1 << 16, rounds=1)
        assert model.estimate_ms(ordered) > model.estimate_ms(base)

    def test_extra_scales_with_device_constant(self):
        import dataclasses

        dev = get_device("titanv")
        cheap = dataclasses.replace(dev, memory_order_extra_cycles=10.0)
        pricey = dataclasses.replace(dev, memory_order_extra_cycles=500.0)
        stats = AccessStats(atomic_loads=1e5, ordered_atomics=1e5,
                            footprint_bytes=1 << 16, rounds=1)
        assert (TimingModel(pricey).estimate_ms(stats)
                > TimingModel(cheap).estimate_ms(stats))
