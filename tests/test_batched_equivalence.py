"""Bit-identity of the batched warp-wide tier vs the scalar interpreter.

The batched tier (:mod:`repro.gpu.batch`) promises to be an
*optimization*, never a semantic change: outputs, the full access-event
stream, memory fingerprints, AccessStats, and error behavior must be
byte-identical to the round-robin interpreter.  These tests pin that
contract per algorithm, per variant, and at every fallback edge
(divergence, CAS retries, fault hooks, step probes, foreign
schedulers, step budgets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import apsp, cc, gc, mis, mst, scc
from repro.core.variants import Variant, get_algorithm
from repro.errors import DeadlockError
from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.faults import FaultInjector, FaultPlan
from repro.gpu.interleave import RandomScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx
from repro.gpu.timing import stats_from_launches
from repro.perf.engine import record_trace


def _executors():
    """A (interpreter, batched) executor pair on fresh memories."""
    return (SimtExecutor(GlobalMemory(), batch=False),
            SimtExecutor(GlobalMemory(), batch=True))


def _assert_identical(out_i, ex_i, out_b, ex_b, *, expect_batched=True):
    assert np.array_equal(np.asarray(out_i), np.asarray(out_b))
    assert ex_i.events == ex_b.events
    if expect_batched:
        assert ex_b.batch_stats.batched_launches > 0
    assert ex_i.batch_stats.batched_launches == 0


RUNNERS = {
    "cc": lambda g, v, ex: cc.run_simt(g, v, executor=ex),
    "gc": lambda g, v, ex: gc.run_simt(g, v, executor=ex),
    "mis": lambda g, v, ex: mis.run_simt(g, v, executor=ex),
    "mst": lambda g, v, ex: mst.run_simt(g.with_random_weights(1), v,
                                         executor=ex),
}


@pytest.mark.parametrize("variant", list(Variant))
@pytest.mark.parametrize("algo", sorted(RUNNERS))
def test_undirected_bit_identity(algo, variant, tiny_graph):
    ex_i, ex_b = _executors()
    out_i, _ = RUNNERS[algo](tiny_graph, variant, ex_i)
    out_b, _ = RUNNERS[algo](tiny_graph, variant, ex_b)
    _assert_identical(out_i, ex_i, out_b, ex_b)


@pytest.mark.parametrize("variant", list(Variant))
def test_scc_bit_identity(variant, tiny_directed):
    ex_i, ex_b = _executors()
    out_i, _ = scc.run_simt(tiny_directed, variant, executor=ex_i)
    out_b, _ = scc.run_simt(tiny_directed, variant, executor=ex_b)
    _assert_identical(out_i, ex_i, out_b, ex_b)


def test_apsp_barriers_bit_identity(two_triangles):
    ex_i, ex_b = _executors()
    out_i, _ = apsp.run_simt(two_triangles, executor=ex_i)
    out_b, _ = apsp.run_simt(two_triangles, executor=ex_b)
    _assert_identical(out_i, ex_i, out_b, ex_b)


def test_apsp_shared_memory_bit_identity(two_triangles):
    ex_i, ex_b = _executors()
    out_i, _ = apsp.run_simt_shared(two_triangles, executor=ex_i)
    out_b, _ = apsp.run_simt_shared(two_triangles, executor=ex_b)
    _assert_identical(out_i, ex_i, out_b, ex_b)


def test_memory_fingerprint_identical():
    """Scatter/gather through the arena leaves identical bytes behind."""

    def kernel(ctx: ThreadCtx, data, acc):
        v = yield ctx.load(data, ctx.tid)
        yield ctx.store(data, ctx.tid, v * 3 + 1)
        yield ctx.atomic_rmw(acc, ctx.tid % 4, RMWOp.ADD, v)

    results = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch)
        data = mem.alloc("d", 96, DType.I64)
        acc = mem.alloc("a", 4, DType.I64)
        mem.upload(data, np.arange(96) - 17)
        launch = ex.launch(kernel, 96, data, acc)
        results.append((mem.fingerprint(), ex.events,
                        stats_from_launches([launch]),
                        ex.batch_stats.batched_launches))
    assert results[0][0] == results[1][0]
    assert results[0][1] == results[1][1]
    assert results[0][2] == results[1][2]  # LaunchStats aggregate
    assert results[1][3] == 1


def test_divergent_branches_fall_back_identically():
    """Data-dependent control flow splits warps; outputs must not move."""

    def kernel(ctx: ThreadCtx, data, out):
        v = yield ctx.load(data, ctx.tid)
        if v % 3 == 0:
            for _ in range(v % 5):
                yield ctx.atomic_rmw(out, 0, RMWOp.ADD, 1)
        elif v % 3 == 1:
            yield ctx.store(out, 1 + ctx.tid % 7, v, AccessKind.VOLATILE)
        else:
            w = yield ctx.load(out, 2, AccessKind.ATOMIC)
            yield ctx.store(data, ctx.tid, w + v)

    results = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch)
        data = mem.alloc("d", 70, DType.I32)
        out = mem.alloc("o", 8, DType.I32)
        mem.upload(data, np.arange(70) * 13 % 41)
        ex.launch(kernel, 70, data, out)
        results.append((mem.download(data).tolist(),
                        mem.download(out).tolist(), ex.events))
    assert results[0] == results[1]


def test_cas_retry_loop_identical():
    """The classic lock-free retry loop (CC's hook pattern)."""

    def kernel(ctx: ThreadCtx, best):
        while True:
            cur = yield ctx.load(best, 0, AccessKind.ATOMIC)
            if cur <= ctx.tid:
                return
            got = yield ctx.atomic_cas(best, 0, cur, ctx.tid)
            if got == cur:
                return

    results = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch)
        best = mem.alloc("best", 1, DType.I32)
        mem.element_write(best, 0, 10 ** 6)
        ex.launch(kernel, 64, best)
        results.append((mem.element_read(best, 0), ex.events))
    assert results[0] == results[1]
    assert results[0][0] == 0


def test_cas_none_expected_raises_in_both_tiers():
    """A CAS with expected=None is a kernel bug; both tiers must raise
    the same error at the same lane (scalar fallback, not vector)."""
    from repro.errors import KernelError

    def kernel(ctx: ThreadCtx, arr):
        yield ctx.atomic_rmw(arr, 0, RMWOp.CAS, 5, expected=None)

    messages = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch)
        arr = mem.alloc("x", 1, DType.I32)
        with pytest.raises(KernelError) as info:
            ex.launch(kernel, 32, arr)
        messages.append(str(info.value))
    assert messages[0] == messages[1]


def test_step_budget_deadlock_identical():
    """max_steps must trip at the same step with the same message."""

    def kernel(ctx: ThreadCtx, arr):
        while True:
            yield ctx.atomic_rmw(arr, 0, RMWOp.ADD, 1)

    messages = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch, max_steps=500)
        arr = mem.alloc("x", 1, DType.I32)
        with pytest.raises(DeadlockError) as info:
            ex.launch(kernel, 8, arr)
        messages.append(str(info.value))
        assert "500 micro-steps" in str(info.value)
    assert messages[0] == messages[1]


def test_barrier_divergence_identical(two_triangles):
    """Barrier-divergence deadlocks report the same waiting set."""

    def kernel(ctx: ThreadCtx, arr):
        if ctx.tid % 2 == 0:
            yield ctx.barrier()
        yield ctx.store(arr, ctx.tid, 1)

    messages = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch)
        arr = mem.alloc("x", 8, DType.I32)
        with pytest.raises(DeadlockError) as info:
            ex.launch(kernel, 8, arr, block_dim=8)
        messages.append(str(info.value))
    assert messages[0] == messages[1]
    assert "barrier divergence" in messages[0]


# ----------------------------------------------------------------------
# Fallback-to-interpreter conditions: hooks that observe individual
# micro-steps must force the scalar tier, silently and completely.
# ----------------------------------------------------------------------

def _run_tiny(ex, graph):
    return cc.run_simt(graph, Variant.RACE_FREE, executor=ex)


def test_fault_injector_forces_interpreter(tiny_graph):
    inj = FaultInjector(FaultPlan.parse("stall=0.2"), seed=3)
    mem = GlobalMemory()
    ex = SimtExecutor(mem, batch=True, faults=inj)
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0
    assert ex.batch_stats.interp_launches > 0


def test_step_probe_forces_interpreter(tiny_graph):
    ex = SimtExecutor(GlobalMemory(), batch=True)
    seen = []
    ex.step_probe = lambda threads, epochs, stats: seen.append(1)
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0
    assert seen  # the probe actually fired


def test_random_scheduler_forces_interpreter(tiny_graph):
    ex = SimtExecutor(GlobalMemory(), scheduler=RandomScheduler(7),
                      batch=True)
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0


def test_warp_lockstep_forces_interpreter(tiny_graph):
    ex = SimtExecutor(GlobalMemory(), warp_lockstep=True, batch=True)
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0


def test_weak_memory_forces_interpreter(tiny_graph):
    ex = SimtExecutor(GlobalMemory(), weak_memory=True, batch=True)
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0


def test_env_knob_controls_default_tier(tiny_graph, monkeypatch):
    monkeypatch.setenv("REPRO_SIMT_BATCH", "0")
    ex = SimtExecutor(GlobalMemory())  # batch=None -> defer to tiers
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0

    monkeypatch.setenv("REPRO_SIMT_BATCH", "1")
    ex2 = SimtExecutor(GlobalMemory())
    _run_tiny(ex2, tiny_graph)
    assert ex2.batch_stats.batched_launches > 0


def test_engine_env_knob(tiny_graph, monkeypatch):
    monkeypatch.delenv("REPRO_SIMT_BATCH", raising=False)
    monkeypatch.setenv("REPRO_ENGINE", "interp")
    ex = SimtExecutor(GlobalMemory())
    _run_tiny(ex, tiny_graph)
    assert ex.batch_stats.batched_launches == 0

    monkeypatch.setenv("REPRO_ENGINE", "batched")
    ex2 = SimtExecutor(GlobalMemory())
    _run_tiny(ex2, tiny_graph)
    assert ex2.batch_stats.batched_launches > 0


# ----------------------------------------------------------------------
# Performance-engine recorder tier (satellite f: contention via bincount)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("variant", list(Variant))
@pytest.mark.parametrize("key", ["cc", "gc", "mis", "mst", "scc", "apsp"])
def test_recorder_tier_stats_identical(key, variant, tiny_graph,
                                       tiny_directed):
    algo = get_algorithm(key)
    g = tiny_directed if algo.directed else tiny_graph
    t_i = record_trace(algo, g, variant, 3, 2, engine="interp")
    t_b = record_trace(algo, g, variant, 3, 2, engine="batched")
    assert t_i.stats == t_b.stats  # includes contended_atomics
    assert t_i.output_fp == t_b.output_fp
    assert t_i.staleness_rounds == t_b.staleness_rounds


def test_recorder_contention_totals_equal_on_adversarial_indices():
    """np.bincount and np.unique collision counting must agree, on both
    the dense-window fast path and the sparse fallback."""
    from repro.perf.engine import (BatchedRecorder, Recorder,
                                   algorithm_plan, make_recorder)

    plan = algorithm_plan(get_algorithm("cc"))
    for indices in (
        np.zeros(64, dtype=np.int64),                  # total pile-up
        np.arange(64, dtype=np.int64),                 # no collisions
        np.arange(64, dtype=np.int64) % 7,             # dense window
        np.arange(64, dtype=np.int64) * 10 ** 7,       # sparse fallback
        np.array([5], dtype=np.int64),                 # single access
    ):
        base = Recorder(plan, Variant.BASELINE, staleness_rounds=2)
        fast = BatchedRecorder(plan, Variant.BASELINE, staleness_rounds=2)
        assert base._contention(indices) == fast._contention(indices)
    assert isinstance(
        make_recorder(plan, Variant.BASELINE, staleness_rounds=2,
                      engine="batched"), BatchedRecorder)
    assert not isinstance(
        make_recorder(plan, Variant.BASELINE, staleness_rounds=2,
                      engine="interp"), BatchedRecorder)
