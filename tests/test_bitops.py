"""Unit and property tests for the typecasting/masking bit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    byte_in_word,
    clear_byte,
    insert_byte,
    join_u64,
    make_byte_mask,
    split_u64,
    to_signed,
    to_unsigned,
)


class TestSignConversion:
    def test_to_unsigned_negative_one_is_all_ones(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-1, 32) == 0xFFFFFFFF
        assert to_unsigned(-1, 64) == 0xFFFFFFFFFFFFFFFF

    def test_to_signed_high_bit(self):
        assert to_signed(0x80, 8) == -128
        assert to_signed(0x7F, 8) == 127
        assert to_signed(0x80000000, 32) == -(1 << 31)

    def test_zero_roundtrip(self):
        assert to_signed(to_unsigned(0, 32), 32) == 0

    @pytest.mark.parametrize("bits", [0, -3])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(ValueError):
            to_unsigned(1, bits)
        with pytest.raises(ValueError):
            to_signed(1, bits)

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_roundtrip_32(self, value):
        assert to_signed(to_unsigned(value, 32), 32) == value

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_roundtrip_64(self, value):
        assert to_signed(to_unsigned(value, 64), 64) == value


class TestByteInWord:
    """Fig. 3b's shift-and-mask byte extraction."""

    def test_extracts_each_position(self):
        word = 0x44332211
        assert byte_in_word(word, 0) == 0x11
        assert byte_in_word(word, 1) == 0x22
        assert byte_in_word(word, 2) == 0x33
        assert byte_in_word(word, 3) == 0x44

    def test_negative_word_reinterpreted(self):
        assert byte_in_word(-1, 2) == 0xFF

    @pytest.mark.parametrize("idx", [-1, 4, 100])
    def test_bad_index(self, idx):
        with pytest.raises(ValueError):
            byte_in_word(0, idx)


class TestByteMasking:
    """Fig. 4b's atomicAnd mask construction."""

    def test_mask_zeroes_only_target_byte(self):
        word = 0xAABBCCDD
        assert clear_byte(word, 0) == 0xAABBCC00
        assert clear_byte(word, 1) == 0xAABB00DD
        assert clear_byte(word, 2) == 0xAA00CCDD
        assert clear_byte(word, 3) == 0x00BBCCDD

    def test_mask_value_matches_paper(self):
        # ~(0xff << ((v % 4) * 8)) for v % 4 == 1
        assert make_byte_mask(1) == 0xFFFF00FF

    def test_insert_byte(self):
        assert insert_byte(0x44332211, 2, 0xEE) == 0x44EE2211

    def test_insert_rejects_wide_values(self):
        with pytest.raises(ValueError):
            insert_byte(0, 0, 0x100)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=0xFF))
    def test_insert_then_extract(self, word, idx, value):
        assert byte_in_word(insert_byte(word, idx, value), idx) == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=3))
    def test_clear_preserves_other_bytes(self, word, idx):
        cleared = clear_byte(word, idx)
        for other in range(4):
            if other != idx:
                assert byte_in_word(cleared, other) == byte_in_word(word, other)
        assert byte_in_word(cleared, idx) == 0


class TestU64Halves:
    """Fig. 5's long-long half accessors."""

    def test_split_low_high(self):
        first, second = split_u64(0x1122334455667788)
        assert first == 0x55667788
        assert second == 0x11223344

    def test_join_inverse(self):
        assert join_u64(0x55667788, 0x11223344) == 0x1122334455667788

    def test_negative_reinterpreted(self):
        first, second = split_u64(-1)
        assert first == second == 0xFFFFFFFF

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_roundtrip(self, value):
        assert join_u64(*split_u64(value)) == value
