"""Tests for the worker fleet: FleetExecutor, the shared result
store, and the fleet-aware service endpoints.

The container has no pytest-asyncio, so async paths run under plain
``asyncio.run`` inside synchronous test functions.  Fleet tests fork
real worker processes; they keep the grids tiny (two cells, one rep)
and the heartbeat fast so failure detection is prompt.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.core import hostfaults
from repro.core.hostfaults import HostFaultPlan
from repro.service.fleet import FleetExecutor
from repro.service.protocol import CellKey
from repro.service.scheduler import StudyExecutor
from repro.service.server import ServiceConfig, SweepService
from repro.service.store import ResultStore

CELLS = (CellKey("cc", "internet", "titanv"),
         CellKey("mis", "internet", "titanv"))


def _run_cells(executor, cells=CELLS, timeout=60.0):
    futures = [executor.submit(key, 300.0) for key in cells]
    return [f.result(timeout=timeout) for f in futures]


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _wait_for(predicate, timeout=15.0, interval=0.02, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


# ----------------------------------------------------------------------
# Byte-identity: the fleet is indistinguishable from the serial path
# ----------------------------------------------------------------------
class TestFleetByteIdentity:
    def test_two_workers_match_single_worker_payload(self):
        serial = StudyExecutor(reps=1)
        fleet = FleetExecutor(workers=2, reps=1, heartbeat_s=0.1)
        try:
            serial_cells = [serial.submit(k, 300.0).result(timeout=60)
                            for k in CELLS]
            fleet_cells = _run_cells(fleet)
            assert _canonical(fleet.results_payload()) == \
                _canonical(serial.results_payload())
            for ours, theirs in zip(fleet_cells, serial_cells):
                assert ours.speedup == theirs.speedup
            assert fleet.study.cells_executed == 2 * len(CELLS)
        finally:
            fleet.shutdown()
            serial.shutdown()

    def test_memo_serves_repeat_submission_without_execution(self):
        fleet = FleetExecutor(workers=2, reps=1, heartbeat_s=0.1)
        try:
            first = _run_cells(fleet)
            executed = fleet.study.cells_executed
            again = _run_cells(fleet)
            assert fleet.study.cells_executed == executed
            for ours, theirs in zip(again, first):
                assert ours.speedup == theirs.speedup
        finally:
            fleet.shutdown()


# ----------------------------------------------------------------------
# Failover: kills, redispatch, and the flap circuit-breaker
# ----------------------------------------------------------------------
class TestFleetFailover:
    def test_killed_workers_redispatch_each_cell_at_most_once(self):
        plan = HostFaultPlan.parse("kill=1.0", seed=3,
                                   disrupt_generations=1)
        with hostfaults.installed(plan):
            fleet = FleetExecutor(workers=2, reps=1, heartbeat_s=0.1)
            try:
                cells = _run_cells(fleet)
                assert all(hasattr(c, "speedup") for c in cells)
                status = fleet.fleet_status()
                assert status["respawns"] >= 1
                assert status["redispatches"] >= 1
                # each lost cell executed exactly once on a survivor
                assert fleet.study.cells_executed == 2 * len(CELLS)
            finally:
                fleet.shutdown()

    def test_restart_storm_evicts_flapping_slot_but_serves(self):
        # a worker SIGKILLed every time it comes back trips its flap
        # breaker: the slot is evicted, its sibling keeps serving, and
        # the fleet reports itself degraded instead of looping forever
        fleet = FleetExecutor(workers=2, reps=1, heartbeat_s=0.05,
                              flap_threshold=2, flap_cooldown_s=3600.0)
        try:
            for kill in range(2):
                status = fleet.fleet_status()["workers"][0]
                assert status["pid"] is not None
                generation = status["generation"]
                os.kill(status["pid"], signal.SIGKILL)
                if kill == 0:
                    _wait_for(
                        lambda: (fleet.fleet_status()["workers"][0]
                                 ["generation"]) > generation,
                        what="slot 0 respawn")
                else:
                    _wait_for(
                        lambda: (fleet.fleet_status()["workers"][0]
                                 ["state"]) == "evicted",
                        what="slot 0 eviction")
            status = fleet.fleet_status()
            assert status["evictions"] == 1
            assert fleet.fleet_degraded is True
            # the surviving sibling still executes the whole grid
            cells = _run_cells(fleet)
            assert all(hasattr(c, "speedup") for c in cells)
            assert fleet.study.cells_executed == 2 * len(CELLS)
        finally:
            fleet.shutdown()


# ----------------------------------------------------------------------
# The content-addressed shared result store
# ----------------------------------------------------------------------
def _records() -> list[dict]:
    return [{"kind": "result", "algorithm": "cc", "input": "internet",
             "device": "titanv", "variant": variant,
             "runtimes_ms": [1.5]} for variant in ("baseline",
                                                   "race_free")]


class TestResultStore:
    def test_publish_lookup_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        store.publish("cc", "internet", "titanv", _records())
        assert store.lookup("cc", "internet", "titanv") == _records()
        # a cold replica sees the published record from disk
        other = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        assert other.lookup("cc", "internet", "titanv") == _records()

    def test_policy_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        store.publish("cc", "internet", "titanv", _records())
        other = ResultStore(tmp_path / "store", reps=3, scale=1.0)
        assert other.lookup("cc", "internet", "titanv") is None

    def test_corrupt_record_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        store.publish("cc", "internet", "titanv", _records())
        (path,) = list((tmp_path / "store").glob("cell-*.json"))
        blob = json.loads(path.read_text())
        blob["records"][0]["runtimes_ms"] = [999.0]  # CRC now stale
        path.write_text(json.dumps(blob))
        cold = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        assert cold.lookup("cc", "internet", "titanv") is None
        assert cold.quarantined == 1
        assert list((tmp_path / "store").glob("*.corrupt"))
        assert not path.exists()

    def test_torn_write_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        store.publish("cc", "internet", "titanv", _records())
        (path,) = list((tmp_path / "store").glob("cell-*.json"))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        cold = ResultStore(tmp_path / "store", reps=1, scale=1.0)
        assert cold.lookup("cc", "internet", "titanv") is None
        assert cold.quarantined == 1

    def test_disk_failure_sticky_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "store"
        blocker.write_text("not a directory")
        store = ResultStore(blocker, reps=1, scale=1.0)
        for i in range(3):
            store.publish("cc", "internet", f"dev{i}", _records())
        assert store.degraded is True
        # memory mirror still serves what this process published
        assert store.lookup("cc", "internet", "dev0") == _records()
        status = store.status()
        assert status["degraded"] is True
        assert status["disk_errors"] >= 3


class TestFleetStore:
    def test_corrupted_store_record_recomputed_byte_identical(
            self, tmp_path):
        store_dir = tmp_path / "store"
        first = FleetExecutor(
            workers=2, reps=1, heartbeat_s=0.1,
            store=ResultStore(store_dir, reps=1, scale=1.0))
        try:
            _run_cells(first)
            baseline = _canonical(first.results_payload())
        finally:
            first.shutdown()
        published = sorted(store_dir.glob("cell-*.json"))
        assert len(published) == len(CELLS)
        published[0].write_text(published[0].read_text()[:-7])

        second = FleetExecutor(
            workers=2, reps=1, heartbeat_s=0.1,
            store=ResultStore(store_dir, reps=1, scale=1.0))
        try:
            _run_cells(second)
            assert _canonical(second.results_payload()) == baseline
            status = second.store.status()
            assert status["quarantined"] == 1
            assert status["hits"] == len(CELLS) - 1
            # only the quarantined cell was recomputed
            assert second.study.cells_executed == 2
        finally:
            second.shutdown()


# ----------------------------------------------------------------------
# Service endpoints: /readyz degradation and study events
# ----------------------------------------------------------------------
async def _fetch(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                  f"Content-Length: {len(payload)}\r\n\r\n"
                  ).encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, head, rest


def _dechunk(body: bytes) -> list[dict]:
    out = []
    i = 0
    while i < len(body):
        j = body.index(b"\r\n", i)
        size = int(body[i:j], 16)
        if size == 0:
            break
        out.append(body[j + 2:j + 2 + size])
        i = j + 2 + size + 2
    return [json.loads(line)
            for line in b"".join(out).splitlines() if line]


class TestServiceFleet:
    def test_fleet_service_end_to_end_with_readyz_fleet_block(
            self, tmp_path):
        async def go():
            config = ServiceConfig(port=0, reps=1, retries=0, workers=2,
                                   store_dir=str(tmp_path / "store"),
                                   fleet_heartbeat_s=0.1)
            service = SweepService(config)
            await service.start()
            host, port = service.address
            status, _head, body = await _fetch(host, port, "GET",
                                               "/readyz")
            assert status == 200
            payload = json.loads(body)
            assert payload["ready"] is True
            assert payload["reasons"] == []
            assert len(payload["fleet"]["workers"]) == 2

            status, _head, body = await _fetch(
                host, port, "POST", "/v1/study",
                {"algorithms": ["cc", "mis"], "inputs": ["internet"],
                 "device": "titanv", "tenant": "fleet"})
            assert status == 200
            records = _dechunk(body)
            cells = [r for r in records if "cell" in r]
            assert len(cells) == 2
            assert all(r["status"] == "ok" for r in cells)
            assert records[0]["study_id"] == records[-1][
                "summary"]["study_id"]
            await service.aclose()

        asyncio.run(go())

    def test_readyz_degrades_on_eviction_and_store_degrade(
            self, tmp_path):
        async def go():
            config = ServiceConfig(port=0, reps=1, retries=0, workers=2,
                                   store_dir=str(tmp_path / "store"),
                                   fleet_heartbeat_s=0.1)
            service = SweepService(config)
            await service.start()
            host, port = service.address

            # respawn budget exhausted: a slot evicted by its breaker
            service.executor._slots[0].state = "evicted"
            status, _head, body = await _fetch(host, port, "GET",
                                               "/readyz")
            assert status == 503
            payload = json.loads(body)
            assert payload["ready"] is False
            assert "fleet_respawn_exhausted" in payload["reasons"]

            # a sticky-degraded store is a second, independent reason
            service.executor.store._degraded = True
            status, _head, body = await _fetch(host, port, "GET",
                                               "/readyz")
            assert status == 503
            assert "store_degraded" in json.loads(body)["reasons"]
            service.executor._slots[0].state = "idle"
            await service.aclose()

        asyncio.run(go())

    def test_study_events_replay_and_unknown_id(self):
        async def go():
            config = ServiceConfig(port=0, reps=1, retries=0)
            service = SweepService(config)
            await service.start()
            host, port = service.address

            status, _head, _body = await _fetch(
                host, port, "GET", "/v1/study/s999999/events")
            assert status == 404

            status, _head, body = await _fetch(
                host, port, "POST", "/v1/study",
                {"algorithms": ["cc"], "inputs": ["internet"],
                 "device": "titanv", "tenant": "ev"})
            assert status == 200
            study_id = _dechunk(body)[0]["study_id"]

            status, _head, body = await _fetch(
                host, port, "GET", f"/v1/study/{study_id}/events")
            assert status == 200
            events = _dechunk(body)
            kinds = [e["event"] for e in events]
            assert kinds[0] == "cell_start"
            assert "cell_finish" in kinds
            assert kinds[-1] == "study_done"
            assert all(e["study"] == study_id for e in events)

            status, _head, _body = await _fetch(
                host, port, "POST", f"/v1/study/{study_id}/events")
            assert status == 405
            await service.aclose()

        asyncio.run(go())

    def test_live_event_subscription_sees_cells_finish(self):
        async def go():
            config = ServiceConfig(port=0, reps=1, retries=0)
            service = SweepService(config)
            await service.start()
            host, port = service.address

            async def subscribe_after_start():
                # the study id is deterministic: first study is s000001
                await asyncio.sleep(0.01)
                return await _fetch(host, port, "GET",
                                    "/v1/study/s000001/events")

            (status, _h, study_body), (ev_status, _eh, ev_body) = \
                await asyncio.gather(
                    _fetch(host, port, "POST", "/v1/study",
                           {"algorithms": ["cc"], "inputs": ["internet"],
                            "device": "titanv", "tenant": "live"}),
                    subscribe_after_start())
            assert status == 200 and ev_status == 200
            events = _dechunk(ev_body)
            assert events[-1]["event"] == "study_done"
            await service.aclose()

        asyncio.run(go())
