"""Tests for the trace record/replay engine (repro.perf.trace).

The contract under test: replaying a recorded trace for a device is
bit-identical to running the direct engine for that device, one
recording serves every device of its staleness class, and the cache
key invalidates on any input that could change the trace.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.transform import AccessPlan, AccessSite
from repro.core.variants import Variant, get_algorithm, list_algorithms
from repro.gpu.accesses import AccessKind
from repro.gpu.device import DEVICE_ORDER, PAPER_GPUS, get_device
from repro.gpu.faults import FaultPlan
from repro.graphs import generators as gen
from repro.perf.engine import noise_multiplier, run_algorithm
from repro.perf.trace import TraceCache, plan_fingerprint
from repro.perf.trace import stable_config_hash


def _graph_for(algo):
    if algo.key == "apsp":
        g = gen.random_uniform(12, 2.0, seed=3)
    elif algo.directed:
        g = gen.directed_powerlaw(48, 2.5, seed=3)
    else:
        g = gen.random_uniform(48, 3.0, seed=3)
    if algo.needs_weights and not g.has_weights:
        g = g.with_random_weights(seed=1)
    return g


ALGO_VARIANTS = [(a.key, v) for a in list_algorithms() for v in Variant]


class TestReplayEquivalence:
    @pytest.mark.parametrize("algo_key,variant", ALGO_VARIANTS)
    def test_replay_bit_identical_to_direct_on_every_device(
            self, algo_key, variant):
        """The cached-trace path must reproduce the direct engine's
        runtime, rounds, and outputs exactly, for all four devices."""
        algo = get_algorithm(algo_key)
        graph = _graph_for(algo)
        cache = TraceCache()
        for dev in DEVICE_ORDER:
            spec = get_device(dev)
            direct = run_algorithm(algo, graph, spec, variant, seed=7,
                                   trace_cache=None)
            cached = run_algorithm(algo, graph, spec, variant, seed=7,
                                   trace_cache=cache)
            assert cached.runtime_ms == direct.runtime_ms, dev
            assert cached.rounds == direct.rounds, dev
            for name in direct.output:
                assert np.array_equal(np.asarray(cached.output[name]),
                                      np.asarray(direct.output[name])), dev

    def test_staleness_dependent_records_once_per_class(self):
        """Baseline MIS consumes the staleness constant, so the four
        devices (two staleness classes) need exactly two recordings."""
        classes = {spec.plain_staleness_rounds
                   for spec in PAPER_GPUS.values()}
        assert len(classes) == 2  # the premise of the whole design
        algo = get_algorithm("mis")
        graph = _graph_for(algo)
        cache = TraceCache()
        for dev in DEVICE_ORDER:
            run_algorithm(algo, graph, get_device(dev), Variant.BASELINE,
                          seed=5, trace_cache=cache)
        assert cache.recorded == len(classes)
        assert cache.memory_hits == len(DEVICE_ORDER) - len(classes)

    @pytest.mark.parametrize("algo_key,variant", [
        ("cc", Variant.BASELINE), ("gc", Variant.BASELINE),
        ("mst", Variant.BASELINE), ("scc", Variant.BASELINE),
        ("mis", Variant.RACE_FREE),
    ])
    def test_staleness_independent_records_once_total(self, algo_key,
                                                      variant):
        """Executions that never consume the staleness constant —
        everything except baseline MIS — record once for all four
        devices (the wildcard-key path)."""
        algo = get_algorithm(algo_key)
        graph = _graph_for(algo)
        cache = TraceCache()
        for dev in DEVICE_ORDER:
            run_algorithm(algo, graph, get_device(dev), variant,
                          seed=5, trace_cache=cache)
        assert cache.recorded == 1
        assert cache.memory_hits == len(DEVICE_ORDER) - 1


class TestTraceCache:
    def test_disk_roundtrip(self, tmp_path):
        algo = get_algorithm("mis")
        graph = _graph_for(algo)
        spec = get_device("titanv")
        first = TraceCache(disk_dir=tmp_path)
        direct = run_algorithm(algo, graph, spec, Variant.RACE_FREE,
                               seed=11, trace_cache=first)
        assert first.recorded == 1

        # a fresh process/session pointing at the same directory replays
        # without re-recording — but cannot supply output arrays
        second = TraceCache(disk_dir=tmp_path)
        replayed = run_algorithm(algo, graph, spec, Variant.RACE_FREE,
                                 seed=11, trace_cache=second,
                                 need_output=False)
        assert second.recorded == 0
        assert second.disk_hits == 1
        assert replayed.runtime_ms == direct.runtime_ms
        assert replayed.output is None

    def test_need_output_forces_rerecord(self, tmp_path):
        algo = get_algorithm("cc")
        graph = _graph_for(algo)
        spec = get_device("a100")
        run_algorithm(algo, graph, spec, Variant.BASELINE, seed=2,
                      trace_cache=TraceCache(disk_dir=tmp_path))
        fresh = TraceCache(disk_dir=tmp_path)
        run = run_algorithm(algo, graph, spec, Variant.BASELINE, seed=2,
                            trace_cache=fresh, need_output=True)
        assert fresh.recorded == 1  # disk trace has no outputs: re-record
        assert run.output is not None

    def test_different_graph_does_not_alias(self):
        algo = get_algorithm("cc")
        spec = get_device("titanv")
        cache = TraceCache()
        g1 = gen.random_uniform(48, 3.0, seed=3)
        g2 = gen.random_uniform(48, 3.0, seed=4)
        run_algorithm(algo, g1, spec, Variant.BASELINE, seed=1,
                      trace_cache=cache)
        run_algorithm(algo, g2, spec, Variant.BASELINE, seed=1,
                      trace_cache=cache)
        assert cache.recorded == 2

    def test_plan_fingerprint_covers_site_fields(self):
        base = AccessPlan("t", (
            AccessSite("t.x", AccessKind.PLAIN, is_store=True),
        ))
        reordered = AccessPlan("t", (
            AccessSite("t.x", AccessKind.VOLATILE, is_store=True),
        ))
        assert plan_fingerprint(base) != plan_fingerprint(reordered)

    def test_faulted_runs_bypass_the_cache(self):
        """Injection mutates outputs/runtimes; a shared recording must
        never absorb that, and a faulted run must not consume one."""
        algo = get_algorithm("cc")
        graph = _graph_for(algo)
        spec = get_device("titanv")
        cache = TraceCache()
        plan = FaultPlan.parse("stall=1.0", seed=9)
        injector = plan.injector("cc", graph.name, "titanv",
                                 Variant.BASELINE.value, 0, 0)
        run_algorithm(algo, graph, spec, Variant.BASELINE, seed=1,
                      faults=injector, trace_cache=cache)
        assert cache.recorded == 0
        assert len(cache) == 0


class TestPrune:
    def _fill(self, tmp_path, n: int) -> TraceCache:
        """Record n distinct traces into a disk-backed cache with
        strictly increasing mtimes (oldest = lowest seed)."""
        cache = TraceCache(disk_dir=tmp_path)
        algo = get_algorithm("cc")
        graph = _graph_for(algo)
        spec = get_device("titanv")
        for seed in range(n):
            run_algorithm(algo, graph, spec, Variant.BASELINE,
                          seed=seed, trace_cache=cache)
        files = sorted(tmp_path.glob("trace-*.json"))
        assert len(files) == n
        for i, path in enumerate(files):
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        return cache

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path, 4)
        files = sorted(tmp_path.glob("trace-*.json"),
                       key=lambda p: p.stat().st_mtime)
        entries, nbytes = cache.disk_usage()
        assert entries == 4
        keep = sum(p.stat().st_size for p in files[2:])
        removed, freed = cache.prune(keep)
        assert removed == 2
        assert freed == nbytes - keep
        survivors = set(tmp_path.glob("trace-*.json"))
        assert survivors == set(files[2:])

    def test_prune_zero_clears_the_layer(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        removed, _freed = cache.prune(0)
        assert removed == 2
        assert cache.disk_usage() == (0, 0)

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        assert cache.prune(10**9) == (0, 0)
        assert cache.disk_usage()[0] == 2

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            TraceCache(disk_dir=tmp_path).prune(-1)

    def test_prune_keeps_memory_layer(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        cache.prune(0)
        assert len(cache) == 2  # memory traces survive disk eviction

    def test_prune_evicts_quarantine_first(self, tmp_path):
        # a quarantined file with the *newest* mtime still goes before
        # any live trace: it serves no lookups and must never crowd
        # them out of the byte budget
        cache = self._fill(tmp_path, 3)
        live = sorted(tmp_path.glob("trace-*.json"))
        corrupt = tmp_path / "trace-feedface.json.corrupt"
        corrupt.write_bytes(b"x" * 64)
        os.utime(corrupt, (2_000_000, 2_000_000))
        budget = sum(p.stat().st_size for p in live)
        removed, freed = cache.prune(budget)
        assert (removed, freed) == (1, 64)
        assert not corrupt.exists()
        assert set(tmp_path.glob("trace-*.json")) == set(live)

    def test_prune_counts_quarantine_toward_budget(self, tmp_path):
        # budget smaller than quarantine + live: the corrupt file goes
        # first, then live traces oldest-first until the layer fits
        cache = self._fill(tmp_path, 2)
        live = sorted(tmp_path.glob("trace-*.json"),
                      key=lambda p: p.stat().st_mtime)
        corrupt = tmp_path / "trace-feedface.json.corrupt"
        corrupt.write_bytes(b"x" * 64)
        keep = sum(p.stat().st_size for p in live[1:])
        removed, _freed = cache.prune(keep)
        assert removed == 2  # the corrupt file + the oldest live trace
        assert not corrupt.exists()
        assert set(tmp_path.glob("trace-*.json")) == set(live[1:])

    def test_prune_quarantine_counter(self, tmp_path):
        from repro import telemetry

        cache = TraceCache(disk_dir=tmp_path)
        (tmp_path / "trace-0badc0de.json.corrupt").write_bytes(b"y" * 8)
        try:
            registry, _spans = telemetry.enable()
            cache.prune(0)
            assert registry.get(
                "repro_trace_prune_quarantined").value() == 1
        finally:
            telemetry.disable()

    def test_prune_updates_disk_gauges(self, tmp_path):
        from repro import telemetry

        cache = self._fill(tmp_path, 3)
        try:
            registry, _spans = telemetry.enable()
            cache.prune(0)
            assert registry.get(
                "repro_trace_cache_disk_entries").value() == 0
            assert registry.get(
                "repro_trace_cache_disk_bytes").value() == 0
        finally:
            telemetry.disable()


class TestStableNoise:
    def test_crc_not_string_hash(self):
        # the exact value is part of the persisted-results contract now
        assert stable_config_hash("cc", Variant.BASELINE) == \
            stable_config_hash("cc", Variant.BASELINE)
        assert stable_config_hash("cc", Variant.BASELINE) != \
            stable_config_hash("cc", Variant.RACE_FREE)

    def test_noise_identical_across_interpreter_invocations(self):
        """The historical hash((algo, variant)) seeding was randomized
        per process; the replacement must not be."""
        src = str(Path(__file__).resolve().parents[1] / "src")
        code = ("from repro.core.variants import Variant;"
                "from repro.perf.engine import noise_multiplier;"
                "print(repr(noise_multiplier('mis', Variant.RACE_FREE, 7)))")
        values = set()
        for hashseed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed,
                       PYTHONPATH=src)
            out = subprocess.run(
                [sys.executable, "-c", code], env=env,
                capture_output=True, text=True, check=True)
            values.add(out.stdout.strip())
        assert len(values) == 1
        assert values.pop() == repr(
            noise_multiplier("mis", Variant.RACE_FREE, 7))
