"""Tests for the performance engine: recorder and delayed views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.transform import AccessPlan, AccessSite
from repro.core.variants import Variant
from repro.errors import StudyError
from repro.gpu.accesses import AccessKind
from repro.gpu.device import get_device
from repro.perf.engine import Recorder
from repro.perf.visibility import DelayedView


def make_recorder(variant=Variant.BASELINE) -> Recorder:
    plan = AccessPlan("t", (
        AccessSite("t.plain", AccessKind.PLAIN),
        AccessSite("t.volatile", AccessKind.VOLATILE),
        AccessSite("t.store", AccessKind.PLAIN, is_store=True),
        AccessSite("t.rmw", AccessKind.ATOMIC, is_rmw=True),
    ))
    return Recorder(plan, variant, get_device("titanv"))


class TestRecorder:
    def test_load_buckets_by_site_kind(self):
        r = make_recorder()
        r.load("t.plain", count=10)
        r.load("t.volatile", count=5)
        assert r.stats.plain_loads == 10
        assert r.stats.volatile_loads == 5

    def test_variant_redirects_to_atomic(self):
        r = make_recorder(Variant.RACE_FREE)
        r.load("t.plain", count=10)
        r.store("t.store", count=4)
        assert r.stats.atomic_loads == 10
        assert r.stats.atomic_stores == 4
        assert r.stats.plain_loads == 0

    def test_indices_counted(self):
        r = make_recorder()
        r.load("t.plain", indices=np.array([1, 2, 3]))
        assert r.stats.plain_loads == 3

    def test_contention_counted_for_atomic_stores(self):
        r = make_recorder(Variant.RACE_FREE)
        r.store("t.store", indices=np.array([5, 5, 5, 6]))
        assert r.stats.contended_atomics == 2  # three hits on 5

    def test_no_contention_for_plain_stores(self):
        r = make_recorder(Variant.BASELINE)
        r.store("t.store", indices=np.array([5, 5, 5, 6]))
        assert r.stats.contended_atomics == 0

    def test_rmw_counted_in_both_variants(self):
        for variant in Variant:
            r = make_recorder(variant)
            r.rmw("t.rmw", indices=np.array([1, 1]))
            assert r.stats.atomic_rmws == 2
            assert r.stats.contended_atomics == 1

    def test_structure_always_plain(self):
        r = make_recorder(Variant.RACE_FREE)
        r.structure(7)
        assert r.stats.plain_loads == 7

    def test_requires_indices_or_count(self):
        with pytest.raises(StudyError):
            make_recorder().load("t.plain")

    def test_footprint_is_max_per_array_sum_across(self):
        r = make_recorder()
        r.touch("a", 100)
        r.touch("a", 50)   # smaller re-touch does not shrink
        r.touch("b", 10)
        assert r.stats.footprint_bytes == 110

    def test_rounds(self):
        r = make_recorder()
        r.round()
        r.round(launches=3)
        assert r.stats.rounds == 4

    def test_staleness_only_for_plain_sites(self):
        r = make_recorder(Variant.BASELINE)
        assert r.staleness("t.plain") > 0
        assert r.staleness("t.volatile") == 0
        r2 = make_recorder(Variant.RACE_FREE)
        assert r2.staleness("t.plain") == 0


class TestDelayedView:
    def test_zero_delay_sees_current(self):
        arr = np.zeros(4, dtype=np.int64)
        view = DelayedView(arr, delay=0)
        arr[0] = 7
        assert view.read()[0] == 7

    def test_delayed_view_lags(self):
        arr = np.zeros(4, dtype=np.int64)
        view = DelayedView(arr, delay=2)
        arr[0] = 1
        view.commit()
        arr[0] = 2
        view.commit()
        # history: [initial(0), 1, 2]; delay 2 -> sees the oldest
        assert view.read()[0] == 0

    def test_catches_up_after_enough_commits(self):
        arr = np.zeros(2, dtype=np.int64)
        view = DelayedView(arr, delay=1)
        arr[0] = 5
        view.commit()
        view.commit()
        assert view.read()[0] == 5

    def test_fractional_staleness_mixes(self):
        arr = np.zeros(1000, dtype=np.int64)
        view = DelayedView(arr, delay=1, stale_fraction=0.5, seed=1)
        arr[:] = 1
        view.commit()
        seen = view.read()
        stale = int((seen == 0).sum())
        assert 300 < stale < 700  # roughly half

    def test_validation(self):
        arr = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            DelayedView(arr, delay=-1)
        with pytest.raises(ValueError):
            DelayedView(arr, delay=1, stale_fraction=2.0)

    def test_deterministic_given_seed(self):
        arr1 = np.zeros(100, dtype=np.int64)
        arr2 = np.zeros(100, dtype=np.int64)
        v1 = DelayedView(arr1, delay=1, stale_fraction=0.5, seed=9)
        v2 = DelayedView(arr2, delay=1, stale_fraction=0.5, seed=9)
        arr1[:] = 1
        arr2[:] = 1
        v1.commit()
        v2.commit()
        assert np.array_equal(v1.read(), v2.read())
