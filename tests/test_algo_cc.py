"""Tests for ECL-CC (both execution levels, both variants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import cc, verify
from repro.core.variants import Variant, get_algorithm
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.gpu.device import get_device
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector
from repro.perf.engine import run_algorithm

ALGO = lambda: get_algorithm("cc")
DEV = lambda: get_device("titanv")


class TestPerfCorrectness:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_two_triangles(self, two_triangles, variant):
        run = run_algorithm(ALGO(), two_triangles, DEV(), variant)
        verify.check_components(two_triangles, run.output["labels"])
        assert len(set(run.output["labels"].tolist())) == 2

    @pytest.mark.parametrize("variant", list(Variant))
    def test_path_is_one_component(self, path_graph, variant):
        run = run_algorithm(ALGO(), path_graph, DEV(), variant)
        assert len(set(run.output["labels"].tolist())) == 1

    def test_edgeless_graph(self):
        g = CSRGraph.empty(7, name="isolated")
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        assert len(set(run.output["labels"].tolist())) == 7

    def test_variants_agree(self, small_graph):
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert np.array_equal(base.output["labels"], free.output["labels"])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(10, 60), st.floats(1.0, 5.0), st.integers(0, 100))
    def test_random_graphs_verified(self, n, avg, seed):
        g = gen.random_uniform(n, avg, seed=seed)
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        verify.check_components(g, run.output["labels"])


class TestAccessProfile:
    def test_racefree_has_no_racy_accesses(self, small_graph):
        run = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        s = run.stats
        # only the read-only CSR structure may stay plain
        assert s.volatile_loads == 0 and s.volatile_stores == 0
        assert s.atomic_loads > 0 and s.atomic_stores > 0

    def test_baseline_jump_reads_are_plain(self, small_graph):
        run = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        s = run.stats
        assert s.plain_loads > s.atomic_loads
        assert s.atomic_rmws > 0  # hooking CAS is atomic in the baseline

    def test_hook_rmws_identical_across_variants(self, small_graph):
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert base.stats.atomic_rmws == free.stats.atomic_rmws

    def test_racefree_slower_on_titanv(self, small_graph):
        """The headline CC result: race-free is substantially slower."""
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert base.runtime_ms < free.runtime_ms


class TestSimtLevel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_correct_under_random_schedules(self, tiny_graph, variant, seed):
        labels, _ = cc.run_simt(tiny_graph, variant,
                                scheduler=RandomScheduler(seed))
        verify.check_components(tiny_graph, labels)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_correct_under_adversarial_schedules(self, tiny_graph, seed):
        for variant in Variant:
            labels, _ = cc.run_simt(tiny_graph, variant,
                                    scheduler=AdversarialScheduler(seed))
            verify.check_components(tiny_graph, labels)

    def test_baseline_has_races_racefree_does_not(self, tiny_graph):
        _, ex_base = cc.run_simt(tiny_graph, Variant.BASELINE,
                                 scheduler=RandomScheduler(9))
        base_races = RaceDetector().check(ex_base)
        assert base_races, "baseline CC should exhibit label races"
        assert any(r.array == "cc_label" for r in base_races)

        _, ex_free = cc.run_simt(tiny_graph, Variant.RACE_FREE,
                                 scheduler=RandomScheduler(9))
        assert RaceDetector().check(ex_free) == []


class TestVerifier:
    def test_rejects_merged_components(self, two_triangles):
        labels = np.zeros(6, dtype=np.int64)  # everything one component
        with pytest.raises(ValidationError):
            verify.check_components(two_triangles, labels)

    def test_rejects_split_component(self, path_graph):
        labels = np.arange(10, dtype=np.int64)
        with pytest.raises(ValidationError):
            verify.check_components(path_graph, labels)

    def test_rejects_wrong_length(self, path_graph):
        with pytest.raises(ValidationError):
            verify.check_components(path_graph, np.zeros(3, dtype=np.int64))
