"""Tests for ECL-GC (both execution levels, both variants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import gc, verify
from repro.core.variants import Variant, get_algorithm
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.gpu.device import get_device
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector
from repro.perf.engine import run_algorithm

ALGO = lambda: get_algorithm("gc")
DEV = lambda: get_device("titanv")


class TestPerfCorrectness:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_triangle_needs_three_colors(self, two_triangles, variant):
        run = run_algorithm(ALGO(), two_triangles, DEV(), variant)
        colors = run.output["colors"]
        verify.check_coloring(two_triangles, colors)
        assert len(set(colors.tolist())) == 3

    @pytest.mark.parametrize("variant", list(Variant))
    def test_path_within_jones_plassmann_bound(self, path_graph, variant):
        run = run_algorithm(ALGO(), path_graph, DEV(), variant)
        verify.check_coloring(path_graph, run.output["colors"])
        # Jones-Plassmann guarantees at most max-degree + 1 colors
        assert set(run.output["colors"].tolist()) <= {0, 1, 2}

    def test_edgeless_uses_one_color(self):
        g = CSRGraph.empty(5)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        assert set(run.output["colors"].tolist()) == {0}

    def test_variants_agree(self, small_graph):
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert np.array_equal(base.output["colors"], free.output["colors"])

    def test_color_count_bounded_by_max_degree(self, small_graph):
        run = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        n_colors = int(run.output["colors"].max()) + 1
        assert n_colors <= int(small_graph.degrees().max()) + 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(10, 60), st.floats(1.0, 5.0), st.integers(0, 100))
    def test_random_graphs_verified(self, n, avg, seed):
        g = gen.random_uniform(n, avg, seed=seed)
        run = run_algorithm(ALGO(), g, DEV(), Variant.RACE_FREE)
        verify.check_coloring(g, run.output["colors"])


class TestAccessProfile:
    def test_baseline_uses_volatile(self, small_graph):
        """ECL-GC's shared arrays are already volatile — the reason its
        race-free conversion is almost free."""
        run = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        assert run.stats.volatile_loads > 0
        assert run.stats.atomic_loads == 0

    def test_conversion_is_cheap(self, small_graph):
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        speedup = base.runtime_ms / free.runtime_ms
        assert speedup > 0.90  # paper: geomean 0.96-1.00

    def test_rounds_identical_across_variants(self, small_graph):
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert base.rounds == free.rounds


class TestSimtLevel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_correct_under_schedules(self, tiny_graph, variant, seed):
        colors, _ = gc.run_simt(tiny_graph, variant,
                                scheduler=RandomScheduler(seed))
        verify.check_coloring(tiny_graph, colors)

    def test_adversarial_schedule(self, tiny_graph):
        colors, _ = gc.run_simt(tiny_graph, Variant.RACE_FREE,
                                scheduler=AdversarialScheduler(5))
        verify.check_coloring(tiny_graph, colors)

    def test_baseline_races_found_racefree_clean(self, tiny_graph):
        _, ex_base = gc.run_simt(tiny_graph, Variant.BASELINE,
                                 scheduler=RandomScheduler(2))
        assert any(r.array == "gc_color"
                   for r in RaceDetector().check(ex_base))
        _, ex_free = gc.run_simt(tiny_graph, Variant.RACE_FREE,
                                 scheduler=RandomScheduler(2))
        assert RaceDetector().check(ex_free) == []


class TestVerifier:
    def test_rejects_adjacent_same_color(self, two_triangles):
        with pytest.raises(ValidationError):
            verify.check_coloring(two_triangles, np.zeros(6, dtype=np.int64))

    def test_rejects_uncolored(self, two_triangles):
        colors = np.array([0, 1, 2, 0, 1, -1], dtype=np.int64)
        with pytest.raises(ValidationError):
            verify.check_coloring(two_triangles, colors)


class TestPriorities:
    def test_largest_degree_first(self, small_graph):
        prio = gc.make_priorities(small_graph, seed=0)
        degs = small_graph.degrees()
        hub = int(np.argmax(degs))
        leaf = int(np.argmin(degs))
        assert prio[hub] > prio[leaf]

    def test_priorities_distinct(self, small_graph):
        prio = gc.make_priorities(small_graph, seed=0)
        assert len(np.unique(prio)) == small_graph.num_vertices
