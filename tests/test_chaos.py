"""Tests for worker-death-tolerant pool execution
(repro.core.parallel) and the chaos harness (repro.core.chaos).

Covers SIGKILLed and stalled workers recovering to byte-identical
results, the bounded respawn budget, worker-raised exceptions wrapped
as :class:`~repro.errors.WorkerTaskError` naming the cell, the chaos
scenario suite's kind coverage, one end-to-end scenario run, and the
CLI wiring (``repro chaos`` exit codes, exit 3 on interruption).
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.core import hostfaults
from repro.core.chaos import (
    ChaosOutcome,
    ChaosReport,
    run_scenario,
    scenario_suite,
)
from repro.core.hostfaults import HostFaultKind, HostFaultPlan
from repro.core.parallel import CellTask, execute_tasks
from repro.core.resilience import ResilientStudy
from repro.errors import StudyError, SweepInterrupted, WorkerTaskError

DEVICE = "titanv"
INPUT = "internet"
ALGOS = ["cc", "mis"]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    hostfaults.uninstall()
    yield
    hostfaults.uninstall()


@pytest.fixture(scope="module")
def clean_bytes(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos-clean")
    study = ResilientStudy(reps=1)
    result = study.sweep(DEVICE, ALGOS, [INPUT])
    assert not result.failures
    out = root / "results.json"
    study.save_results(out)
    return out.read_bytes()


class TestWorkerDeathRecovery:
    def test_sigkilled_generation_recovers_byte_identically(
            self, tmp_path, clean_bytes):
        plan = HostFaultPlan.parse("kill=1.0", seed=0,
                                   disrupt_generations=1)
        with telemetry.session() as (registry, _spans):
            with hostfaults.installed(plan):
                study = ResilientStudy(reps=1)
                result = study.sweep(DEVICE, ALGOS, [INPUT], jobs=2)
            respawns = registry.get("repro_host_pool_respawns_total")
            assert respawns is not None and respawns.value() >= 1
        assert not result.failures
        assert result.coverage[0] == result.coverage[1]
        out = tmp_path / "results.json"
        study.save_results(out)
        assert out.read_bytes() == clean_bytes

    def test_stalled_workers_are_killed_past_the_deadline(
            self, tmp_path, clean_bytes):
        plan = HostFaultPlan.parse("stall=1.0", seed=0,
                                   stall_seconds=30.0,
                                   disrupt_generations=1)
        with hostfaults.installed(plan):
            study = ResilientStudy(reps=1)
            study.pool_task_deadline_s = 0.5
            result = study.sweep(DEVICE, ALGOS, [INPUT], jobs=2)
        assert not result.failures
        out = tmp_path / "results.json"
        study.save_results(out)
        assert out.read_bytes() == clean_bytes

    def test_respawn_budget_exhaustion_raises(self):
        # no generation bound: every incarnation of every worker dies
        plan = HostFaultPlan.parse("kill=1.0", seed=0)
        with hostfaults.installed(plan):
            study = ResilientStudy(reps=1)
            study.pool_respawn_budget = 1
            with pytest.raises(StudyError, match="respawn budget"):
                study.sweep(DEVICE, ["cc"], [INPUT], jobs=2)

    def test_worker_raised_error_names_the_cell(self):
        config = ResilientStudy(reps=1)._worker_config()
        tasks = [CellTask("nope", INPUT, DEVICE, ("baseline",))]
        with pytest.raises(WorkerTaskError,
                           match=r"nope/internet/titanv"):
            execute_tasks(config, tasks, jobs=1, merge=lambda r: None)


class TestChaosHarness:
    def test_suite_covers_every_fault_kind(self):
        covered = set()
        for scenario in scenario_suite():
            covered |= scenario.kinds()
        assert covered == set(HostFaultKind)

    def test_checkpoint_fallback_scenario_end_to_end(
            self, tmp_path, clean_bytes):
        scenario = next(s for s in scenario_suite(jobs=2)
                        if s.name == "checkpoint-fallback")
        outcome = run_scenario(scenario, clean_bytes, tmp_path, DEVICE,
                               ALGOS, [INPUT], reps=1, seed=0)
        assert outcome.ok and outcome.identical
        assert "fallbacks=1" in outcome.detail
        assert "ok" in outcome.describe()

    def test_report_rendering(self):
        good = ChaosOutcome(scenario="torn-trace", ok=True,
                            identical=True, coverage=(4, 4), detail="d")
        bad = ChaosOutcome(scenario="combined", ok=False,
                           identical=False, coverage=(3, 4), detail="d")
        report = ChaosReport(outcomes=[good, bad],
                             kinds_covered=("kill", "torn"))
        assert not report.ok
        text = report.render()
        assert "DIVERGED" in text and "FAILURES" in text
        assert ChaosReport(outcomes=[good],
                           kinds_covered=("torn",)).ok


class TestCliWiring:
    def test_chaos_command_exit_codes(self, monkeypatch, capsys):
        class _FakeReport:
            def __init__(self, ok):
                self.ok = ok

            def render(self):
                return "fake chaos report"

        calls = {}

        def fake_run_chaos(**kwargs):
            calls.update(kwargs)
            return _FakeReport(calls["quick"])

        monkeypatch.setattr("repro.core.chaos.run_chaos", fake_run_chaos)
        assert cli_main(["chaos", "--quick"]) == 0
        assert calls["quick"] is True
        assert "fake chaos report" in capsys.readouterr().out
        assert cli_main(["chaos"]) == 1  # quick=False -> fake failure

    def test_interrupted_sweep_exits_3(self, monkeypatch, capsys):
        def fake_sweep(self, *args, **kwargs):
            raise SweepInterrupted("stopped by operator")

        monkeypatch.setattr(ResilientStudy, "sweep", fake_sweep)
        rc = cli_main(["sweep", "--device", DEVICE, "--inputs", INPUT,
                       "--reps", "1"])
        assert rc == 3
        assert "interrupted: stopped by operator" in \
            capsys.readouterr().err
