"""Tests for the per-site profiler and partial race removal."""

from __future__ import annotations

import pytest

from repro.core.transform import remove_races_at
from repro.core.variants import Variant, get_algorithm
from repro.errors import StudyError
from repro.gpu.device import get_device
from repro.perf.profiler import (
    ProfilingRecorder,
    compare_profiles,
    dominant_racy_site,
    profile_run,
)


@pytest.fixture(scope="module")
def cc_profiles(request):
    from repro.graphs import generators as gen

    graph = gen.preferential_attachment(400, 3, seed=11)
    device = get_device("titanv")
    algo = get_algorithm("cc")
    base = profile_run(algo, graph, device, Variant.BASELINE, seed=7)
    free = profile_run(algo, graph, device, Variant.RACE_FREE, seed=7)
    return base, free


class TestProfiler:
    def test_site_traffic_collected(self, cc_profiles):
        base, _ = cc_profiles
        assert "cc.label.jump_read" in base.sites
        assert base.sites["cc.label.jump_read"].loads > 0

    def test_traffic_identical_across_variants(self, cc_profiles):
        """The transform changes kinds, never counts."""
        base, free = cc_profiles
        for name in base.sites:
            assert base.sites[name].total == free.sites[name].total

    def test_kinds_differ_across_variants(self, cc_profiles):
        base, free = cc_profiles
        assert (base.sites["cc.label.jump_read"].kind.value == "plain")
        assert (free.sites["cc.label.jump_read"].kind.value == "atomic")

    def test_l1_share_drops_after_conversion(self, cc_profiles):
        """Section VI.A's profiling observation: the baseline has the
        much higher L1 hit rate."""
        base, free = cc_profiles
        assert base.l1_traffic_share > free.l1_traffic_share + 0.2

    def test_dominant_racy_site_is_the_jump_read(self, cc_profiles):
        base, _ = cc_profiles
        assert dominant_racy_site(base) == "cc.label.jump_read"

    def test_comparison_table_renders(self, cc_profiles):
        table = compare_profiles(*cc_profiles)
        assert "cc.label.jump_read" in table
        assert "L1-path share" in table

    def test_runtime_consistent_with_engine(self, cc_profiles):
        base, free = cc_profiles
        assert base.runtime_ms < free.runtime_ms  # CC slows down

    def test_site_counts_are_whole_integers(self, cc_profiles):
        """Access counts are numbers of accesses — always ints."""
        base, free = cc_profiles
        for profile in (base, free):
            for traffic in profile.sites.values():
                assert type(traffic.loads) is int
                assert type(traffic.stores) is int
                assert type(traffic.rmws) is int
                assert type(traffic.total) is int

    def test_whole_rejects_fractional_counts(self):
        from repro.perf.profiler import _whole

        assert _whole(3.0) == 3
        assert _whole(7) == 7
        with pytest.raises(ValueError, match="non-integral"):
            _whole(2.5)


class TestPartialConversion:
    def _plan(self):
        from repro.algorithms.cc import ACCESS_PLAN

        return ACCESS_PLAN

    def test_partial_conversion_leaves_other_races(self):
        plan = remove_races_at(self._plan(), {"cc.label.jump_read"})
        remaining = {s.name for s in plan.racy_sites()}
        assert "cc.label.jump_read" not in remaining
        assert "cc.label.jump_write" in remaining

    def test_full_site_list_equals_remove_races(self):
        from repro.core.transform import remove_races

        plan = self._plan()
        names = {s.name for s in plan.racy_sites()}
        assert remove_races_at(plan, names) == remove_races(plan)

    def test_unknown_site_rejected(self):
        with pytest.raises(StudyError):
            remove_races_at(self._plan(), {"cc.nope"})

    def test_detector_still_finds_untouched_races(self, tiny_graph):
        """Failure injection: convert only the reads; the write races
        must still be reported."""
        from repro.algorithms import cc
        from repro.core.transform import site_kind
        from repro.core.variants import Variant
        from repro.gpu.interleave import RandomScheduler
        from repro.gpu.racecheck import RaceDetector

        partial = remove_races_at(self._plan(), {"cc.label.jump_read"})
        # run the baseline kernels but with the partially converted
        # plan's kinds, by monkeypatching the module plan
        original = cc.ACCESS_PLAN
        try:
            cc.ACCESS_PLAN = partial
            _, ex = cc.run_simt(tiny_graph, Variant.BASELINE,
                                scheduler=RandomScheduler(3))
        finally:
            cc.ACCESS_PLAN = original
        reports = RaceDetector().check(ex)
        assert reports, "partially converted CC must still race"
        assert any(r.first.is_write or r.second.is_write for r in reports)

    def test_partial_perf_between_extremes(self):
        """A partial conversion's runtime lies between baseline and
        fully race-free (monotone migration cost)."""
        from repro.algorithms import cc as cc_mod
        from repro.graphs import generators as gen
        from repro.gpu.timing import TimingModel

        graph = gen.preferential_attachment(400, 3, seed=11)
        device = get_device("titanv")
        plan = self._plan()
        partial = remove_races_at(plan, {"cc.label.jump_read"})

        def run_with(p, variant):
            rec = ProfilingRecorder(p, variant, device)
            cc_mod.run_perf(graph, rec, 7)
            return TimingModel(device).estimate_ms(rec.stats)

        base_ms = run_with(plan, Variant.BASELINE)
        partial_ms = run_with(partial, Variant.BASELINE)
        free_ms = run_with(plan, Variant.RACE_FREE)
        assert base_ms < partial_ms < free_ms
