"""Tests for saving/loading study results (the artifact's raw logs)."""

from __future__ import annotations

import doctest

import pytest

from repro import Study, Variant
from repro.errors import StudyError
from repro.graphs import generators as gen


@pytest.fixture
def populated_study():
    study = Study(reps=2)
    g = gen.random_uniform(80, 3.0, seed=4, name="persist80")
    study.run("cc", g, "titanv", Variant.BASELINE)
    study.run("cc", g, "titanv", Variant.RACE_FREE)
    return study, g


class TestPersistence:
    def test_roundtrip(self, populated_study, tmp_path):
        study, g = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)

        fresh = Study(reps=2)
        assert fresh.load_results(path) == 2
        # the speedup can now be computed without re-simulation
        cell = fresh.speedup("cc", g, "titanv")
        reference = study.speedup("cc", g, "titanv")
        assert cell.speedup == reference.speedup

    def test_loaded_runs_have_no_outputs(self, populated_study, tmp_path):
        study, g = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        fresh = Study(reps=2)
        fresh.load_results(path)
        result = fresh.run("cc", g, "titanv", Variant.BASELINE)
        assert result.last_run is None

    def test_mismatched_protocol_rejected(self, populated_study, tmp_path):
        study, _ = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        with pytest.raises(StudyError):
            Study(reps=9).load_results(path)

    def test_unloaded_configs_still_run(self, populated_study, tmp_path):
        study, g = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        fresh = Study(reps=2)
        fresh.load_results(path)
        # a config not in the log simulates normally
        result = fresh.run("gc", g, "titanv", Variant.BASELINE)
        assert result.last_run is not None


class TestDoctests:
    def test_bitops_doctests(self):
        import repro.utils.bitops as bitops

        failures = doctest.testmod(bitops).failed
        assert failures == 0
