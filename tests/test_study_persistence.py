"""Tests for saving/loading study results (the artifact's raw logs)."""

from __future__ import annotations

import doctest

import pytest

from repro import Study, Variant
from repro.errors import StudyError
from repro.graphs import generators as gen


@pytest.fixture
def populated_study():
    study = Study(reps=2)
    g = gen.random_uniform(80, 3.0, seed=4, name="persist80")
    study.run("cc", g, "titanv", Variant.BASELINE)
    study.run("cc", g, "titanv", Variant.RACE_FREE)
    return study, g


class TestPersistence:
    def test_roundtrip(self, populated_study, tmp_path):
        study, g = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)

        fresh = Study(reps=2)
        assert fresh.load_results(path) == 2
        # the speedup can now be computed without re-simulation
        cell = fresh.speedup("cc", g, "titanv")
        reference = study.speedup("cc", g, "titanv")
        assert cell.speedup == reference.speedup

    def test_loaded_runs_have_no_outputs(self, populated_study, tmp_path):
        study, g = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        fresh = Study(reps=2)
        fresh.load_results(path)
        result = fresh.run("cc", g, "titanv", Variant.BASELINE)
        assert result.last_run is None

    def test_mismatched_protocol_rejected(self, populated_study, tmp_path):
        study, _ = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        with pytest.raises(StudyError):
            Study(reps=9).load_results(path)

    def test_unloaded_configs_still_run(self, populated_study, tmp_path):
        study, g = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        fresh = Study(reps=2)
        fresh.load_results(path)
        # a config not in the log simulates normally
        result = fresh.run("gc", g, "titanv", Variant.BASELINE)
        assert result.last_run is not None


class TestRobustPersistence:
    def test_corrupt_file_raises_study_error(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('{"reps": 2, "scale": 1.0, "resul')  # truncated
        with pytest.raises(StudyError, match="corrupt or partial"):
            Study(reps=2).load_results(path)

    def test_wrong_shape_raises_study_error(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('[1, 2, 3]')
        with pytest.raises(StudyError, match="not a study results file"):
            Study(reps=2).load_results(path)

    def test_malformed_record_raises_study_error(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(
            '{"reps": 2, "scale": 1.0, "results": [{"algorithm": "cc"}]}')
        with pytest.raises(StudyError, match="malformed record"):
            Study(reps=2).load_results(path)

    def test_save_is_atomic_no_temp_left_behind(self, populated_study,
                                                tmp_path):
        study, _ = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        study.save_results(path)  # overwrite goes through a fresh temp
        assert [p.name for p in tmp_path.iterdir()] == ["results.json"]

    def test_save_failure_leaves_old_file_intact(self, populated_study,
                                                 tmp_path, monkeypatch):
        import os

        study, _ = populated_study
        path = tmp_path / "results.json"
        study.save_results(path)
        before = path.read_text()

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            study.save_results(path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["results.json"]


class TestMemoKeyIntegrity:
    def test_name_clash_with_different_content_rejected(self):
        study = Study(reps=1)
        g1 = gen.random_uniform(40, 3.0, seed=1, name="clash")
        g2 = gen.random_uniform(40, 3.0, seed=2, name="clash")
        study.run("cc", g1, "titanv", Variant.BASELINE)
        with pytest.raises(StudyError, match="already used"):
            study.run("cc", g2, "titanv", Variant.BASELINE)

    def test_same_graph_reused_is_fine(self):
        study = Study(reps=1)
        g = gen.random_uniform(40, 3.0, seed=1, name="samename")
        a = study.run("cc", g, "titanv", Variant.BASELINE)
        b = study.run("cc", g, "titanv", Variant.BASELINE)
        assert a is b

    def test_graph_shadowing_suite_input_rejected(self):
        study = Study(reps=1)
        study.run("cc", "internet", "titanv", Variant.BASELINE)
        fake = gen.random_uniform(40, 3.0, seed=9, name="internet")
        with pytest.raises(StudyError, match="already used"):
            study.run("cc", fake, "titanv", Variant.BASELINE)

    def test_every_rep_validated(self, monkeypatch):
        # corrupt only the FIRST repetition: with per-rep validation the
        # study must notice even though the last rep is clean
        import repro.core.study as study_mod
        from repro.errors import ValidationError

        real = study_mod.run_algorithm
        calls = {"n": 0}

        def sabotage_first_rep(algo, graph, spec, variant, seed=0,
                               faults=None, **kwargs):
            run = real(algo, graph, spec, variant, seed=seed,
                       faults=faults, **kwargs)
            calls["n"] += 1
            if calls["n"] == 1:
                # give every vertex its own label: any edge now joins
                # two "different" components, which cannot validate
                labels = run.output["labels"]
                labels[:] = range(len(labels))
            return run

        monkeypatch.setattr(study_mod, "run_algorithm",
                            sabotage_first_rep)
        study = Study(reps=3, validate=True)
        with pytest.raises(ValidationError):
            study.run("cc", "internet", "titanv", Variant.BASELINE)
        assert calls["n"] == 1  # caught immediately, not at the end


class TestDoctests:
    def test_bitops_doctests(self):
        import repro.utils.bitops as bitops

        failures = doctest.testmod(bitops).failed
        assert failures == 0
