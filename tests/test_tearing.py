"""Word-tearing scenarios: the paper's Fig. 1, executed for real.

A shared ``long val = -1``; four threads demonstrate the failure modes
of Section II.A:

* T1 stores 0 with a plain (non-atomic) 64-bit store — two 32-bit
  pieces other threads can observe half-done.
* T2 plainly reads ``val`` and can see chimera values.
* T3 atomically adds 6; interleaving with T1's tearing can produce the
  paper's 0x0000000100000000.
* T4 polls ``val`` with plain loads; register caching turns it into an
  infinite loop (tested in test_simt.py).
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.atomics import atomic_add, atomic_read, atomic_write
from repro.gpu.interleave import AdversarialScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor
from repro.utils.bitops import to_signed


def run_many(kernel, n_threads, seeds, alloc):
    """Run a kernel under many adversarial schedules; yield final memory."""
    for seed in seeds:
        mem = GlobalMemory()
        handles = alloc(mem)
        ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                          record_events=False)
        ex.launch(kernel, n_threads, *handles)
        yield mem, handles


class TestT1T2Chimera:
    def test_plain_64bit_store_can_tear(self):
        """T2 may observe a half-written chimera of -1 and 0."""
        observed = set()

        def kernel(ctx, val):
            if ctx.tid == 0:
                yield ctx.store(val, 0, 0, AccessKind.PLAIN)
            else:
                v = yield ctx.load(val, 0, AccessKind.PLAIN)
                observed.add(v)

        for _mem, _h in run_many(kernel, 2, range(300),
                                 lambda m: (m.alloc("val", 1, DType.I64,
                                                    fill=-1),)):
            pass
        chimera1 = to_signed(0xFFFFFFFF00000000, 64)
        chimera2 = 0x00000000FFFFFFFF
        assert observed - {-1, 0}, "tearing never observed in 300 schedules"
        assert observed <= {-1, 0, chimera1, chimera2}

    def test_paper_exact_chimera_value(self):
        """Storing the halves high-first yields 0x00000000ffffffff mid-way."""
        observed = set()

        def kernel(ctx, val):
            if ctx.tid == 0:
                # a compiler may emit the two 32-bit stores in either
                # order; this models high-half-first
                yield ctx.store_span(val.subspan(0, 4, 4), 0,
                                     AccessKind.PLAIN)
                yield ctx.store_span(val.subspan(0, 0, 4), 0,
                                     AccessKind.PLAIN)
            else:
                v = yield ctx.load(val, 0, AccessKind.PLAIN)
                observed.add(v)

        for _ in run_many(kernel, 2, range(200),
                          lambda m: (m.alloc("val", 1, DType.I64,
                                             fill=-1),)):
            pass
        assert 0x00000000FFFFFFFF in observed

    def test_atomic_store_never_tears(self):
        observed = set()

        def kernel(ctx, val):
            if ctx.tid == 0:
                yield from atomic_write(ctx, val, 0, 0)
            else:
                v = yield from atomic_read(ctx, val, 0)
                observed.add(v)

        for _ in run_many(kernel, 2, range(300),
                          lambda m: (m.alloc("val", 1, DType.I64,
                                             fill=-1),)):
            pass
        assert observed <= {-1, 0}


class TestT1T3AtomicAdd:
    def test_final_values_with_tearing(self):
        """T1 (plain, high-first) vs T3 (atomicAdd 6): the three paper
        outcomes are 6, 0, and the nonsensical 0x0000000100000000."""
        finals = set()

        def kernel(ctx, val):
            if ctx.tid == 0:
                yield ctx.store_span(val.subspan(0, 4, 4), 0,
                                     AccessKind.PLAIN)
                yield ctx.store_span(val.subspan(0, 0, 4), 0,
                                     AccessKind.PLAIN)
            else:
                yield from atomic_add(ctx, val, 0, 6)

        for mem, (val,) in run_many(kernel, 2, range(400),
                                    lambda m: (m.alloc("val", 1, DType.I64,
                                                       fill=-1),)):
            finals.add(mem.element_read(val, 0))
        assert 6 in finals          # T1 fully before T3
        assert 0x0000000100000000 in finals  # the paper's chimera
        assert finals <= {6, 0, 0x0000000100000000, 5}

    def test_atomic_t1_yields_only_clean_outcomes(self):
        finals = set()

        def kernel(ctx, val):
            if ctx.tid == 0:
                yield from atomic_write(ctx, val, 0, 0)
            else:
                yield from atomic_add(ctx, val, 0, 6)

        for mem, (val,) in run_many(kernel, 2, range(200),
                                    lambda m: (m.alloc("val", 1, DType.I64,
                                                       fill=-1),)):
            finals.add(mem.element_read(val, 0))
        assert finals <= {6, 0}
        assert finals == {6, 0}  # both orders occur across schedules


class TestRMWIndivisibility:
    def test_concurrent_adds_never_lose_updates(self):
        def kernel(ctx, val):
            yield from atomic_add(ctx, val, 0, 1)

        for mem, (val,) in run_many(kernel, 16, range(25),
                                    lambda m: (m.alloc("val", 1, DType.I64,
                                                       fill=0),)):
            assert mem.element_read(val, 0) == 16

    def test_plain_increments_do_lose_updates(self):
        lost = False

        def kernel(ctx, val):
            v = yield ctx.load(val, 0, AccessKind.VOLATILE)
            yield ctx.store(val, 0, v + 1, AccessKind.VOLATILE)

        for mem, (val,) in run_many(kernel, 16, range(25),
                                    lambda m: (m.alloc("val", 1, DType.I64,
                                                       fill=0),)):
            if mem.element_read(val, 0) < 16:
                lost = True
        assert lost, "racy read-modify-write never lost an update"
