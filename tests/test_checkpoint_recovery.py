"""Tests for self-healing checkpoints (repro.core.resilience, format 3)
and graceful sweep interruption.

Covers the ``.prev`` generation rotation (including verify-before-
rotate), the fallback ladder of ``load_checkpoint`` under torn /
bit-flipped / wrong-format current generations, record-level salvage,
the all-or-nothing ``load_results`` commit, autosave tolerance of a
full disk, the double-crash resume drill, and SIGINT-to-
``SweepInterrupted`` conversion with a consistent final checkpoint.
"""

from __future__ import annotations

import json
import os
import shutil
import signal

import pytest

from repro.core import hostfaults
from repro.core.hostfaults import HostFaultPlan
from repro.core.resilience import (
    CHECKPOINT_FORMAT,
    ResilientStudy,
    checkpoint_crc,
)
from repro.errors import StudyError, SweepInterrupted

DEVICE = "titanv"
INPUT = "internet"
ALGOS = ["cc", "mis"]


@pytest.fixture(scope="module")
def seeded_checkpoint(tmp_path_factory):
    """A completed single-algorithm checkpointed sweep: the current
    generation (2 results) plus its rotated ``.prev`` (1 result)."""
    root = tmp_path_factory.mktemp("ckpt-seed")
    ckpt = root / "sweep.ckpt"
    study = ResilientStudy(reps=1, checkpoint=ckpt)
    result = study.sweep(DEVICE, ["cc"], [INPUT])
    assert not result.failures
    return ckpt


@pytest.fixture(scope="module")
def clean_results_bytes(tmp_path_factory):
    """``save_results`` bytes of an uninjected full mini-sweep — the
    truth every recovery path must reproduce exactly."""
    root = tmp_path_factory.mktemp("clean")
    study = ResilientStudy(reps=1)
    result = study.sweep(DEVICE, ALGOS, [INPUT])
    assert not result.failures
    out = root / "results.json"
    study.save_results(out)
    return out.read_bytes()


def _copied(src, tmp_path):
    """Copy the seeded generation pair into a per-test directory."""
    dst = tmp_path / src.name
    shutil.copy(src, dst)
    prev = src.with_name(src.name + ".prev")
    if prev.exists():
        shutil.copy(prev, dst.with_name(dst.name + ".prev"))
    return dst


def _truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


class TestGenerationRotation:
    def test_prev_generation_exists_and_verifies(self, seeded_checkpoint):
        prev = seeded_checkpoint.with_name(
            seeded_checkpoint.name + ".prev")
        assert prev.exists()
        current = json.loads(seeded_checkpoint.read_text())
        older = json.loads(prev.read_text())
        assert current["format"] == CHECKPOINT_FORMAT
        assert current["crc"] == checkpoint_crc(current)
        assert older["crc"] == checkpoint_crc(older)
        # the rotation lags the current file by exactly one cell
        assert len(older["results"]) == len(current["results"]) - 1

    def test_corrupt_current_is_never_rotated_over_a_good_prev(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        prev = ckpt.with_name(ckpt.name + ".prev")
        good_prev = prev.read_bytes()
        _truncate(ckpt)

        study = ResilientStudy(reps=1, checkpoint=ckpt)
        study.load_checkpoint()          # falls back to .prev
        study.save_checkpoint()          # must not rotate the torn file
        assert prev.read_bytes() == good_prev
        fresh = ResilientStudy(reps=1, checkpoint=ckpt)
        assert fresh.load_checkpoint() == (1, 0)
        assert fresh.checkpoint_fallbacks == 0


class TestFallbackLadder:
    def test_clean_load_uses_the_current_generation(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        assert study.load_checkpoint() == (2, 0)
        assert study.checkpoint_fallbacks == 0

    def test_truncated_current_falls_back_to_prev(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        _truncate(ckpt)
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        assert study.load_checkpoint() == (1, 0)
        assert study.checkpoint_fallbacks == 1

    def test_bitflipped_current_fails_checksum_and_falls_back(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        text = ckpt.read_text()
        assert '"variant": "baseline"' in text
        ckpt.write_text(text.replace('"variant": "baseline"',
                                     '"variant": "baselinf"', 1))
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        assert study.load_checkpoint() == (1, 0)
        assert study.checkpoint_fallbacks == 1

    def test_unknown_format_falls_back(self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        payload = json.loads(ckpt.read_text())
        payload["format"] = 99
        ckpt.write_text(json.dumps(payload))
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        assert study.load_checkpoint() == (1, 0)
        assert study.checkpoint_fallbacks == 1

    def test_format_2_without_crc_still_loads(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        payload = json.loads(ckpt.read_text())
        payload["format"] = 2
        del payload["crc"]
        ckpt.write_text(json.dumps(payload))
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        assert study.load_checkpoint() == (2, 0)
        assert study.checkpoint_fallbacks == 0

    def test_both_generations_damaged_raises(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        _truncate(ckpt)
        _truncate(ckpt.with_name(ckpt.name + ".prev"))
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        with pytest.raises(StudyError, match="corrupt or partial"):
            study.load_checkpoint()

    def test_corrupt_current_without_prev_raises(
            self, seeded_checkpoint, tmp_path):
        ckpt = tmp_path / seeded_checkpoint.name
        shutil.copy(seeded_checkpoint, ckpt)  # no .prev copied
        _truncate(ckpt)
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        with pytest.raises(StudyError, match="corrupt or partial"):
            study.load_checkpoint()

    def test_reps_mismatch_surfaces_instead_of_falling_back(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        study = ResilientStudy(reps=2, checkpoint=ckpt)
        with pytest.raises(StudyError, match="different reps/scale"):
            study.load_checkpoint()
        assert study.checkpoint_fallbacks == 0


class TestSalvage:
    def test_malformed_records_are_skipped_and_counted(
            self, seeded_checkpoint, tmp_path):
        ckpt = _copied(seeded_checkpoint, tmp_path)
        payload = json.loads(ckpt.read_text())
        payload["results"].append({"algorithm": "cc"})  # no runtimes
        payload["failures"].append({"not": "a failure record"})
        payload["crc"] = checkpoint_crc(payload)
        ckpt.write_text(json.dumps(payload))
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        assert study.load_checkpoint() == (2, 0)
        assert study.checkpoint_salvaged == 2
        assert study.checkpoint_fallbacks == 0

    def test_load_results_commit_is_all_or_nothing(self, tmp_path):
        study = ResilientStudy(reps=1)
        good = {"algorithm": "cc", "input": INPUT, "device": DEVICE,
                "variant": "baseline", "runtimes_ms": [1.0]}
        out = tmp_path / "results.json"
        out.write_text(json.dumps({
            "reps": 1, "scale": 1.0,
            "results": [good, {"algorithm": "cc"}]}))
        with pytest.raises(StudyError, match="malformed record"):
            study.load_results(out)
        # the parseable record before the malformed one was NOT kept
        assert study._results == {}


class TestAutosaveUnderDiskFailure:
    def test_full_disk_does_not_kill_the_sweep(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        plan = HostFaultPlan.parse("enospc=1.0", targets=("*.ckpt",))
        study = ResilientStudy(reps=1, checkpoint=ckpt)
        with hostfaults.installed(plan):
            result = study.sweep(DEVICE, ["cc"], [INPUT])
        assert not result.failures
        assert result.coverage[0] == result.coverage[1]
        assert study.checkpoint_write_errors == 2  # one per cell
        assert not ckpt.exists()
        # the disk coming back makes the next autosave stick
        study._autosave()
        assert ckpt.exists()


class TestCrashResumeDrills:
    def test_double_crash_resume_reaches_identical_results(
            self, tmp_path, clean_results_bytes):
        ckpt = tmp_path / "sweep.ckpt"
        first = ResilientStudy(reps=1, checkpoint=ckpt)
        first.sweep(DEVICE, ["cc"], [INPUT])
        _truncate(ckpt)  # crash #1 tore the current generation

        second = ResilientStudy(reps=1, checkpoint=ckpt)
        second.load_checkpoint()
        assert second.checkpoint_fallbacks == 1
        second.sweep(DEVICE, ALGOS, [INPUT])
        _truncate(ckpt)  # crash #2

        third = ResilientStudy(reps=1, checkpoint=ckpt)
        n_res, n_fail = third.load_checkpoint()
        assert third.checkpoint_fallbacks == 1 and n_fail == 0
        result = third.sweep(DEVICE, ALGOS, [INPUT])
        assert not result.failures
        # only the cell the rotation lagged behind on was re-executed
        assert third.cells_executed == 4 - n_res
        out = tmp_path / "results.json"
        third.save_results(out)
        assert out.read_bytes() == clean_results_bytes


class _InterruptAfter(ResilientStudy):
    """Sends itself SIGINT after the N-th completed cell — a
    deterministic stand-in for an operator's Ctrl-C mid-sweep."""

    interrupt_after = 2

    def run_cell(self, *args, **kwargs):
        out = super().run_cell(*args, **kwargs)
        self._seen = getattr(self, "_seen", 0) + 1
        if self._seen == self.interrupt_after:
            os.kill(os.getpid(), signal.SIGINT)
        return out


class TestGracefulInterrupt:
    def test_sigint_checkpoints_and_resume_completes(
            self, tmp_path, clean_results_bytes):
        ckpt = tmp_path / "sweep.ckpt"
        before = signal.getsignal(signal.SIGINT)
        study = _InterruptAfter(reps=1, checkpoint=ckpt)
        with pytest.raises(SweepInterrupted, match="--resume"):
            study.sweep(DEVICE, ALGOS, [INPUT])
        # the pre-sweep handler is restored once the sweep unwinds
        assert signal.getsignal(signal.SIGINT) is before

        resumed = ResilientStudy(reps=1, checkpoint=ckpt)
        assert resumed.load_checkpoint() == (2, 0)
        result = resumed.sweep(DEVICE, ALGOS, [INPUT])
        assert not result.failures
        assert resumed.cells_executed == 2  # only the missing cells
        out = tmp_path / "results.json"
        resumed.save_results(out)
        assert out.read_bytes() == clean_results_bytes
