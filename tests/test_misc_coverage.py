"""Additional coverage for corners of the public surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DataRaceError,
    DeviceError,
    GraphError,
    KernelError,
    ReproError,
    StudyError,
    ValidationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, DeviceError, KernelError, DataRaceError,
        ValidationError, StudyError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestScaleBits:
    def test_scale_exponents(self):
        from repro.graphs.suite import _scale_bits

        assert _scale_bits(1.0) == 0
        assert _scale_bits(2.0) == 1
        assert _scale_bits(4.0) == 2
        assert _scale_bits(0.5) == -1
        assert _scale_bits(0.01) == -4  # floor


class TestMemoryFill:
    def test_fill_int2(self):
        from repro.gpu.accesses import DType
        from repro.gpu.memory import GlobalMemory, pack_int2

        mem = GlobalMemory()
        h = mem.alloc("pm", 3, DType.INT2)
        mem.fill(h, pack_int2(-1, 7))
        for i in range(3):
            assert mem.element_read(h, i) == pack_int2(-1, 7)

    def test_fill_negative_i32(self):
        from repro.gpu.accesses import DType
        from repro.gpu.memory import GlobalMemory

        mem = GlobalMemory()
        h = mem.alloc("a", 4, DType.I32)
        mem.fill(h, -1)
        assert np.array_equal(mem.download(h), [-1, -1, -1, -1])


class TestSchedulerReset:
    def test_round_robin_resets_between_launches(self):
        from repro.gpu.interleave import RoundRobinScheduler

        sched = RoundRobinScheduler()
        assert sched.choose([0, 1]) == 0
        assert sched.choose([0, 1]) == 1
        sched.reset()
        assert sched.choose([0, 1]) == 0

    def test_adversarial_reset_clears_last(self):
        from repro.gpu.interleave import AdversarialScheduler

        sched = AdversarialScheduler(0, stickiness=0.0)
        first = sched.choose([0, 1, 2])
        second = sched.choose([0, 1, 2])
        assert second != first  # zero stickiness: always switch
        sched.reset()
        assert sched.choose([first]) == first


class TestRaceReportOrdering:
    def test_ordered_helper(self):
        from repro.gpu.accesses import AccessKind, MemSpan
        from repro.gpu.racecheck import _conflict, _ordered
        from repro.gpu.simt import AccessEvent

        def ev(tid, launch=0, block=0, epoch=0, write=True):
            return AccessEvent(step=0, launch=launch, tid=tid,
                               block=block, epoch=epoch,
                               span=MemSpan("a", 0, 4), is_read=not write,
                               is_write=write,
                               access=AccessKind.PLAIN, value=0)

        assert _ordered(ev(0, launch=0), ev(1, launch=1))
        assert _ordered(ev(0, epoch=0), ev(1, epoch=1))
        assert not _ordered(ev(0, block=0, epoch=0),
                            ev(1, block=1, epoch=1))
        assert _conflict(ev(0), ev(1))
        assert not _conflict(ev(0), ev(0))


class TestVariantEnum:
    def test_values(self):
        from repro.core.variants import Variant

        assert Variant.BASELINE.value == "baseline"
        assert Variant.RACE_FREE.value == "racefree"

    def test_double_registration_rejected(self):
        from repro.core.variants import (
            AlgorithmInfo,
            get_algorithm,
            register_algorithm,
        )

        info = get_algorithm("cc")
        clone = AlgorithmInfo(
            key="cc", full_name="dup", directed=False, needs_weights=False,
            has_races=True, perf_runner=info.perf_runner,
            module=info.module)
        with pytest.raises(StudyError):
            register_algorithm(clone)


class TestAccessKindProps:
    def test_is_atomic(self):
        from repro.gpu.accesses import AccessKind

        assert AccessKind.ATOMIC.is_atomic
        assert not AccessKind.PLAIN.is_atomic
        assert not AccessKind.VOLATILE.is_atomic

    def test_dtype_widths(self):
        from repro.gpu.accesses import DType

        assert DType.U8.width_bytes == 1
        assert DType.I32.width_bytes == 4
        assert DType.INT2.width_bytes == 8
        assert DType.INT2.words() == 2
        assert DType.I32.words() == 1


class TestStudyInputHandling:
    def test_csr_graph_passed_directly(self):
        from repro import Study, Variant
        from repro.graphs import generators as gen

        g = gen.random_uniform(60, 3.0, seed=2, name="direct60")
        result = Study(reps=1).run("cc", g, "titanv", Variant.BASELINE)
        assert result.input_name == "direct60"

    def test_validation_catches_wrong_results(self, monkeypatch):
        """Wire a corrupted runner through the study's validate path."""
        from repro import Study, Variant
        from repro.core import variants as variants_mod
        from repro.graphs import generators as gen

        real = variants_mod.get_algorithm("cc")

        def corrupted(graph, recorder, seed=0):
            out = real.perf_runner(graph, recorder, seed)
            out["labels"] = np.zeros_like(out["labels"])
            return out

        import dataclasses

        fake = dataclasses.replace(real, perf_runner=corrupted)
        monkeypatch.setattr(variants_mod, "_REGISTRY",
                            {**variants_mod._REGISTRY, "cc": fake})
        g = gen.random_uniform(40, 2.0, seed=3, name="corrupt40")
        with pytest.raises(ValidationError):
            Study(reps=1, validate=True).run("cc", g, "titanv",
                                             Variant.BASELINE)
