"""Tests for the warp-lockstep execution mode (pre-Volta semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import cc, gc, mis, verify
from repro.core.variants import Variant
from repro.errors import KernelError
from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor


class TestLockstepBasics:
    def test_invalid_warp_size(self):
        with pytest.raises(KernelError):
            SimtExecutor(GlobalMemory(), warp_lockstep=True, warp_size=0)

    def test_all_work_completes(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, warp_lockstep=True, warp_size=4)
        ctr = mem.alloc("c", 1, DType.I32)

        def kernel(ctx, ctr):
            yield ctx.atomic_rmw(ctr, 0, RMWOp.ADD, 1)

        ex.launch(kernel, 19, ctr)  # a non-multiple of the warp size
        assert mem.element_read(ctr, 0) == 19

    def test_lanes_advance_in_order(self):
        """Within a warp, lane 0 executes its k-th op before lane 1."""
        mem = GlobalMemory()
        ex = SimtExecutor(mem, warp_lockstep=True, warp_size=8)
        log = mem.alloc("log", 16, DType.I32)
        slot = mem.alloc("slot", 1, DType.I32)

        def kernel(ctx, log, slot):
            pos = yield ctx.atomic_rmw(slot, 0, RMWOp.ADD, 1)
            yield ctx.store(log, pos, ctx.tid)

        ex.launch(kernel, 8, log, slot)
        order = mem.download(log)[:8]
        assert np.array_equal(order, np.arange(8))

    def test_deterministic(self):
        """Lockstep + round-robin warp choice has no randomness."""

        def run():
            mem = GlobalMemory()
            ex = SimtExecutor(mem, warp_lockstep=True, warp_size=4,
                              record_events=False)
            arr = mem.alloc("a", 8, DType.I32)

            def kernel(ctx, arr):
                v = yield ctx.load(arr, (ctx.tid + 1) % 8,
                                   AccessKind.VOLATILE)
                yield ctx.store(arr, ctx.tid, v + ctx.tid,
                                AccessKind.VOLATILE)

            ex.launch(kernel, 8, arr)
            return mem.download(arr).tolist()

        assert run() == run()

    def test_barriers_work_in_lockstep(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, warp_lockstep=True, warp_size=4)
        arr = mem.alloc("a", 4, DType.I32)
        out = mem.alloc("b", 4, DType.I32)

        def kernel(ctx, arr, out):
            yield ctx.store(arr, ctx.tid, ctx.tid + 1)
            yield ctx.barrier()
            v = yield ctx.load(arr, (ctx.tid + 1) % 4)
            yield ctx.store(out, ctx.tid, v)

        ex.launch(kernel, 4, arr, out, block_dim=4)
        assert np.array_equal(mem.download(out), [2, 3, 4, 1])


class TestLockstepAlgorithms:
    """Race-free codes must be schedule-independent — including under
    warp-lockstep execution."""

    def _executor(self):
        return SimtExecutor(GlobalMemory(), warp_lockstep=True, warp_size=8)

    def test_cc(self, tiny_graph):
        labels, _ = cc.run_simt(tiny_graph, Variant.RACE_FREE,
                                executor=self._executor())
        verify.check_components(tiny_graph, labels)

    def test_gc(self, tiny_graph):
        colors, _ = gc.run_simt(tiny_graph, Variant.RACE_FREE,
                                executor=self._executor())
        verify.check_coloring(tiny_graph, colors)

    def test_mis(self, tiny_graph):
        in_set, _ = mis.run_simt(tiny_graph, Variant.RACE_FREE,
                                 executor=self._executor())
        verify.check_mis(tiny_graph, in_set)

    def test_baseline_results_still_valid_in_lockstep(self, tiny_graph):
        """The 'benign' races stay benign under lockstep too."""
        labels, _ = cc.run_simt(tiny_graph, Variant.BASELINE,
                                executor=self._executor())
        verify.check_components(tiny_graph, labels)
