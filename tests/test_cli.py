"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_algo_and_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algo", "cc"])

    def test_defaults(self):
        args = build_parser().parse_args(
            ["run", "--algo", "cc", "--input", "internet"])
        assert args.device == "titanv"
        assert args.reps == 9


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "titanv" in out
        assert "mis" in out
        assert "amazon0601" in out
        assert "wikipedia" in out

    def test_run_racy_algorithm(self, capsys):
        rc = main(["run", "--algo", "mis", "--input", "internet",
                   "--reps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "race-free" in out
        assert "speedup" in out

    def test_run_apsp_reports_no_races(self, capsys):
        rc = main(["run", "--algo", "apsp", "--input", "internet",
                   "--reps", "1"])
        assert rc == 0
        assert "no races" in capsys.readouterr().out

    def test_run_with_validation(self, capsys):
        rc = main(["run", "--algo", "cc", "--input", "internet",
                   "--reps", "1", "--validate"])
        assert rc == 0

    def test_races_racy_code(self, capsys):
        rc = main(["races", "--algo", "gc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gc baseline:" in out
        assert "no data races detected" in out  # the race-free line

    def test_races_apsp(self, capsys):
        rc = main(["races", "--algo", "apsp"])
        assert rc == 0
        assert "no data races" in capsys.readouterr().out

    def test_table_scc(self, capsys):
        rc = main(["table", "--device", "2070super", "--algo", "scc",
                   "--reps", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out
        assert "Geomean Speedup" in out

    def test_litmus_subset(self, capsys):
        rc = main(["litmus", "--test", "MP", "--model", "sc,relaxed_gpu"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "message passing" in out
        assert "2 ok, 0 failed" in out

    def test_litmus_unknown_test_exits_2(self, capsys):
        rc = main(["litmus", "--test", "nosuch"])
        assert rc == 2
        assert "unknown litmus test" in capsys.readouterr().err

    def test_litmus_unknown_model_exits_2(self, capsys):
        rc = main(["litmus", "--model", "nosuch"])
        assert rc == 2
        assert "unknown memory model" in capsys.readouterr().err

    def test_run_with_memory_model(self, capsys):
        rc = main(["run", "--algo", "mis", "--input", "internet",
                   "--reps", "1", "--memory-model", "ptx:acq_rel"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory model: PTX scoped" in out
        assert "speedup" in out


class TestErrorHandling:
    def test_repro_error_exits_2_with_one_line(self, capsys):
        rc = main(["run", "--algo", "nosuch", "--input", "internet",
                   "--reps", "1"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_bad_input_name_exits_2(self, capsys):
        rc = main(["run", "--algo", "cc", "--input", "nosuchgraph",
                   "--reps", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_fault_spec_exits_2(self, capsys):
        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--inject", "teleport=1"])
        assert rc == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_2(self, capsys):
        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--resume"])
        assert rc == 2
        assert "requires --checkpoint" in capsys.readouterr().err


class TestSweepCommand:
    def test_clean_sweep_full_coverage(self, capsys):
        rc = main(["sweep", "--inputs", "internet", "--reps", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "coverage: 4/4 cells completed" in out
        assert "Geomean Speedup" in out
        assert "cells executed this run: 8" in out

    def test_injected_sweep_records_failures(self, capsys):
        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--inject", "stuck=1.0", "--fault-seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        # cc's plain polling loop livelocks; the sweep still finishes
        assert "FAIL(livelock)" in out
        assert "coverage: 3/4 cells completed" in out
        assert "inject: stuck=1" in out

    def test_checkpoint_then_resume_executes_nothing(self, tmp_path,
                                                     capsys):
        ck = str(tmp_path / "sweep.json")
        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--checkpoint", ck])
        assert rc == 0
        assert "cells executed this run: 8" in capsys.readouterr().out

        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--checkpoint", ck, "--resume"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells executed this run: 0" in out
        assert "resumed 8 results" in out
        assert "coverage: 4/4 cells completed" in out


class TestTelemetryCommands:
    def test_sweep_telemetry_jsonl_export(self, tmp_path, capsys):
        from repro.telemetry.export import read_jsonl, validate_jsonl_lines
        from repro.telemetry.metrics import get_registry

        out = tmp_path / "tel.jsonl"
        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--telemetry", str(out)])
        assert rc == 0
        assert f"telemetry (jsonl) written to {out}" in \
            capsys.readouterr().out
        # the session is scoped to the command: no global leak
        assert not get_registry().enabled
        validate_jsonl_lines(out.read_text().splitlines())
        metrics, spans = read_jsonl(out)
        names = {rec["name"] for rec in metrics}
        assert "repro_l1_hit_rate" in names
        assert "repro_cells_total" in names
        assert any(s["name"] == "study.sweep" for s in spans)

    def test_sweep_telemetry_prom_export(self, tmp_path, capsys):
        from repro.telemetry.export import validate_prometheus_text

        out = tmp_path / "tel.prom"
        rc = main(["sweep", "--inputs", "internet", "--reps", "1",
                   "--telemetry", str(out),
                   "--metrics-format", "prom"])
        assert rc == 0
        text = out.read_text()
        assert validate_prometheus_text(text) > 0
        assert "# TYPE repro_accesses_total counter" in text

    def test_metrics_summarize(self, tmp_path, capsys):
        out = tmp_path / "tel.jsonl"
        assert main(["sweep", "--inputs", "internet", "--reps", "1",
                     "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["metrics", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "repro_l1_hit_rate" in text
        assert "sweep.cell" in text

    def test_trace_prune(self, tmp_path, capsys):
        from repro.core.study import Study

        cache_dir = tmp_path / "tc"
        study = Study(reps=1, trace_cache=str(cache_dir))
        study.speedup("cc", "internet", "titanv")
        assert list(cache_dir.glob("trace-*.json"))
        rc = main(["trace", "prune", "--dir", str(cache_dir),
                   "--max-bytes", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "freed" in out and "0 entries" in out
        assert not list(cache_dir.glob("trace-*.json"))
