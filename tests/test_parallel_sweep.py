"""Tests for the parallel sweep executor (repro.core.parallel).

The contract: a ``jobs > 1`` sweep produces byte-identical artifacts
(saved results, checkpoints, speedup cells) to the serial path — the
pool only changes wall-clock, never results.
"""

from __future__ import annotations

import pytest

from repro import ResilientStudy, Study
from repro.cli import main as cli_main
from repro.core.parallel import JOBS_ENV, resolve_jobs
from repro.core.study import SpeedupCell
from repro.errors import StudyError
from repro.gpu.faults import FaultPlan

ALGOS = ["cc", "mis"]
INPUTS = ["internet", "USA-road-d.NY"]
DEVICE = "titanv"


def _cells(cells):
    return [(c.algorithm, c.input_name, c.device_key, c.baseline_ms,
             c.racefree_ms) for c in cells if isinstance(c, SpeedupCell)]


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(StudyError):
            resolve_jobs()
        with pytest.raises(StudyError):
            resolve_jobs(0)


class TestParallelStudy:
    def test_speedup_table_byte_identical_to_serial(self, tmp_path):
        serial = Study(reps=2)
        cells_1 = serial.speedup_table(DEVICE, ALGOS, INPUTS, jobs=1)
        serial.save_results(tmp_path / "serial.json")

        parallel = Study(reps=2)
        cells_4 = parallel.speedup_table(DEVICE, ALGOS, INPUTS, jobs=4)
        parallel.save_results(tmp_path / "parallel.json")

        assert _cells(cells_1) == _cells(cells_4)
        assert (tmp_path / "serial.json").read_bytes() == \
            (tmp_path / "parallel.json").read_bytes()

    def test_parallel_fills_the_memo(self):
        study = Study(reps=1)
        study.speedup_table(DEVICE, ALGOS, INPUTS, jobs=2)
        # a second pass needs no pool: everything is memoized
        again = study.speedup_table(DEVICE, ALGOS, INPUTS, jobs=1)
        assert len(again) == len(ALGOS) * len(INPUTS)


class TestParallelResilientStudy:
    def test_sweep_and_checkpoint_identical_to_serial(self, tmp_path):
        serial = ResilientStudy(reps=2,
                                checkpoint=tmp_path / "serial.ckpt")
        s_cells = serial.sweep(DEVICE, ALGOS, INPUTS, jobs=1).cells

        parallel = ResilientStudy(reps=2,
                                  checkpoint=tmp_path / "parallel.ckpt")
        p_cells = parallel.sweep(DEVICE, ALGOS, INPUTS, jobs=2).cells

        assert _cells(s_cells) == _cells(p_cells)
        assert (tmp_path / "serial.ckpt").read_bytes() == \
            (tmp_path / "parallel.ckpt").read_bytes()
        assert parallel.cells_executed == serial.cells_executed

    def test_resume_executes_only_missing_cells(self, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        first = ResilientStudy(reps=1, checkpoint=ckpt)
        first.sweep(DEVICE, ALGOS, INPUTS, jobs=2)

        resumed = ResilientStudy(reps=1, checkpoint=ckpt)
        resumed.load_checkpoint()
        result = resumed.sweep(DEVICE, ALGOS, INPUTS, jobs=2)
        assert resumed.cells_executed == 0
        assert _cells(result.cells) == _cells(
            first.sweep(DEVICE, ALGOS, INPUTS).cells)

    def test_fault_plan_identical_to_serial(self, tmp_path):
        """Workers derive injected fault streams from the plan seed and
        the cell key, so injection commutes with parallelism."""
        faults = FaultPlan.parse("stall=1.0", seed=3)
        serial = ResilientStudy(reps=2, faults=faults)
        s = serial.sweep(DEVICE, ALGOS, INPUTS, jobs=1)
        parallel = ResilientStudy(reps=2, faults=faults)
        p = parallel.sweep(DEVICE, ALGOS, INPUTS, jobs=2)
        assert _cells(s.cells) == _cells(p.cells)
        serial.save_results(tmp_path / "s.json")
        parallel.save_results(tmp_path / "p.json")
        assert (tmp_path / "s.json").read_bytes() == \
            (tmp_path / "p.json").read_bytes()

    def test_shared_disk_traces_across_workers(self, tmp_path):
        """Pool workers share one on-disk trace directory, so a second
        parallel study replays instead of re-recording."""
        trace_dir = tmp_path / "traces"
        first = ResilientStudy(reps=1, trace_cache=trace_dir)
        cells_a = first.sweep(DEVICE, ALGOS, INPUTS, jobs=2).cells
        assert any(trace_dir.glob("trace-*.json"))

        second = ResilientStudy(reps=1, trace_cache=trace_dir)
        cells_b = second.sweep(DEVICE, ALGOS, INPUTS, jobs=2).cells
        assert _cells(cells_a) == _cells(cells_b)


def test_cli_sweep_jobs_smoke(capsys):
    rc = cli_main(["sweep", "--device", DEVICE, "--inputs", "internet",
                   "--reps", "1", "--jobs", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Resilient speedups" in out
