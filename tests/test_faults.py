"""Tests for the fault-injection subsystem (repro.gpu.faults).

Covers the spec parser, injector determinism, the memory-level store
and load faults (including exact torn-write chimeras), SIMT-level
aborts and stalls, the no-op guarantee of ``faults=None``, and the
exposure asymmetry at the performance level: injected data corruption
hits only the racy baselines, never the all-atomic race-free variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import verify
from repro.core.transform import plan_for
from repro.core.variants import Variant, get_algorithm
from repro.errors import (
    DeadlockError,
    FaultConfigError,
    TransientKernelFault,
    ValidationError,
)
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.device import get_device
from repro.gpu.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor
from repro.perf.engine import algorithm_plan, run_algorithm


class TestFaultPlanParsing:
    def test_parse_rates_and_bare_kinds(self):
        plan = FaultPlan.parse("tear=0.3, stuck=0.1,abort", seed=9)
        assert plan.rate(FaultKind.TORN_WRITE) == 0.3
        assert plan.rate(FaultKind.STUCK_READ) == 0.1
        assert plan.rate(FaultKind.KERNEL_ABORT) == 1.0
        assert plan.rate(FaultKind.DROPPED_WRITE) == 0.0
        assert plan.seed == 9

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            FaultPlan.parse("teleport=0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(FaultConfigError, match="bad rate"):
            FaultPlan.parse("tear=lots")

    def test_parse_rejects_out_of_range_rate(self):
        with pytest.raises(FaultConfigError, match="must be in"):
            FaultPlan.parse("tear=1.5")

    def test_parse_rejects_empty(self):
        with pytest.raises(FaultConfigError, match="empty fault spec"):
            FaultPlan.parse("  ,  ")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="duplicate"):
            FaultPlan([FaultSpec(FaultKind.TORN_WRITE, 0.1),
                       FaultSpec(FaultKind.TORN_WRITE, 0.2)])

    def test_describe_mentions_seed(self):
        assert "seed 4" in FaultPlan.parse("drop=0.5", seed=4).describe()


class TestInjectorDeterminism:
    def test_same_key_same_stream(self):
        plan = FaultPlan.parse("tear=0.5,abort=0.5", seed=1)
        a = plan.injector("cc", "internet", 0)
        b = plan.injector("cc", "internet", 0)
        assert a.seed == b.seed
        assert [a._rng.random() for _ in range(8)] == \
            [b._rng.random() for _ in range(8)]

    def test_different_keys_differ(self):
        plan = FaultPlan.parse("tear=0.5", seed=1)
        assert plan.injector("cc", 0).seed != plan.injector("cc", 1).seed

    def test_different_plan_seeds_differ(self):
        a = FaultPlan.parse("tear=0.5", seed=1).injector("k")
        b = FaultPlan.parse("tear=0.5", seed=2).injector("k")
        assert a.seed != b.seed


class TestMemoryFaults:
    def test_torn_wide_store_keeps_low_word_only(self):
        # Fig. 1: a torn 64-bit store of 0 over -1 leaves 0xffffffff in
        # the high half — the chimera 0xffffffff00000000
        plan = FaultPlan.parse("tear=1.0", seed=0)
        mem = GlobalMemory(faults=plan.injector("t"))
        val = mem.alloc("val", 1, DType.I64, fill=-1)
        mem.span_write(val.span(0), 0, kind=AccessKind.PLAIN)
        assert mem.span_read(val.span(0)) == 0xFFFFFFFF_00000000

    def test_dropped_store_is_lost(self):
        plan = FaultPlan.parse("drop=1.0", seed=0)
        mem = GlobalMemory(faults=plan.injector("t"))
        val = mem.alloc("val", 1, DType.I32, fill=7)
        mem.span_write(val.span(0), 42, kind=AccessKind.PLAIN)
        assert mem.element_read(val, 0) == 7

    def test_atomic_stores_are_immune(self):
        plan = FaultPlan.parse("drop=1.0,tear=1.0", seed=0)
        mem = GlobalMemory(faults=plan.injector("t"))
        val = mem.alloc("val", 1, DType.I64, fill=-1)
        mem.span_write(val.span(0), 0, kind=AccessKind.ATOMIC)
        assert mem.element_read(val, 0) == 0

    def test_host_operations_never_faulted(self):
        plan = FaultPlan.parse("drop=1.0,tear=1.0,stuck=1.0", seed=0)
        mem = GlobalMemory(faults=plan.injector("t"))
        val = mem.alloc("val", 4, DType.I64, fill=-1)
        mem.element_write(val, 2, 99)  # kind=None: host side
        assert mem.element_read(val, 2) == 99

    def test_stuck_plain_load_returns_stale_value(self):
        plan = FaultPlan.parse("stuck=1.0", seed=0)
        mem = GlobalMemory(faults=plan.injector("t"))
        val = mem.alloc("val", 1, DType.I32, fill=-1)
        # first plain read records -1 as the register-cached value
        assert mem.span_read(val.span(0), kind=AccessKind.PLAIN) \
            == 0xFFFFFFFF
        mem.span_write(val.span(0), 5)  # host update
        # the plain reader is stuck on the stale value forever
        assert mem.span_read(val.span(0), kind=AccessKind.PLAIN) \
            == 0xFFFFFFFF
        # a volatile read observes the truth
        assert mem.span_read(val.span(0), kind=AccessKind.VOLATILE) == 5

    def test_no_injector_is_untouched(self):
        mem = GlobalMemory()
        val = mem.alloc("val", 1, DType.I64, fill=-1)
        mem.span_write(val.span(0), 0, kind=AccessKind.PLAIN)
        assert mem.element_read(val, 0) == 0


class TestSimtFaults:
    @staticmethod
    def _count_kernel(ctx, arr, rounds):
        for _ in range(rounds):
            v = yield ctx.load(arr, ctx.tid, AccessKind.VOLATILE)
            yield ctx.store(arr, ctx.tid, v + 1, AccessKind.VOLATILE)

    def test_abort_raises_transient_fault(self):
        plan = FaultPlan.parse("abort=1.0", seed=0)
        mem = GlobalMemory()
        arr = mem.alloc("arr", 4, DType.I32)
        ex = SimtExecutor(mem, record_events=False,
                          faults=plan.injector("k"))
        with pytest.raises(TransientKernelFault, match="micro-step"):
            ex.launch(self._count_kernel, 4, arr, 200)

    def test_stall_delays_but_completes_correctly(self):
        plan = FaultPlan.parse("stall=0.2", seed=3)
        mem = GlobalMemory()
        arr = mem.alloc("arr", 4, DType.I32)
        ex = SimtExecutor(mem, record_events=False,
                          faults=plan.injector("k"))
        ex.launch(self._count_kernel, 4, arr, 20)
        assert mem.download(arr).tolist() == [20, 20, 20, 20]

    def test_unfaulted_executor_matches_faultless_run(self):
        def run(faults):
            mem = GlobalMemory(faults=faults)
            arr = mem.alloc("arr", 4, DType.I32)
            SimtExecutor(mem, record_events=False,
                         faults=faults).launch(
                self._count_kernel, 4, arr, 10)
            return mem.download(arr).tolist()

        # a zero-rate plan must behave exactly like no plan at all
        zero = FaultPlan.parse("tear=0.0", seed=0).injector("k")
        assert run(None) == run(zero) == [10, 10, 10, 10]


class TestPerfLevelExposure:
    """The paper's asymmetry: corruption needs a racy access to land on."""

    def _run(self, algo_key, graph_name, variant, spec, seed=0):
        from repro.graphs.suite import load_suite_graph

        algo = get_algorithm(algo_key)
        graph = load_suite_graph(graph_name)
        plan = FaultPlan.parse(spec, seed=seed)
        injector = plan.injector(algo_key, variant.value)
        return run_algorithm(algo, graph, get_device("titanv"), variant,
                             seed=7, faults=injector), graph

    def test_torn_write_corrupts_baseline_output(self):
        run, graph = self._run("cc", "internet", Variant.BASELINE,
                               "tear=1.0")
        with pytest.raises(ValidationError):
            verify.check_components(graph, run.output["labels"])

    def test_race_free_variant_immune_to_tearing(self):
        run, graph = self._run("cc", "internet", Variant.RACE_FREE,
                               "tear=1.0")
        verify.check_components(graph, run.output["labels"])

    def test_stuck_read_livelocks_baseline_only(self):
        with pytest.raises(DeadlockError, match="stuck-stale"):
            self._run("cc", "internet", Variant.BASELINE, "stuck=1.0")
        run, graph = self._run("cc", "internet", Variant.RACE_FREE,
                               "stuck=1.0")
        verify.check_components(graph, run.output["labels"])

    def test_abort_hits_both_variants(self):
        for variant in (Variant.BASELINE, Variant.RACE_FREE):
            with pytest.raises(TransientKernelFault):
                self._run("cc", "internet", variant, "abort=1.0")

    def test_stall_only_stretches_runtime(self):
        clean, _ = self._run("cc", "internet", Variant.BASELINE,
                             "tear=0.0")
        stalled, graph = self._run("cc", "internet", Variant.BASELINE,
                                   "stall=1.0")
        assert stalled.runtime_ms > clean.runtime_ms
        verify.check_components(graph, stalled.output["labels"])

    def test_exposure_follows_the_access_plan(self):
        # independent of any run: the race-free effective plan has no
        # shared non-atomic stores and no shared plain loads left
        plan = algorithm_plan(get_algorithm("cc"))
        effective = plan_for(plan, Variant.RACE_FREE)
        shared = [s for s in effective.sites if s.shared]
        assert all(s.kind is AccessKind.ATOMIC
                   for s in shared if s.is_store)
        assert all(s.kind is not AccessKind.PLAIN
                   for s in shared if not s.is_store and not s.is_rmw)

    def test_faults_none_is_bit_identical(self):
        from repro.graphs.suite import load_suite_graph

        algo = get_algorithm("cc")
        graph = load_suite_graph("internet")
        dev = get_device("titanv")
        a = run_algorithm(algo, graph, dev, Variant.BASELINE, seed=7)
        b = run_algorithm(algo, graph, dev, Variant.BASELINE, seed=7,
                          faults=None)
        assert a.runtime_ms == b.runtime_ms
        assert np.array_equal(a.output["labels"], b.output["labels"])
