"""Tests for block-shared memory (``__shared__`` scratchpads)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import apsp, verify
from repro.errors import KernelError
from repro.gpu.accesses import AccessKind, DType
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector
from repro.gpu.simt import SimtExecutor
from repro.graphs import generators as gen


class TestSharedArrays:
    def test_block_staging_roundtrip(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem)
        out = mem.alloc("out", 4, DType.I32)

        def kernel(ctx, out):
            smem = ctx.shared("buf")
            yield ctx.store(smem, ctx.lane, ctx.tid * 3)
            yield ctx.barrier()
            v = yield ctx.load(smem, (ctx.lane + 1) % 4)
            yield ctx.store(out, ctx.tid, v)

        ex.launch(kernel, 4, out, block_dim=4,
                  shared={"buf": (4, DType.I32)})
        assert np.array_equal(mem.download(out), [3, 6, 9, 0])

    def test_blocks_get_separate_instances(self):
        """Two blocks write 'the same' shared array without conflict."""
        mem = GlobalMemory()
        ex = SimtExecutor(mem)
        out = mem.alloc("out", 4, DType.I32)

        def kernel(ctx, out):
            smem = ctx.shared("buf")
            if ctx.lane == 0:
                yield ctx.store(smem, 0, ctx.block + 10)
            yield ctx.barrier()
            v = yield ctx.load(smem, 0)
            yield ctx.store(out, ctx.tid, v)

        ex.launch(kernel, 4, out, block_dim=2,
                  shared={"buf": (1, DType.I32)})
        assert np.array_equal(mem.download(out), [10, 10, 11, 11])
        # and the same-name writes from different blocks are NOT races
        assert RaceDetector().check(ex) == []

    def test_undeclared_shared_rejected(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem)

        def kernel(ctx):
            smem = ctx.shared("nope")
            yield ctx.load(smem, 0)

        with pytest.raises(KernelError):
            ex.launch(kernel, 1)

    def test_shared_freed_after_launch(self):
        from repro.errors import MemoryAccessError

        mem = GlobalMemory()
        ex = SimtExecutor(mem)

        def kernel(ctx):
            smem = ctx.shared("buf")
            yield ctx.store(smem, 0, 1)

        ex.launch(kernel, 1, shared={"buf": (1, DType.I32)})
        with pytest.raises(MemoryAccessError):
            mem.handle("__shared__0_0_buf")

    def test_relaunch_reuses_names(self):
        """Shared instances must not collide across launches."""
        mem = GlobalMemory()
        ex = SimtExecutor(mem)

        def kernel(ctx):
            smem = ctx.shared("buf")
            yield ctx.store(smem, 0, 1)

        ex.launch(kernel, 1, shared={"buf": (1, DType.I32)})
        ex.launch(kernel, 1, shared={"buf": (1, DType.I32)})

    def test_unsynchronized_shared_access_is_a_race(self):
        mem = GlobalMemory()
        ex = SimtExecutor(mem)

        def kernel(ctx):
            smem = ctx.shared("buf")
            yield ctx.store(smem, 0, ctx.tid)  # no barrier: ww race

        ex.launch(kernel, 2, block_dim=2, shared={"buf": (1, DType.I32)})
        assert RaceDetector().check(ex)


class TestSharedMemoryAPSP:
    def test_matches_reference(self):
        g = gen.random_uniform(6, 2.0, seed=3).with_random_weights(seed=4)
        dist, ex = apsp.run_simt_shared(g, scheduler=RandomScheduler(1))
        verify.check_apsp(g, dist)

    def test_race_free_under_adversarial_schedule(self):
        g = gen.random_uniform(5, 2.0, seed=5).with_random_weights(seed=6)
        dist, ex = apsp.run_simt_shared(
            g, scheduler=AdversarialScheduler(7))
        verify.check_apsp(g, dist)
        assert RaceDetector().check(ex) == []

    def test_matches_global_memory_kernel(self):
        g = gen.random_uniform(6, 2.0, seed=8).with_random_weights(seed=9)
        shared_dist, _ = apsp.run_simt_shared(g,
                                              scheduler=RandomScheduler(2))
        global_dist, _ = apsp.run_simt(g, scheduler=RandomScheduler(2))
        assert np.array_equal(shared_dist, global_dist)
