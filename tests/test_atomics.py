"""Tests for the libcu++-style helpers of Figs. 2-5."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.accesses import DType
from repro.gpu.atomics import (
    atomic_add,
    atomic_cas,
    atomic_clear_char,
    atomic_exch,
    atomic_max,
    atomic_max_half,
    atomic_min,
    atomic_or_char,
    atomic_read,
    atomic_read_char,
    atomic_write,
    atomic_write_char,
    read_first,
    read_second,
    write_first,
    write_second,
)
from repro.gpu.interleave import AdversarialScheduler
from repro.gpu.memory import GlobalMemory, pack_int2
from repro.gpu.simt import SimtExecutor


def run_single(kernel, *alloc_spec, n_threads=1, fill=0):
    mem = GlobalMemory()
    handles = [mem.alloc(f"a{i}", length, dtype, fill=fill)
               for i, (length, dtype) in enumerate(alloc_spec)]
    ex = SimtExecutor(mem)
    ex.launch(kernel, n_threads, *handles)
    return mem, handles


class TestFig2ReadWrite:
    def test_atomic_read_write_roundtrip(self):
        results = []

        def kernel(ctx, arr):
            yield from atomic_write(ctx, arr, 2, -99)
            v = yield from atomic_read(ctx, arr, 2)
            results.append(v)

        run_single(kernel, (4, DType.I32))
        assert results == [-99]

    def test_rmw_helpers(self):
        olds = []

        def kernel(ctx, arr):
            olds.append((yield from atomic_add(ctx, arr, 0, 5)))
            olds.append((yield from atomic_min(ctx, arr, 0, -3)))
            olds.append((yield from atomic_max(ctx, arr, 0, 10)))
            olds.append((yield from atomic_exch(ctx, arr, 0, 7)))
            olds.append((yield from atomic_cas(ctx, arr, 0, 7, 1)))

        mem, (arr,) = run_single(kernel, (1, DType.I32))
        assert olds == [0, 5, -3, 10, 7]
        assert mem.element_read(arr, 0) == 1


class TestFig3Fig4CharTricks:
    def test_read_char_matches_plain_bytes(self):
        """Fig. 3b must read exactly what the byte holds, for any index
        modulo 4."""
        seen = {}

        def kernel(ctx, arr):
            for v in range(8):
                b = yield from atomic_read_char(ctx, arr, v)
                seen[v] = b

        mem = GlobalMemory()
        arr = mem.alloc("stat", 8, DType.U8)
        expect = [3, 0, 255, 17, 128, 9, 64, 250]
        mem.upload(arr, np.array(expect))
        SimtExecutor(mem).launch(kernel, 1, arr)
        assert [seen[v] for v in range(8)] == expect

    def test_clear_char_zeroes_only_target(self):
        """Fig. 4b: atomicAnd with the byte mask clears one char."""

        def kernel(ctx, arr):
            old = yield from atomic_clear_char(ctx, arr, 5)
            assert old == 55

        mem = GlobalMemory()
        arr = mem.alloc("stat", 8, DType.U8)
        vals = np.array([10, 11, 12, 13, 14, 55, 16, 17])
        mem.upload(arr, vals)
        SimtExecutor(mem).launch(kernel, 1, arr)
        got = mem.download(arr)
        vals[5] = 0
        assert np.array_equal(got, vals)

    def test_or_char(self):
        def kernel(ctx, arr):
            old = yield from atomic_or_char(ctx, arr, 2, 0x0F)
            assert old == 0xF0

        mem = GlobalMemory()
        arr = mem.alloc("stat", 4, DType.U8)
        mem.upload(arr, np.array([0, 0, 0xF0, 0]))
        SimtExecutor(mem).launch(kernel, 1, arr)
        assert mem.element_read(arr, 2) == 0xFF

    def test_or_char_validates_byte(self):
        def kernel(ctx, arr):
            yield from atomic_or_char(ctx, arr, 0, 0x100)

        with pytest.raises(ValueError):
            run_single(kernel, (4, DType.U8))

    def test_write_char_cas_loop(self):
        def kernel(ctx, arr):
            old = yield from atomic_write_char(ctx, arr, 1, 0xAB)
            assert old == 7

        mem = GlobalMemory()
        arr = mem.alloc("stat", 4, DType.U8)
        mem.upload(arr, np.array([1, 7, 2, 3]))
        SimtExecutor(mem).launch(kernel, 1, arr)
        assert np.array_equal(mem.download(arr), [1, 0xAB, 2, 3])

    def test_concurrent_char_ops_do_not_corrupt_neighbors(self):
        """8 threads each OR their own byte: all must land (the whole
        point of the word-level atomics)."""

        def kernel(ctx, arr):
            yield from atomic_or_char(ctx, arr, ctx.tid, ctx.tid + 1)

        for seed in range(30):
            mem = GlobalMemory()
            arr = mem.alloc("stat", 8, DType.U8)
            ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                              record_events=False)
            ex.launch(kernel, 8, arr)
            assert np.array_equal(mem.download(arr), np.arange(1, 9))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8),
           st.integers(0, 7), st.integers(0, 255))
    def test_write_char_property(self, init, index, value):
        def kernel(ctx, arr):
            yield from atomic_write_char(ctx, arr, index, value)

        mem = GlobalMemory()
        arr = mem.alloc("stat", 8, DType.U8)
        mem.upload(arr, np.array(init))
        SimtExecutor(mem).launch(kernel, 1, arr)
        expect = list(init)
        expect[index] = value
        assert np.array_equal(mem.download(arr), expect)


class TestFig5Int2Halves:
    def test_half_accessors_roundtrip(self):
        reads = []

        def kernel(ctx, arr):
            yield from write_first(ctx, arr, 1, -5)
            yield from write_second(ctx, arr, 1, 77)
            reads.append((yield from read_first(ctx, arr, 1)))
            reads.append((yield from read_second(ctx, arr, 1)))

        mem, (arr,) = run_single(kernel, (2, DType.INT2))
        assert reads == [-5, 77]
        assert mem.element_read(arr, 1) == pack_int2(-5, 77)

    def test_halves_are_independent(self):
        def kernel(ctx, arr):
            yield from write_first(ctx, arr, 0, 111)

        mem = GlobalMemory()
        arr = mem.alloc("pm", 1, DType.INT2)
        mem.element_write(arr, 0, pack_int2(1, 2))
        SimtExecutor(mem).launch(kernel, 1, arr)
        assert mem.element_read(arr, 0) == pack_int2(111, 2)

    def test_atomic_max_half(self):
        olds = []

        def kernel(ctx, arr):
            olds.append((yield from atomic_max_half(ctx, arr, 0, 0, 50)))
            olds.append((yield from atomic_max_half(ctx, arr, 0, 1, -2)))

        mem = GlobalMemory()
        arr = mem.alloc("pm", 1, DType.INT2)
        mem.element_write(arr, 0, pack_int2(10, -7))
        SimtExecutor(mem).launch(kernel, 1, arr)
        assert olds == [10, -7]
        assert mem.element_read(arr, 0) == pack_int2(50, -2)

    def test_atomic_max_half_validates(self):
        def kernel(ctx, arr):
            yield from atomic_max_half(ctx, arr, 0, 2, 0)

        with pytest.raises(ValueError):
            run_single(kernel, (1, DType.INT2))

    def test_concurrent_half_writes_do_not_interfere(self):
        def kernel(ctx, arr):
            if ctx.tid == 0:
                yield from write_first(ctx, arr, 0, 123)
            else:
                yield from write_second(ctx, arr, 0, 456)

        for seed in range(40):
            mem = GlobalMemory()
            arr = mem.alloc("pm", 1, DType.INT2)
            ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                              record_events=False)
            ex.launch(kernel, 2, arr)
            assert mem.element_read(arr, 0) == pack_int2(123, 456)
