"""Tests for ECL-MIS (both execution levels, both variants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import mis, verify
from repro.core.variants import Variant, get_algorithm
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph
from repro.gpu.device import get_device
from repro.gpu.interleave import AdversarialScheduler, RandomScheduler
from repro.gpu.racecheck import RaceDetector
from repro.perf.engine import run_algorithm

ALGO = lambda: get_algorithm("mis")
DEV = lambda: get_device("titanv")


class TestPerfCorrectness:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_triangles(self, two_triangles, variant):
        run = run_algorithm(ALGO(), two_triangles, DEV(), variant)
        verify.check_mis(two_triangles, run.output["in_set"])
        # one vertex per triangle
        assert run.output["in_set"].sum() == 2

    @pytest.mark.parametrize("variant", list(Variant))
    def test_path(self, path_graph, variant):
        run = run_algorithm(ALGO(), path_graph, DEV(), variant)
        verify.check_mis(path_graph, run.output["in_set"])

    def test_isolated_vertices_are_members(self):
        g = CSRGraph.empty(4)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE)
        assert run.output["in_set"].sum() == 4

    def test_both_variants_valid_even_if_different(self, small_graph):
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        verify.check_mis(small_graph, base.output["in_set"])
        verify.check_mis(small_graph, free.output["in_set"])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(10, 60), st.floats(1.0, 5.0), st.integers(0, 100))
    def test_random_graphs_verified_baseline(self, n, avg, seed):
        """The baseline's stale reads must never break correctness —
        Luby decisions with static priorities tolerate staleness."""
        g = gen.random_uniform(n, avg, seed=seed)
        run = run_algorithm(ALGO(), g, DEV(), Variant.BASELINE, seed=seed)
        verify.check_mis(g, run.output["in_set"])


class TestVisibilityMechanism:
    def test_baseline_needs_more_rounds(self, small_graph):
        """Stale polls delay decisions (Section VI.A)."""
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert base.rounds >= free.rounds

    def test_racefree_is_faster(self, small_graph):
        """The paper's headline: race-free MIS wins by 5-11 %."""
        base = run_algorithm(ALGO(), small_graph, DEV(), Variant.BASELINE)
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert base.runtime_ms / free.runtime_ms > 1.0

    def test_racefree_polls_are_atomic(self, small_graph):
        free = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        assert free.stats.atomic_loads > 0
        assert free.stats.volatile_loads == 0

    def test_set_quality_priority_favors_low_degree(self, small_graph):
        """ECL-MIS's inverse-degree priorities produce large sets."""
        run = run_algorithm(ALGO(), small_graph, DEV(), Variant.RACE_FREE)
        in_set = run.output["in_set"].astype(bool)
        # compare against a greedy MIS over ascending ids
        greedy = np.zeros(small_graph.num_vertices, dtype=bool)
        blocked = np.zeros(small_graph.num_vertices, dtype=bool)
        for v in range(small_graph.num_vertices):
            if not blocked[v]:
                greedy[v] = True
                blocked[small_graph.neighbors(v)] = True
        assert in_set.sum() >= 0.8 * greedy.sum()


class TestSimtLevel:
    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_correct_under_schedules(self, tiny_graph, variant, seed):
        in_set, _ = mis.run_simt(tiny_graph, variant,
                                 scheduler=RandomScheduler(seed))
        verify.check_mis(tiny_graph, in_set)

    def test_adversarial_schedules(self, tiny_graph):
        for seed in (7, 8):
            in_set, _ = mis.run_simt(tiny_graph, Variant.RACE_FREE,
                                     scheduler=AdversarialScheduler(seed))
            verify.check_mis(tiny_graph, in_set)

    def test_baseline_races_on_status_bytes(self, tiny_graph):
        _, ex = mis.run_simt(tiny_graph, Variant.BASELINE,
                             scheduler=RandomScheduler(3))
        races = RaceDetector().check(ex)
        assert any(r.array == "mis_nstat" for r in races)

    def test_racefree_clean(self, tiny_graph):
        _, ex = mis.run_simt(tiny_graph, Variant.RACE_FREE,
                             scheduler=RandomScheduler(3))
        assert RaceDetector().check(ex) == []


class TestVerifier:
    def test_rejects_adjacent_members(self, path_graph):
        bad = np.ones(10, dtype=np.int8)
        with pytest.raises(ValidationError):
            verify.check_mis(path_graph, bad)

    def test_rejects_non_maximal(self, path_graph):
        with pytest.raises(ValidationError):
            verify.check_mis(path_graph, np.zeros(10, dtype=np.int8))


class TestPriorities:
    def test_inverse_degree(self, small_graph):
        prio = mis.make_priorities(small_graph, seed=0)
        degs = small_graph.degrees()
        hub = int(np.argmax(degs))
        leaf = int(np.argmin(degs))
        assert prio[leaf] > prio[hub]
