"""repro.repair — automated race repair with DPOR verification.

The pipeline turns the detection machinery of :mod:`repro.check` into a
*fix generator*: localize races into per-site repair obligations,
pre-filter sites that are provably race-free, synthesize candidate
fix-sets (per-site PLAIN→ATOMIC / PLAIN→VOLATILE promotion, barrier
insertion), verify every candidate through the sleep-set DPOR explorer,
and price the survivors across the device zoo — emitting a ranked fix
table shaped like the paper's Tables IV-VII (slowdown vs the racy
baseline and vs the hand-written race-free variant).

Candidate fixes are applied *without editing algorithm source*: kernels
resolve their access kinds through
:func:`repro.core.transform.site_kind`, which an active
:func:`repro.gpu.overrides.site_kind_overrides` context shadows.
"""

from repro.repair.localize import SiteObligation, localize
from repro.repair.prefilter import PrefilterReport, prefilter
from repro.repair.synth import Fix, FixSet, synthesize
from repro.repair.verify import CandidateVerdict, shrink_fixset, verify_candidate
from repro.repair.rank import RankedFix, rank_fixes
from repro.repair.pipeline import RepairReport, repair
from repro.repair.targets import RepairTarget, get_target, list_targets

__all__ = [
    "CandidateVerdict",
    "Fix",
    "FixSet",
    "PrefilterReport",
    "RankedFix",
    "RepairReport",
    "RepairTarget",
    "SiteObligation",
    "get_target",
    "list_targets",
    "localize",
    "prefilter",
    "rank_fixes",
    "repair",
    "shrink_fixset",
    "synthesize",
    "verify_candidate",
]
