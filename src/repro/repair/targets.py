"""Repairable kernels: what the repair pipeline can localize and fix.

A :class:`RepairTarget` bundles everything the pipeline needs about one
racy code: its access plan, a :class:`~repro.check.harness.Program`
factory whose kernels resolve access kinds through
:func:`repro.core.transform.site_kind` (so an override context applies
a candidate fix without source edits), the graphs each stage runs on,
and — when the target is one of the paper's algorithms — the key under
which the performance level can price candidate plans.

Three graph sizes per target, matched to stage cost:

* ``verify_graph`` — tiny (4 vertices): every DPOR exploration of a
  candidate runs here, so it must be small enough for the sleep-set
  explorer to cover meaningfully within a smoke budget.
* ``localize_graph`` — small (~24 vertices): a handful of scheduled
  runs with the vector-clock engine; big enough that every racy site
  is actually exercised.
* ``perf_graph`` — medium (hundreds of vertices): one vectorized
  perf-level execution per (candidate, staleness class) for ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.check.harness import Program
from repro.core.transform import AccessPlan, AccessSite
from repro.core.variants import Variant
from repro.errors import ReproError, ValidationError
from repro.gpu.accesses import AccessKind
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


@dataclass(frozen=True)
class RepairTarget:
    """One repairable code and the harness around it.

    ``build_program(barriers, graph=None)`` returns a fresh checkable
    :class:`Program`; candidate access-kind changes are applied by the
    *caller* via :func:`repro.gpu.overrides.site_kind_overrides`, active
    while the program executes (kernels are built at launch time, so
    they see the override).  ``barriers`` names the target's barrier
    slots to enable — only meaningful for targets with
    ``barrier_slots``; algorithm kernels have none (their launch
    structure already is the synchronization the paper's codes use).
    ``graph`` overrides the default ``verify_graph`` (the localizer
    passes ``localize_graph``); graph-less targets ignore it.

    ``canonical_output`` marks targets whose correct output is unique
    (CC: min-id component labels; SCC: max-id labels), so verification
    can require exact equality with the hand-written race-free variant,
    not just invariant validity.
    """

    name: str
    plan: AccessPlan
    build_program: Callable[..., Program]
    verify_graph: CSRGraph | None
    localize_graph: CSRGraph | None
    perf_graph: CSRGraph | None
    algorithm_key: str | None = None
    barrier_slots: tuple[str, ...] = ()
    canonical_output: bool = False
    description: str = ""


# ----------------------------------------------------------------------
# Algorithm-backed targets
# ----------------------------------------------------------------------

def _stash_invariant(checker, graph, key: str):
    """Wrap a :mod:`repro.algorithms.verify` checker as a Program
    invariant over the output stashed into the handles dict."""

    def invariant(mem, handles) -> bool:
        out = handles.get(key)
        if out is None:
            return False
        try:
            checker(graph, out)
        except ValidationError:
            return False
        return True

    return invariant


def _cc_target() -> RepairTarget:
    from repro.algorithms import cc
    from repro.algorithms.verify import check_components

    verify_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (0, 2), (2, 3)], directed=False,
        symmetrize=True, name="repair-cc-tiny")
    localize_graph = gen.random_uniform(24, 3.0, seed=7)
    perf_graph = gen.random_uniform(256, 4.0, seed=1)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            labels, _ = cc.run_simt(graph, Variant.BASELINE,
                                    executor=executor)
            handles["output"] = labels

        return Program(name="repair/cc", setup=setup, execute=execute,
                       invariant=_stash_invariant(check_components, graph,
                                                  "output"))

    return RepairTarget(
        name="cc", plan=cc.ACCESS_PLAN, build_program=build_program,
        verify_graph=verify_graph, localize_graph=localize_graph,
        perf_graph=perf_graph, algorithm_key="cc", canonical_output=True,
        description="ECL-CC pointer-jumping labels (plain jump "
                    "reads/writes race; hook CAS is already atomic)")


def _mis_target() -> RepairTarget:
    from repro.algorithms import mis
    from repro.algorithms.verify import check_mis

    verify_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (2, 3)], directed=False, symmetrize=True,
        name="repair-mis-tiny")
    localize_graph = gen.random_uniform(24, 3.0, seed=11)
    perf_graph = gen.random_uniform(256, 4.0, seed=2)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            in_set, _ = mis.run_simt(graph, Variant.BASELINE, seed=0,
                                     executor=executor)
            handles["output"] = in_set

        return Program(name="repair/mis", setup=setup, execute=execute,
                       invariant=_stash_invariant(check_mis, graph,
                                                  "output"))

    return RepairTarget(
        name="mis", plan=mis.ACCESS_PLAN, build_program=build_program,
        verify_graph=verify_graph, localize_graph=localize_graph,
        perf_graph=perf_graph, algorithm_key="mis",
        description="ECL-MIS asynchronous status polling (volatile "
                    "byte polls and writes race)")


def _apsp_closure(graph) -> np.ndarray:
    """The unique Floyd-Warshall closure of a weighted graph."""
    from repro.algorithms.apsp import INF

    n = graph.num_vertices
    dist = np.full((n, n), INF, dtype=np.int64)
    np.fill_diagonal(dist, 0)
    src, dst = graph.edge_array()
    np.minimum.at(dist, (src, dst), graph.weights)
    for k in range(n):
        np.minimum(dist, dist[:, k, None] + dist[None, k, :], out=dist)
    return dist


def _apsp_shared_target() -> RepairTarget:
    """The shared-memory APSP tile kernel with its barriers elided.

    The blocked Floyd-Warshall schedule is correct *because of* its
    ``__syncthreads()`` sites; with the :data:`~repro.algorithms.apsp
    .APSP_SYNC_SLOT` slot disabled, every cross-thread tile access
    races and stale tiles produce wrong distances.  The only repair
    that restores the ordering is re-enabling the slot — atomic
    promotion silences the reports but cannot recover the lost
    happens-before, which the exact-closure invariant documents.

    The graphs are *paths*: on a path, ``d[0][n-1]`` starts at INF and
    is only found through every intermediate vertex's staged tile, so
    a missing barrier has reachable wrong outputs (a dense triangle
    would mask the race — one relaxation step already sees the final
    answer).  Pre-weighted for the same reason as MST: the invariant
    and ``run_simt_shared`` must agree on weights.
    """
    from repro.algorithms import apsp

    verify_graph = CSRGraph.from_edges(
        3, [(0, 1), (1, 2)], directed=False, symmetrize=True,
        name="repair-apsp-tiny").with_random_weights(seed=0)
    localize_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (2, 3)], directed=False, symmetrize=True,
        name="repair-apsp-path4").with_random_weights(seed=0)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph
        sync = apsp.APSP_SYNC_SLOT in barriers

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            dist, _ = apsp.run_simt_shared(graph, executor=executor,
                                           sync=sync)
            handles["output"] = dist

        def invariant(mem, handles) -> bool:
            out = handles.get("output")
            return (out is not None
                    and bool(np.array_equal(np.asarray(out),
                                            _apsp_closure(graph))))

        return Program(name="repair/apsp_shared", setup=setup,
                       execute=execute, invariant=invariant)

    return RepairTarget(
        name="apsp_shared", plan=apsp.SHARED_PLAN,
        build_program=build_program, verify_graph=verify_graph,
        localize_graph=localize_graph, perf_graph=None,
        barrier_slots=(apsp.APSP_SYNC_SLOT,),
        description="ECL-APSP shared-memory tile with its "
                    "__syncthreads() elided (only re-enabling the "
                    "barrier slot restores the blocked ordering)")


def _mis_packed_target() -> RepairTarget:
    """The packed single-byte MIS kernel (Section II.B.4).

    Same access plan and racy sites as the word-per-vertex MIS target —
    the packed kernel routes its byte polls and stores through the same
    ``mis.nstat.*`` labels — but the racy accesses are now sub-word,
    so an accepted atomic promotion *means* the Fig. 3b typecast read
    and the Fig. 5 CAS-loop byte store.
    """
    from repro.algorithms import mis
    from repro.algorithms.verify import check_mis

    verify_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (2, 3)], directed=False, symmetrize=True,
        name="repair-misp-tiny")
    localize_graph = gen.random_uniform(24, 3.0, seed=23)
    perf_graph = gen.random_uniform(256, 4.0, seed=6)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            in_set, _ = mis.run_simt_packed(graph, Variant.BASELINE,
                                            seed=0, executor=executor)
            handles["output"] = in_set

        return Program(name="repair/mis_packed", setup=setup,
                       execute=execute,
                       invariant=_stash_invariant(check_mis, graph,
                                                  "output"))

    return RepairTarget(
        name="mis_packed", plan=mis.ACCESS_PLAN,
        build_program=build_program, verify_graph=verify_graph,
        localize_graph=localize_graph, perf_graph=perf_graph,
        algorithm_key="mis",
        description="ECL-MIS packed status+priority byte (sub-word "
                    "polls and writes race; atomic promotion routes "
                    "through the typecast/CAS byte helpers)")


def _gc_target() -> RepairTarget:
    from repro.algorithms import gc
    from repro.algorithms.verify import check_coloring

    verify_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (0, 2), (2, 3)], directed=False,
        symmetrize=True, name="repair-gc-tiny")
    localize_graph = gen.random_uniform(24, 3.0, seed=13)
    perf_graph = gen.random_uniform(256, 4.0, seed=3)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            colors, _ = gc.run_simt(graph, Variant.BASELINE, seed=0,
                                    executor=executor)
            handles["output"] = colors

        return Program(name="repair/gc", setup=setup, execute=execute,
                       invariant=_stash_invariant(check_coloring, graph,
                                                  "output"))

    return RepairTarget(
        name="gc", plan=gc.ACCESS_PLAN, build_program=build_program,
        verify_graph=verify_graph, localize_graph=localize_graph,
        perf_graph=perf_graph, algorithm_key="gc",
        description="ECL-GC Jones-Plassmann coloring (volatile color "
                    "and possible-color accesses race)")


def _mst_target() -> RepairTarget:
    from repro.algorithms import mst
    from repro.algorithms.verify import check_mst

    # pre-weighted graphs: run_simt and check_mst must agree on weights
    # (run_simt would otherwise weight an internal copy the verifier
    # never sees)
    verify_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (0, 2), (2, 3)], directed=False,
        symmetrize=True,
        name="repair-mst-tiny").with_random_weights(seed=0)
    localize_graph = gen.random_uniform(
        24, 3.0, seed=19).with_random_weights(seed=0)
    perf_graph = gen.random_uniform(
        256, 4.0, seed=5).with_random_weights(seed=0)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            edge_mask, _ = mst.run_simt(graph, Variant.BASELINE, seed=0,
                                        executor=executor)
            handles["output"] = edge_mask

        return Program(name="repair/mst", setup=setup, execute=execute,
                       invariant=_stash_invariant(check_mst, graph,
                                                  "output"))

    return RepairTarget(
        name="mst", plan=mst.ACCESS_PLAN, build_program=build_program,
        verify_graph=verify_graph, localize_graph=localize_graph,
        perf_graph=perf_graph, algorithm_key="mst",
        description="ECL-MST Boruvka edge hooking (plain best-edge "
                    "reads and parent writes race; CAS hook is atomic)")


def _scc_target() -> RepairTarget:
    from repro.algorithms import scc
    from repro.algorithms.verify import check_scc

    verify_graph = CSRGraph.from_edges(
        4, [(0, 1), (1, 2), (2, 0), (2, 3)], directed=True,
        name="repair-scc-tiny")
    localize_graph = gen.directed_powerlaw(24, 2.5, seed=17)
    perf_graph = gen.directed_powerlaw(192, 3.0, seed=4)

    def build_program(barriers: frozenset, graph=None) -> Program:
        graph = verify_graph if graph is None else graph

        def setup(mem):
            return {}

        def execute(executor, handles) -> None:
            labels, _ = scc.run_simt(graph, Variant.BASELINE,
                                     executor=executor)
            handles["output"] = labels

        return Program(name="repair/scc", setup=setup, execute=execute,
                       invariant=_stash_invariant(check_scc, graph,
                                                  "output"))

    return RepairTarget(
        name="scc", plan=scc.ACCESS_PLAN, build_program=build_program,
        verify_graph=verify_graph, localize_graph=localize_graph,
        perf_graph=perf_graph, algorithm_key="scc", canonical_output=True,
        description="ECL-SCC max-ID propagation (plain int2 pathmax "
                    "pair and go-again flag race)")


# ----------------------------------------------------------------------
# Built-in two-phase target (exercises barrier synthesis)
# ----------------------------------------------------------------------

TWOPHASE_PLAN = AccessPlan("twophase", (
    AccessSite("twophase.buf.read", AccessKind.PLAIN),
    AccessSite("twophase.buf.write", AccessKind.PLAIN, is_store=True),
    AccessSite("twophase.out.write", AccessKind.PLAIN, is_store=True,
               shared=False),
))

#: the one barrier slot of the two-phase kernel: between its write
#: phase and its read phase
TWOPHASE_SLOT = "twophase.phase"

_TWOPHASE_N = 4


def _twophase_target() -> RepairTarget:
    """A publish/consume kernel missing its ``__syncthreads()``.

    Each of 4 threads writes ``tid + 1`` into its own buffer cell, then
    reads its partner's cell (``tid ^ 1``) and stores the sum into a
    private output cell.  The only correct repair is inserting the
    barrier between the phases: atomic promotion silences the race
    reports but partners may still read the initial zero (invariant
    fails), and volatile promotion fixes nothing.  This target keeps
    the synthesizer's barrier arm honest without involving a graph
    algorithm.
    """
    from repro.core.transform import site_kind

    def build_program(barriers: frozenset, graph=None) -> Program:
        with_barrier = TWOPHASE_SLOT in barriers

        def setup(mem):
            from repro.gpu.accesses import DType

            buf = mem.alloc("tp_buf", _TWOPHASE_N, DType.I32)
            out = mem.alloc("tp_out", _TWOPHASE_N, DType.I32)
            return {"buf": buf, "out": out}

        def execute(executor, handles) -> None:
            read_kind = site_kind(TWOPHASE_PLAN, Variant.BASELINE,
                                  "twophase.buf.read")
            write_kind = site_kind(TWOPHASE_PLAN, Variant.BASELINE,
                                   "twophase.buf.write")
            out_kind = site_kind(TWOPHASE_PLAN, Variant.BASELINE,
                                 "twophase.out.write")

            def kernel(ctx, buf, out):
                t = ctx.tid
                yield ctx.store(buf, t, t + 1, write_kind,
                                site="twophase.buf.write")
                if with_barrier:
                    yield ctx.barrier()
                partner = yield ctx.load(buf, t ^ 1, read_kind,
                                         site="twophase.buf.read")
                yield ctx.store(out, t, (t + 1) + partner, out_kind,
                                site="twophase.out.write")

            executor.launch(kernel, _TWOPHASE_N, handles["buf"],
                            handles["out"], block_dim=_TWOPHASE_N)

        def invariant(mem, handles) -> bool:
            out = mem.download(handles["out"])
            expect = np.array([(t + 1) + ((t ^ 1) + 1)
                               for t in range(_TWOPHASE_N)])
            return bool(np.array_equal(out, expect))

        return Program(name="repair/twophase", setup=setup,
                       execute=execute, invariant=invariant)

    return RepairTarget(
        name="twophase", plan=TWOPHASE_PLAN, build_program=build_program,
        verify_graph=None, localize_graph=None, perf_graph=None,
        barrier_slots=(TWOPHASE_SLOT,),
        description="publish/consume kernel missing its __syncthreads() "
                    "(only the barrier fix preserves the result)")


# ----------------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], RepairTarget]] = {
    "cc": _cc_target,
    "mis": _mis_target,
    "mis_packed": _mis_packed_target,
    "gc": _gc_target,
    "mst": _mst_target,
    "scc": _scc_target,
    "apsp_shared": _apsp_shared_target,
    "twophase": _twophase_target,
}

_CACHE: dict[str, RepairTarget] = {}


def get_target(name: str) -> RepairTarget:
    """Look up a repair target by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown repair target {name!r}; known: "
            f"{sorted(_FACTORIES)}") from None
    if name not in _CACHE:
        _CACHE[name] = factory()
    return _CACHE[name]


def list_targets() -> list[str]:
    return sorted(_FACTORIES)
