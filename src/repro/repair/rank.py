"""Stage 5: price accepted fixes across the device zoo and rank them.

Each accepted fix-set becomes a candidate :class:`AccessPlan` (via
:func:`repro.core.transform.with_site_kinds`); the performance level
records one trace per staleness class on the target's perf graph and
replays it for every requested device — the record/replay split of
:mod:`repro.perf.engine`, so a four-device table costs at most two
functional executions per candidate.

The emitted table is shaped like the paper's Tables IV-VII: per-device
runtime ratios of the fixed code vs the racy baseline and vs the
hand-written race-free variant, ranked by geometric-mean runtime
ascending (best fix first).  Graph-less targets (no perf model) rank
by fix-set size instead and carry no runtime columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.transform import plan_for, with_site_kinds
from repro.core.variants import Variant, get_algorithm
from repro.gpu.device import DEVICE_ORDER, get_device
from repro.perf.engine import record_trace, replay_trace
from repro.repair.verify import CandidateVerdict
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


@dataclass(frozen=True)
class RankedFix:
    """One accepted fix with its cross-device pricing."""

    verdict: CandidateVerdict
    rank: int
    #: device key → candidate runtime (ms); empty for graph-less targets
    runtime_ms: dict[str, float]
    #: device key → candidate / racy-baseline runtime ratio
    vs_baseline: dict[str, float]
    #: device key → candidate / hand-written-race-free runtime ratio
    vs_racefree: dict[str, float]
    geomean_ms: float | None

    @property
    def fixset(self):
        return self.verdict.fixset

    def to_json(self) -> dict:
        return {
            "rank": self.rank,
            "fixset": self.fixset.to_json(),
            "verdict": self.verdict.to_json(),
            "runtime_ms": dict(self.runtime_ms),
            "vs_baseline": dict(self.vs_baseline),
            "vs_racefree": dict(self.vs_racefree),
            "geomean_ms": self.geomean_ms,
        }


def _geomean(values) -> float | None:
    vals = [v for v in values if v > 0]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _price_plan(algorithm, graph, variant: Variant, seed: int,
                devices, plan=None) -> dict[str, float]:
    """Per-device runtimes of one plan, via record/replay.

    Traces are keyed by the device's staleness class, so devices
    sharing a class share one functional execution.
    """
    runtimes: dict[str, float] = {}
    traces: dict[int, object] = {}
    for key in devices:
        device = get_device(key)
        staleness = device.plain_staleness_rounds
        if staleness not in traces:
            traces[staleness] = record_trace(
                algorithm, graph, variant, seed, staleness, plan=plan)
        runtimes[key] = replay_trace(traces[staleness], device)
    return runtimes


def rank_fixes(target, accepted: list[CandidateVerdict],
               devices: tuple[str, ...] = DEVICE_ORDER,
               seed: int = 0) -> list[RankedFix]:
    """Price every accepted candidate and return them ranked."""
    if not accepted:
        return []

    reg = get_registry()

    if target.algorithm_key is None:
        # no perf model: smaller fix-sets first (a barrier beats a
        # full atomic conversion when both verify)
        ordered = sorted(accepted, key=lambda v: v.fixset.size)
        return [RankedFix(verdict=v, rank=i + 1, runtime_ms={},
                          vs_baseline={}, vs_racefree={}, geomean_ms=None)
                for i, v in enumerate(ordered)]

    algorithm = get_algorithm(target.algorithm_key)
    graph = target.perf_graph
    base_ms = _price_plan(algorithm, graph, Variant.BASELINE, seed,
                          devices, plan=target.plan)
    racefree_ms = _price_plan(algorithm, graph, Variant.RACE_FREE, seed,
                              devices,
                              plan=plan_for(target.plan,
                                            Variant.RACE_FREE))

    priced = []
    for verdict in accepted:
        fixset = verdict.fixset
        cand_plan = with_site_kinds(target.plan, fixset.kinds(),
                                    fixset.orders())
        cand_ms = _price_plan(algorithm, graph, Variant.BASELINE, seed,
                              devices, plan=cand_plan)
        if reg.enabled:
            fam = reg.counter("repro_repair_pricings_total",
                              "Candidate pricings, by device",
                              ("target", "device"), scope=SCOPE_PROCESS)
            for key in devices:
                fam.inc(1, target.name, key)
        priced.append((verdict, cand_ms))

    ranked = sorted(priced,
                    key=lambda pair: (_geomean(pair[1].values()) or 0.0,
                                      pair[0].fixset.size))
    out = []
    for i, (verdict, cand_ms) in enumerate(ranked):
        out.append(RankedFix(
            verdict=verdict, rank=i + 1, runtime_ms=cand_ms,
            vs_baseline={k: cand_ms[k] / base_ms[k] for k in cand_ms},
            vs_racefree={k: cand_ms[k] / racefree_ms[k]
                         for k in cand_ms},
            geomean_ms=_geomean(cand_ms.values())))
    return out


def format_table(target, ranked: list[RankedFix],
                 devices: tuple[str, ...] = DEVICE_ORDER) -> str:
    """Render the ranked fix table (paper Tables IV-VII shape)."""
    if not ranked:
        return f"{target.name}: no accepted fixes"
    lines = [
        f"ranked fixes for {target.name} "
        f"(runtime ratios: fixed/racy, fixed/race-free)",
    ]
    width = max(24, max(len(r.fixset.describe()) for r in ranked) + 2)
    if ranked[0].runtime_ms:
        header = (f"{'#':>2}  {'fix':<{width}}"
                  + "".join(f"{d:>22}" for d in devices)
                  + f"{'geomean ms':>14}")
        lines.append(header)
        for row in ranked:
            cells = "".join(
                f"{row.vs_baseline[d]:>10.3f}/{row.vs_racefree[d]:<11.3f}"
                for d in devices)
            lines.append(
                f"{row.rank:>2}  {row.fixset.describe():<{width}}{cells}"
                f"{row.geomean_ms:>14.5f}")
    else:
        lines.append(f"{'#':>2}  {'fix':<{width}}{'size':>6}")
        for row in ranked:
            lines.append(f"{row.rank:>2}  "
                         f"{row.fixset.describe():<{width}}"
                         f"{row.fixset.size:>6}")
    return "\n".join(lines)
