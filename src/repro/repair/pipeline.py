"""The repair pipeline: localize → pre-filter → synthesize → verify →
rank, as one call.

:func:`repair` wires the five stages over one
:class:`~repro.repair.targets.RepairTarget` and returns a
:class:`RepairReport` carrying every stage's artifacts — the CLI's
``repro repair`` renders it as text, ``--json`` serializes it whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DEVICE_ORDER
from repro.repair.localize import SiteObligation, localize
from repro.repair.prefilter import PrefilterReport, prefilter
from repro.repair.rank import RankedFix, format_table, rank_fixes
from repro.repair.synth import FixSet, synthesize
from repro.repair.targets import RepairTarget, get_target
from repro.repair.verify import (
    CandidateVerdict,
    reference_output,
    shrink_fixset,
    verify_candidate,
)
from repro.telemetry.spans import get_spans


@dataclass
class RepairReport:
    """Everything one :func:`repair` call established."""

    target: str
    obligations: list[SiteObligation]
    prefilter: PrefilterReport
    candidates: list[CandidateVerdict]     #: every verified candidate
    ranked: list[RankedFix]                #: accepted, priced, ordered
    devices: tuple[str, ...]
    budget: str

    @property
    def accepted(self) -> list[CandidateVerdict]:
        return [c for c in self.candidates if c.accepted]

    @property
    def ok(self) -> bool:
        """True when every obligation is discharged: no races were
        found, or at least one verified fix exists."""
        return not self.obligations or bool(self.ranked)

    @property
    def top_fix(self) -> RankedFix | None:
        return self.ranked[0] if self.ranked else None

    def render(self) -> str:
        lines = [f"repair report for {self.target} "
                 f"(budget={self.budget})"]
        if not self.obligations:
            lines.append("no race obligations found — nothing to repair")
            return "\n".join(lines)
        lines.append(f"obligations ({len(self.obligations)}):")
        for ob in self.obligations:
            flavor = " [predicted-only]" if ob.predicted_only else ""
            lines.append(f"  {ob.obligation_id}{flavor}")
            lines.append(f"    sites: {', '.join(ob.sites) or '(unlabeled)'}"
                         f"  kinds: {', '.join(ob.kinds)}"
                         f"  seen: {ob.occurrences}x")
        filtered = self.prefilter.filtered_sites
        if filtered:
            lines.append("pre-filtered sites (provably race-free): "
                         + ", ".join(
                             f"{s}={self.prefilter.verdicts[s]}"
                             for s in filtered))
        lines.append(f"candidates verified ({len(self.candidates)}):")
        for cand in self.candidates:
            mark = "ACCEPT" if cand.accepted else "reject"
            extra = f" — {cand.detail}" if cand.detail else ""
            lines.append(
                f"  [{mark}] {cand.fixset.describe()} "
                f"({cand.verdict}, {cand.schedules_explored} schedules)"
                f"{extra}")
        lines.append("")
        target = get_target(self.target)
        lines.append(format_table(target, self.ranked, self.devices))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "budget": self.budget,
            "devices": list(self.devices),
            "ok": self.ok,
            "accepted": len(self.accepted),
            "obligations": [ob.to_json() for ob in self.obligations],
            "prefilter": self.prefilter.to_json(),
            "candidates": [c.to_json() for c in self.candidates],
            "ranked": [r.to_json() for r in self.ranked],
        }


def repair(target_name: str, budget: str = "smoke",
           devices: tuple[str, ...] = DEVICE_ORDER,
           seeds: tuple[int, ...] = (0, 1, 2),
           max_candidates: int = 8,
           shrink: bool = True,
           perf_seed: int = 0) -> RepairReport:
    """Run the full repair pipeline on one target."""
    target = get_target(target_name)
    spans = get_spans()

    with spans.span("repair.localize", target=target_name):
        obligations, events = localize(target, seeds=seeds)

    with spans.span("repair.prefilter", target=target_name):
        filtered = prefilter(target.plan, events, obligations)

    if not obligations:
        return RepairReport(target=target_name, obligations=[],
                            prefilter=filtered, candidates=[], ranked=[],
                            devices=tuple(devices), budget=budget)

    with spans.span("repair.synthesize", target=target_name):
        candidates = synthesize(target, obligations, filtered,
                                max_candidates=max_candidates)

    reference = (reference_output(target)
                 if target.canonical_output else None)

    verdicts: list[CandidateVerdict] = []
    with spans.span("repair.verify", target=target_name):
        for fixset in candidates:
            verdicts.append(verify_candidate(target, fixset,
                                             budget=budget,
                                             reference=reference))

    if shrink:
        with spans.span("repair.shrink", target=target_name):
            shrunk: list[CandidateVerdict] = []
            seen: set[tuple] = set()
            for verdict in verdicts:
                if verdict.accepted:
                    verdict = shrink_fixset(target, verdict,
                                            budget=budget,
                                            reference=reference)
                if verdict.fixset.key() in seen:
                    continue
                seen.add(verdict.fixset.key())
                shrunk.append(verdict)
            verdicts = shrunk

    with spans.span("repair.rank", target=target_name):
        ranked = rank_fixes(target, [v for v in verdicts if v.accepted],
                            devices=tuple(devices), seed=perf_seed)

    return RepairReport(target=target_name, obligations=obligations,
                        prefilter=filtered, candidates=verdicts,
                        ranked=ranked, devices=tuple(devices),
                        budget=budget)
