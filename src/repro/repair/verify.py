"""Stage 4: verify candidate fixes through the DPOR explorer.

A candidate is *accepted* only when, with its fix-set applied:

1. the sleep-set DPOR exploration of the target's verify program finds
   **no** race (actual or predicted) and no invariant violation in any
   explored schedule, within the named budget;
2. a deterministic round-robin execution **completes** (the explorer
   tolerates deadlocked/truncated runs as mere truncations, so an
   always-hanging "fix" could otherwise slip through) and satisfies
   the invariant;
3. for canonical-output targets, that execution's output equals the
   hand-written race-free variant's — output equivalence, not just
   validity.

:func:`shrink_fixset` then greedily removes fixes one at a time while
the set stays accepted, yielding a minimal repair (each removal costs
one full verification, so synthesis can start from a generous set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.check.harness import check
from repro.errors import DeadlockError, ReproError, TransientKernelFault
from repro.gpu.interleave import RoundRobinScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.overrides import site_kind_overrides
from repro.gpu.simt import SimtExecutor
from repro.repair.synth import FixSet
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


@dataclass(frozen=True)
class CandidateVerdict:
    """Everything verification established about one candidate."""

    fixset: FixSet
    race_free: bool                   #: DPOR exploration found nothing
    completes: bool                   #: deterministic run finished
    invariant_ok: bool
    output_equivalent: bool
    schedules_explored: int
    detail: str = ""

    @property
    def accepted(self) -> bool:
        return (self.race_free and self.completes and self.invariant_ok
                and self.output_equivalent)

    @property
    def verdict(self) -> str:
        if self.accepted:
            return "accepted"
        if not self.race_free:
            return "racy"
        if not self.completes:
            return "hangs"
        if not self.invariant_ok:
            return "wrong-result"
        return "output-divergent"

    def to_json(self) -> dict:
        return {
            "fixset": self.fixset.to_json(),
            "verdict": self.verdict,
            "race_free": self.race_free,
            "completes": self.completes,
            "invariant_ok": self.invariant_ok,
            "output_equivalent": self.output_equivalent,
            "schedules_explored": self.schedules_explored,
            "detail": self.detail,
        }


def run_once(target, fixset: FixSet, scheduler=None):
    """One deterministic execution with the fix-set applied.

    Returns ``(completed, invariant_ok, output)``; ``output`` is the
    stashed result array (None for graph-less targets or on hang).
    """
    program = target.build_program(fixset.barriers())
    mem = GlobalMemory()
    handles = program.setup(mem)
    executor = SimtExecutor(
        mem, scheduler=scheduler or RoundRobinScheduler())
    with site_kind_overrides(fixset.kinds()):
        try:
            program.execute(executor, handles)
        except (DeadlockError, TransientKernelFault):
            return False, False, None
    ok = True
    if program.invariant is not None:
        ok = bool(program.invariant(mem, handles))
    output = handles.get("output") if isinstance(handles, dict) else None
    return True, ok, output


def reference_output(target):
    """Deterministic output of the hand-written race-free variant.

    Applies the full Section IV.B transform through the override
    mechanism — the kernels are kind-driven, so this *is* the
    hand-written race-free code path (atomic helpers and all).
    """
    from repro.gpu.accesses import AccessKind
    from repro.repair.synth import Fix

    fixes = tuple(Fix("promote", s.name, to_kind=AccessKind.ATOMIC)
                  for s in target.plan.racy_sites())
    completed, ok, output = run_once(
        target, FixSet(label="reference", fixes=fixes))
    if not completed or not ok:
        return None
    return output


def verify_candidate(target, fixset: FixSet, budget="smoke",
                     reference=None) -> CandidateVerdict:
    """Run one candidate through the full acceptance procedure.

    A candidate whose kernels cannot even execute (e.g. a promotion
    that would need a sub-word atomic the hardware lacks) is rejected
    with the error as detail, not propagated — an unusable fix is just
    a failed candidate.
    """
    try:
        program = target.build_program(fixset.barriers())
        with site_kind_overrides(fixset.kinds()):
            report = check(program, budget=budget, engine="vclock",
                           predictive=True, minimize=False)
        race_free = not report.races
        completes, invariant_ok, output = run_once(target, fixset)
        # an invariant violation surfaced during exploration counts
        # against the invariant, not against race freedom
        invariant_ok = invariant_ok and not report.failures
    except ReproError as exc:
        verdict = CandidateVerdict(
            fixset=fixset, race_free=False, completes=False,
            invariant_ok=False, output_equivalent=False,
            schedules_explored=0,
            detail=f"candidate execution failed: {exc}")
        _count_verdict(target.name, "invalid")
        return verdict
    equivalent = True
    detail = ""
    if (target.canonical_output and reference is not None
            and completes and invariant_ok):
        equivalent = (output is not None
                      and np.array_equal(np.asarray(output),
                                         np.asarray(reference)))
        if not equivalent:
            detail = "output differs from the race-free reference"
    if report.races:
        detail = report.races[0].describe()
    elif report.failures:
        detail = report.failures[0].detail

    verdict = CandidateVerdict(
        fixset=fixset, race_free=race_free, completes=completes,
        invariant_ok=invariant_ok, output_equivalent=equivalent,
        schedules_explored=report.explore.schedules, detail=detail)
    _count_verdict(target.name, verdict.verdict)
    return verdict


def _count_verdict(target_name: str, verdict: str) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.counter("repro_repair_verifications_total",
                    "Candidate verifications, by verdict",
                    ("target", "verdict"),
                    scope=SCOPE_PROCESS).inc(1, target_name, verdict)


def shrink_fixset(target, verdict: CandidateVerdict, budget="smoke",
                  reference=None) -> CandidateVerdict:
    """Greedy minimal-set search from an accepted candidate.

    Repeatedly tries dropping one fix; keeps any drop that leaves the
    set accepted.  Terminates in at most ``size**2`` verifications.
    """
    if not verdict.accepted:
        return verdict
    current = verdict
    improved = True
    while improved and current.fixset.size > 1:
        improved = False
        for fix in current.fixset.fixes:
            trial = current.fixset.without(fix)
            if not trial.fixes:
                continue
            attempt = verify_candidate(target, trial, budget=budget,
                                       reference=reference)
            if attempt.accepted:
                current = attempt
                improved = True
                break
    return current
