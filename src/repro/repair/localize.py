"""Stage 1: localize races into per-site repair obligations.

Runs the target's baseline program under a handful of schedulers
(round-robin plus seeded random interleavings), feeds every recorded
access stream through the vector-clock engine of
:mod:`repro.check.vclock` (predictive mode), and clusters the resulting
:class:`~repro.gpu.racecheck.RaceReport` objects by their
schedule-stable :attr:`~repro.gpu.racecheck.RaceReport.site_id` — one
:class:`SiteObligation` per racy source-site pair, the unit the
synthesizer generates fixes for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeadlockError, TransientKernelFault
from repro.gpu.interleave import RandomScheduler, RoundRobinScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector, RaceReport
from repro.gpu.simt import SimtExecutor
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


@dataclass(frozen=True)
class SiteObligation:
    """One racy source-site pair the repair pipeline must discharge.

    ``sites`` are the kernel-declared plan-site labels of the
    *non-atomic* accesses in the pair — the labels a promotion fix can
    target.  ``predicted_only`` marks obligations seen exclusively as
    predictive (reordering-feasible) reports; they are repaired all the
    same, since a feasible race is a race (Section IV's position).
    """

    obligation_id: str
    array: str
    sites: tuple[str, ...]
    kinds: tuple[str, ...]            #: race kinds seen (read-write, ...)
    predicted_only: bool
    occurrences: int                  #: distinct reports clustered here
    example: str                      #: one human-readable describe()

    def to_json(self) -> dict:
        return {
            "obligation_id": self.obligation_id,
            "array": self.array,
            "sites": list(self.sites),
            "kinds": list(self.kinds),
            "predicted_only": self.predicted_only,
            "occurrences": self.occurrences,
            "example": self.example,
        }


def _count(target: str, n: int) -> None:
    reg = get_registry()
    if reg.enabled and n:
        reg.counter("repro_repair_obligations_total",
                    "Repair obligations produced by localization",
                    ("target",), scope=SCOPE_PROCESS).inc(n, target)


def collect_reports(target, seeds: tuple[int, ...] = (0, 1, 2),
                    max_reports: int = 400):
    """Run the baseline program under several schedules and analyze
    each run's access events with the vector-clock engine.

    Returns ``(reports, events)``: the deduplicated race reports and
    the concatenated access-event streams of every run (the
    pre-filter's dynamic input).
    """
    program = target.build_program(frozenset(),
                                   graph=target.localize_graph)
    schedulers = [RoundRobinScheduler()]
    schedulers += [RandomScheduler(seed=s) for s in seeds]
    detector = RaceDetector(max_reports=max_reports, engine="vclock",
                            predictive=True)
    reports: list[RaceReport] = []
    events = []
    seen: set[tuple] = set()
    for scheduler in schedulers:
        mem = GlobalMemory()
        handles = program.setup(mem)
        executor = SimtExecutor(mem, scheduler=scheduler,
                                record_events=True)
        try:
            program.execute(executor, handles)
        except (DeadlockError, TransientKernelFault):
            pass  # the partial event stream still localizes
        for report in detector.analyze(executor.events):
            key = (report.site_id, report.kind)
            if key not in seen:
                seen.add(key)
                reports.append(report)
        events.extend(executor.events)
    return reports, events


def cluster_obligations(reports: list[RaceReport]) -> list[SiteObligation]:
    """Cluster race reports by stable site id into obligations."""
    by_id: dict[str, list[RaceReport]] = {}
    for report in reports:
        by_id.setdefault(report.site_id, []).append(report)
    obligations = []
    for site_id in sorted(by_id):
        group = by_id[site_id]
        sites: set[str] = set()
        for r in group:
            sites.update(r.fixable_sites)
        obligations.append(SiteObligation(
            obligation_id=site_id,
            array=group[0].array,
            sites=tuple(sorted(sites)),
            kinds=tuple(sorted({r.kind for r in group})),
            predicted_only=all(r.predicted for r in group),
            occurrences=len(group),
            example=group[0].describe(),
        ))
    return obligations


def localize(target, seeds: tuple[int, ...] = (0, 1, 2)):
    """The full localization stage: runs, detection, clustering.

    Returns ``(obligations, events)``; the events feed the dynamic
    half of :func:`repro.repair.prefilter.prefilter`.
    """
    reports, events = collect_reports(target, seeds)
    obligations = cluster_obligations(reports)
    _count(target.name, len(obligations))
    return obligations, events
