"""Stage 2: pre-filter provably race-free sites out of synthesis.

A cheap pass over the access plan plus the localization trace that
gives every plan site a verdict; only ``suspect`` sites are eligible
for fixes.  The static half needs no execution at all:

* ``private`` — the plan declares the site unshared (thread-private
  bytes: read-only CSR structure, per-thread outputs);
* ``atomic`` — the baseline already accesses it atomically (RMW sites
  like ECL-CC's hooking CAS).

The dynamic half classifies the remaining sites from the observed
events of the localization runs:

* ``unexercised`` — never executed on the localization input;
* ``thread_private`` — every byte it touched was touched by exactly
  one thread;
* ``barrier_separated`` — cross-thread byte sharing exists, but every
  such pair is ordered by a launch boundary or a ``__syncthreads()``
  epoch;
* ``suspect`` — implicated in at least one obligation (or sharing
  bytes without ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.accesses import AccessKind
from repro.gpu.simt import AccessEvent
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry

#: verdicts that exclude a site from candidate synthesis
SAFE_VERDICTS = frozenset({
    "private", "atomic", "unexercised", "thread_private",
    "barrier_separated",
})


@dataclass(frozen=True)
class PrefilterReport:
    """Per-site verdicts and the surviving fixable set."""

    verdicts: dict[str, str]

    @property
    def suspect_sites(self) -> tuple[str, ...]:
        return tuple(sorted(
            s for s, v in self.verdicts.items() if v == "suspect"))

    @property
    def filtered_sites(self) -> tuple[str, ...]:
        return tuple(sorted(
            s for s, v in self.verdicts.items() if v in SAFE_VERDICTS))

    def to_json(self) -> dict:
        return {"verdicts": dict(sorted(self.verdicts.items()))}


def _observed(events: list[AccessEvent]) -> dict[str, list[AccessEvent]]:
    per_site: dict[str, list[AccessEvent]] = {}
    for ev in events:
        if ev.site is not None:
            per_site.setdefault(ev.site, []).append(ev)
    return per_site


def _dynamic_verdict(evs: list[AccessEvent]) -> str:
    """Classify one exercised site from its events."""
    # byte → representative access summaries (deduplicated; enough to
    # decide sharing and ordering on the small localization inputs)
    per_byte: dict[tuple[str, int], set[tuple]] = {}
    for ev in evs:
        for byte in range(ev.span.start, ev.span.end):
            per_byte.setdefault((ev.span.array, byte), set()).add(
                (ev.tid, ev.launch, ev.block, ev.epoch))
    shared = False
    for summaries in per_byte.values():
        tids = {s[0] for s in summaries}
        if len(tids) < 2:
            continue
        shared = True
        entries = sorted(summaries)
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                if a[0] == b[0]:
                    continue
                same_launch = a[1] == b[1]
                same_epoch = a[2] == b[2] and a[3] == b[3]
                if same_launch and (a[2] != b[2] or same_epoch):
                    # concurrent: same launch, and either different
                    # blocks or same block without a barrier between
                    return "concurrent"
    return "barrier_separated" if shared else "thread_private"


def prefilter(plan, events: list[AccessEvent],
              obligations) -> PrefilterReport:
    """Assign every plan site a verdict (see module docstring)."""
    implicated: set[str] = set()
    for ob in obligations:
        implicated.update(ob.sites)
    per_site = _observed(events)

    verdicts: dict[str, str] = {}
    for site in plan.sites:
        if not site.shared:
            verdicts[site.name] = "private"
        elif site.kind is AccessKind.ATOMIC or site.is_rmw:
            verdicts[site.name] = "atomic"
        elif site.name in implicated:
            verdicts[site.name] = "suspect"
        elif site.name not in per_site:
            verdicts[site.name] = "unexercised"
        else:
            dynamic = _dynamic_verdict(per_site[site.name])
            # concurrent sharing that produced no report is still kept
            # out of synthesis only when provably ordered
            verdicts[site.name] = ("suspect" if dynamic == "concurrent"
                                   else dynamic)

    reg = get_registry()
    if reg.enabled:
        fam = reg.counter("repro_repair_sites_prefiltered_total",
                          "Plan sites classified by the repair "
                          "pre-filter, by verdict",
                          ("target", "verdict"), scope=SCOPE_PROCESS)
        for verdict in verdicts.values():
            fam.inc(1, plan.algorithm, verdict)
    return PrefilterReport(verdicts=verdicts)
