"""Stage 3: synthesize candidate fix-sets for the open obligations.

Per-site fixes come in three flavors, matching the paper's repertoire:

* ``promote`` to ATOMIC — the Section IV.B transform, per site instead
  of wholesale; byte and half-word sites route through the hand-written
  typecast helpers (Figs. 3b/4b/5) because the kernels branch on the
  *effective* kind;
* ``promote`` to VOLATILE — the cheaper "defeat the register
  allocator" repair (fixes stale-value hangs, not data races; the
  verifier rejects it whenever races remain, which documents *why*
  volatile is not enough — Section VI.A);
* ``barrier`` — insert a ``__syncthreads()`` at one of the target's
  declared slots (only targets that have slots).

Candidates are composed largest-plausible-first; the verifier's greedy
shrink (:func:`repro.repair.verify.shrink_fixset`) reduces an accepted
set to a minimal one, so synthesis does not enumerate the power set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.accesses import AccessKind, MemoryOrder
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


@dataclass(frozen=True)
class Fix:
    """One atomic repair action."""

    action: str                      #: ``promote`` | ``barrier``
    site: str                        #: plan site, or barrier slot name
    to_kind: AccessKind | None = None
    order: MemoryOrder = MemoryOrder.RELAXED

    def describe(self) -> str:
        if self.action == "barrier":
            return f"barrier@{self.site}"
        suffix = ("" if self.order is MemoryOrder.RELAXED
                  else f"[{self.order.value}]")
        return f"{self.site}->{self.to_kind.value}{suffix}"


@dataclass(frozen=True)
class FixSet:
    """A candidate repair: a set of fixes applied together."""

    label: str
    fixes: tuple[Fix, ...]

    def kinds(self) -> dict[str, AccessKind]:
        return {f.site: f.to_kind for f in self.fixes
                if f.action == "promote"}

    def orders(self) -> dict[str, MemoryOrder]:
        return {f.site: f.order for f in self.fixes
                if f.action == "promote"
                and f.order is not MemoryOrder.RELAXED}

    def barriers(self) -> frozenset:
        return frozenset(f.site for f in self.fixes
                         if f.action == "barrier")

    @property
    def size(self) -> int:
        return len(self.fixes)

    def describe(self) -> str:
        if not self.fixes:
            return "(no-op)"
        return " + ".join(f.describe() for f in self.fixes)

    def without(self, fix: Fix) -> "FixSet":
        base = self.label.removesuffix("-shrunk")
        return FixSet(label=f"{base}-shrunk",
                      fixes=tuple(f for f in self.fixes if f != fix))

    def key(self) -> tuple:
        return tuple(sorted((f.action, f.site,
                             f.to_kind.value if f.to_kind else "",
                             f.order.value) for f in self.fixes))

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "fixes": [f.describe() for f in self.fixes],
        }


def _promotions(sites, to_kind: AccessKind,
                order: MemoryOrder = MemoryOrder.RELAXED) -> tuple:
    return tuple(Fix("promote", s, to_kind=to_kind, order=order)
                 for s in sorted(sites))


def synthesize(target, obligations, prefilter_report,
               max_candidates: int = 8) -> list[FixSet]:
    """Compose the candidate fix-sets for ``target``.

    Sites the pre-filter proved safe never appear in a fix; obligations
    whose every site was filtered contribute nothing (they were false
    alarms by construction — the verifier still re-checks the final
    candidate against *all* obligations, so a wrong filter verdict
    surfaces as a rejected fix, not a silent miss).
    """
    eligible: set[str] = set()
    for ob in obligations:
        eligible.update(ob.sites)
    eligible &= set(prefilter_report.suspect_sites)

    candidates: list[FixSet] = []

    # barrier insertions first: cheapest at runtime when they work
    for slot in target.barrier_slots:
        candidates.append(FixSet(
            label=f"barrier:{slot}",
            fixes=(Fix("barrier", slot),)))

    if eligible:
        # volatile promotion of every suspect site (skip sites already
        # volatile in the baseline plan — promoting them is a no-op)
        vol_sites = [s for s in eligible
                     if target.plan.site(s).kind is AccessKind.PLAIN]
        if vol_sites:
            candidates.append(FixSet(
                label="volatile-suspects",
                fixes=_promotions(vol_sites, AccessKind.VOLATILE)))

        # relaxed atomic promotion of every suspect site — the paper's
        # transform restricted to the localized sites
        candidates.append(FixSet(
            label="atomic-suspects",
            fixes=_promotions(eligible, AccessKind.ATOMIC)))

        # the same set under seq_cst, priced differently by the
        # memory-order cost model (the ablation the paper motivates)
        candidates.append(FixSet(
            label="atomic-suspects-seqcst",
            fixes=_promotions(eligible, AccessKind.ATOMIC,
                              MemoryOrder.SEQ_CST)))

    # fallback: the full Section IV.B transform over the whole plan
    full = [s.name for s in target.plan.racy_sites()]
    if full:
        candidates.append(FixSet(
            label="atomic-all",
            fixes=_promotions(full, AccessKind.ATOMIC)))

    # dedupe (e.g. suspects == all racy sites) and cap
    seen: set[tuple] = set()
    unique: list[FixSet] = []
    for cand in candidates:
        if cand.fixes and cand.key() not in seen:
            seen.add(cand.key())
            unique.append(cand)
    dropped = max(0, len(unique) - max_candidates)
    kept = unique[:max_candidates]

    reg = get_registry()
    if reg.enabled:
        fam = reg.counter("repro_repair_candidates_total",
                          "Candidate fix-sets synthesized, by outcome",
                          ("target", "outcome"), scope=SCOPE_PROCESS)
        fam.inc(len(kept), target.name, "synthesized")
        if dropped:
            fam.inc(dropped, target.name, "capped")
    return kept
