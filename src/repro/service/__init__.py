"""repro.service — the sweep engine as a long-lived async job server.

The ROADMAP's "Sweep-as-a-service" layer: a stdlib-only asyncio HTTP/
JSON server (``repro serve``) that accepts study requests (algorithm ×
input × device cells), coalesces identical in-flight cells across
clients, serves hot cells straight from the study memo and
:class:`~repro.perf.trace.TraceCache`, and streams per-cell results as
NDJSON while the robustness ladder keeps it correct under load:

1. **admission control** — a bounded cell queue with per-tenant quotas
   (:mod:`repro.service.quota`); overload is an explicit 429 with
   ``Retry-After``, never unbounded memory;
2. **deadline propagation** — client deadlines flow into
   :class:`~repro.core.resilience.CellBudget` watchdogs, and cells
   every subscriber has abandoned are cancelled, not computed
   (:mod:`repro.service.scheduler`);
3. **per-cell circuit breakers** — repeatedly failing cells stop
   burning pool workers and return their degraded ``FAIL(reason)``
   record instantly (:mod:`repro.service.breaker`);
4. **graceful degradation** — a saturated executor or a sticky-degraded
   trace cache serves cached results marked ``stale: true`` instead of
   erroring;
5. **graceful drain** — SIGTERM stops admissions, finishes or
   checkpoints in-flight cells, and exits cleanly, with ``/healthz``
   and ``/readyz`` backed by :mod:`repro.telemetry` gauges.

See ``docs/service.md`` for the API and tuning knobs, and
``tools/validate_service.py`` for the CI smoke drill.
"""

from __future__ import annotations

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.protocol import CellKey, StudyRequest, parse_study_request
from repro.service.quota import Admission, AdmissionController
from repro.service.scheduler import CellScheduler, StudyExecutor
from repro.service.server import ServiceConfig, SweepService

__all__ = [
    "Admission",
    "AdmissionController",
    "BreakerState",
    "CellKey",
    "CellScheduler",
    "CircuitBreaker",
    "ServiceConfig",
    "StudyExecutor",
    "StudyRequest",
    "SweepService",
    "parse_study_request",
]
