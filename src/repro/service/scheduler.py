"""Cell scheduling: coalescing, deadline propagation, hot/stale
serving, and the bridge from asyncio to the synchronous sweep stack.

Two pieces:

:class:`StudyExecutor`
    Owns one :class:`~repro.core.resilience.ResilientStudy` and a
    single dedicated worker thread.  Every cell execution goes through
    ``study.sweep(device, [algo], [input])`` — the *same* code path the
    CLI sweep uses, so per-cell isolation, retries, fault plans, the
    trace cache, per-cell checkpoint autosaves, and (with ``jobs > 1``)
    the worker-death-tolerant process pool all apply unchanged.  The
    study memo doubles as the hot-result store: a cell any client has
    completed is served without re-simulation, and a cell whose trace
    is cached replays in microseconds.

:class:`CellScheduler`
    The asyncio side.  Identical in-flight cells from different
    clients **coalesce** onto one execution (one record, many
    subscribers); client deadlines propagate into the cell's
    :class:`~repro.core.resilience.CellBudget` wall-clock watchdog; a
    cell whose every subscriber has abandoned it (deadline expired,
    connection gone) is cancelled while still queued instead of
    computed; per-cell :class:`~repro.service.breaker.CircuitBreaker`
    state short-circuits known-bad cells to their cached degraded
    record; and when the executor is saturated or the trace cache has
    sticky-degraded, cached records are served with an explicit
    ``stale: true`` marker instead of queueing more work.

The scheduler is executor-shape agnostic: anything with the
``submit(key, budget_s) -> concurrent.futures.Future`` /
``queued`` / ``degraded`` surface plugs in.  ``repro serve --workers
N`` swaps in :class:`~repro.service.fleet.FleetExecutor`, whose
futures resolve from supervised worker *processes* with crash
failover; a limping fleet (``fleet_degraded``: an evicted worker
slot, or no live workers at all) counts toward
:meth:`CellScheduler.degraded_mode` so stale serving kicks in before
clients pile onto a reduced fleet.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.core.resilience import CellBudget, ResilientStudy
from repro.core.study import SpeedupCell
from repro.core.variants import Variant
from repro.errors import ServiceError
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.protocol import CellKey
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


def _count_cell(outcome: str) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.counter("repro_service_cells_total",
                    "Cells served by the service, by how", ("outcome",),
                    scope=SCOPE_PROCESS).inc(1, outcome)


class StudyExecutor:
    """The synchronous sweep stack behind one worker thread.

    All study access is serialized by ``_study_lock`` — the worker
    thread while executing a cell, the drain path while writing the
    final checkpoint, result readers while rendering ``/v1/results``.
    Counters use a separate lock so the event loop never blocks on an
    executing cell.
    """

    def __init__(self, *, reps: int = 3, scale: float = 1.0,
                 validate: bool = False, retries: int = 0,
                 backoff_s: float = 0.0, max_steps: int | None = None,
                 faults=None, trace_cache=None,
                 checkpoint=None, jobs: int = 1) -> None:
        self._max_steps = max_steps
        self.jobs = jobs
        self.study = ResilientStudy(
            reps=reps, scale=scale, validate=validate, retries=retries,
            backoff_s=backoff_s, budget=CellBudget(max_steps=max_steps),
            faults=faults, checkpoint=checkpoint,
            trace_cache=trace_cache)
        self._study_lock = threading.RLock()
        self._count_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-cell")
        self._queued = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Cell executions queued or running on the worker thread."""
        with self._count_lock:
            return self._queued

    @property
    def degraded(self) -> bool:
        """True once the trace cache has sticky-degraded to memory-only
        operation (repeated disk errors) — the host is unhealthy."""
        cache = self.study.trace_cache
        return cache is not None and cache.degraded

    def submit(self, key: CellKey, budget_s: float | None):
        """Queue one cell; returns the ``concurrent.futures.Future``.

        Cancelling the future before the worker thread picks it up
        skips the execution entirely (the abandoned-work path).
        """
        with self._count_lock:
            if self._closed:
                raise ServiceError("study executor is shut down")
            self._queued += 1
        future = self._pool.submit(self._run, key, budget_s)
        future.add_done_callback(self._one_done)
        return future

    def _one_done(self, _future) -> None:
        with self._count_lock:
            self._queued -= 1

    def _run(self, key: CellKey, budget_s: float | None):
        with self._study_lock:
            study = self.study
            # a previously failed cell is memoized as failed for the
            # study's lifetime; a fresh service-level attempt must
            # actually execute, so re-arm it (the breaker — not the
            # memo — is the service's failure memory)
            for variant in Variant:
                study._failures.pop(
                    (key.algorithm, key.input_name, key.device, variant),
                    None)
            study.budget = CellBudget(max_seconds=budget_s,
                                      max_steps=self._max_steps)
            result = study.sweep(key.device, [key.algorithm],
                                 [key.input_name], jobs=self.jobs)
            return result.cells[0]

    # ------------------------------------------------------------------
    def results_payload(self) -> dict:
        """The ``save_results`` JSON of everything computed so far."""
        with self._study_lock:
            return {"reps": self.study.reps, "scale": self.study.scale,
                    "results": self.study._result_records()}

    def save_results(self, path) -> None:
        with self._study_lock:
            self.study.save_results(path)

    def checkpoint_now(self) -> None:
        """Write a final checkpoint (no-op without a checkpoint path)."""
        with self._study_lock:
            if self.study.checkpoint is not None:
                self.study.save_checkpoint()

    def shutdown(self) -> None:
        with self._count_lock:
            self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
@dataclass
class _Subscriber:
    """One client's stake in one in-flight cell."""

    future: asyncio.Future
    deadline: float | None  # absolute monotonic, None = patient


@dataclass
class _InFlight:
    """One coalesced cell execution and everyone waiting on it."""

    key: CellKey
    subscribers: list[_Subscriber] = field(default_factory=list)
    exec_future: object | None = None  # concurrent.futures.Future
    task: asyncio.Task | None = None


class CellScheduler:
    """Coalescing scheduler over a :class:`StudyExecutor`.

    Parameters
    ----------
    executor:
        The study-owning executor.
    breaker:
        Per-cell circuit breakers (a default 3-failure breaker when
        omitted).
    saturation_threshold:
        Queued executions at which :meth:`degraded_mode` turns on and
        cached records are served stale instead of queueing more work.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, executor: StudyExecutor,
                 breaker: CircuitBreaker | None = None, *,
                 saturation_threshold: int = 8,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.executor = executor
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.saturation_threshold = saturation_threshold
        self._clock = clock
        self._inflight: dict[CellKey, _InFlight] = {}
        self._cache: dict[CellKey, dict] = {}
        #: observability counters (also exported as telemetry)
        self.coalesced = 0
        self.stale_served = 0
        self.short_circuits = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    def degraded_mode(self) -> bool:
        """Whether the ladder's serve-stale rung is active."""
        return (self.executor.queued >= self.saturation_threshold
                or self.executor.degraded
                or bool(getattr(self.executor, "fleet_degraded", False)))

    def inflight_cells(self) -> int:
        return len(self._inflight)

    def cached_record(self, key: CellKey) -> dict | None:
        record = self._cache.get(key)
        return dict(record) if record is not None else None

    # ------------------------------------------------------------------
    async def request_cell(self, key: CellKey,
                           deadline_s: float | None = None) -> dict:
        """One subscriber's record for one cell (the whole ladder).

        Never raises for cell-level problems — every outcome is a
        record dict with a ``status`` — so one bad cell cannot tear
        down a multi-cell response stream.
        """
        now = self._clock()
        deadline = now + deadline_s if deadline_s is not None else None

        if not self.breaker.allow(key):
            # open breaker: the degraded instant answer, pool untouched
            self.short_circuits += 1
            _count_cell("short_circuit")
            cached = self._cache.get(key)
            if cached is not None:
                record = dict(cached)
            else:
                record = {"cell": key.as_dict(), "status": "fail",
                          "reason": "breaker_open",
                          "message": ("circuit breaker is open and no "
                                      "cached record exists")}
            record.update(degraded=True, breaker="open")
            return record
        trial = self.breaker.state(key) is BreakerState.HALF_OPEN

        cached = self._cache.get(key)
        if cached is not None and not trial:
            if cached.get("status") == "ok":
                # the sweep is deterministic: a completed cell is hot
                # forever (backed by the study memo + trace cache)
                _count_cell("cache_hit")
                record = dict(cached)
                record["cached"] = True
                return record
            if self.degraded_mode():
                # saturated or degraded: a stale (failed) record beats
                # queueing yet more doomed work
                self.stale_served += 1
                _count_cell("stale")
                record = dict(cached)
                record.update(stale=True, degraded=True)
                return record

        job = self._inflight.get(key)
        if job is not None:
            self.coalesced += 1
            _count_cell("coalesced")
            subscriber = _Subscriber(
                asyncio.get_running_loop().create_future(), deadline)
            job.subscribers.append(subscriber)
            return await self._await_subscriber(job, subscriber,
                                                coalesced=True)

        job = _InFlight(key=key)
        subscriber = _Subscriber(
            asyncio.get_running_loop().create_future(), deadline)
        job.subscribers.append(subscriber)
        self._inflight[key] = job
        job.task = asyncio.create_task(self._run_job(job))
        return await self._await_subscriber(job, subscriber,
                                            coalesced=False)

    # ------------------------------------------------------------------
    async def _await_subscriber(self, job: _InFlight,
                                subscriber: _Subscriber,
                                coalesced: bool) -> dict:
        """Wait for the job from one subscriber's seat, honoring the
        subscriber's own deadline and abandoning the seat on timeout or
        disconnect (task cancellation)."""
        key = job.key
        try:
            if subscriber.deadline is None:
                record = await subscriber.future
            else:
                timeout = max(0.0, subscriber.deadline - self._clock())
                record = await asyncio.wait_for(
                    asyncio.shield(subscriber.future), timeout)
        except asyncio.TimeoutError:
            self._drop_subscriber(job, subscriber)
            _count_cell("deadline")
            return {"cell": key.as_dict(), "status": "fail",
                    "reason": "deadline",
                    "message": "subscriber deadline expired before the "
                               "cell completed"}
        except asyncio.CancelledError:
            # the client went away (stream broken / request cancelled)
            self._drop_subscriber(job, subscriber)
            raise
        record = dict(record)
        if coalesced:
            record["coalesced"] = True
        return record

    def _drop_subscriber(self, job: _InFlight,
                         subscriber: _Subscriber) -> None:
        if subscriber in job.subscribers:
            job.subscribers.remove(subscriber)
        if not subscriber.future.done():
            subscriber.future.cancel()
        if not job.subscribers and job.exec_future is not None:
            # nobody is waiting any more: cancel the execution if the
            # worker thread has not picked it up yet (abandoned work is
            # cancelled, not computed)
            job.exec_future.cancel()

    def _job_budget(self, job: _InFlight) -> float | None:
        """The cell's wall-clock budget: the most patient subscriber's
        remaining time (None if any subscriber has no deadline)."""
        deadlines = [s.deadline for s in job.subscribers]
        if not deadlines or any(d is None for d in deadlines):
            return None
        return max(0.0, max(deadlines) - self._clock())

    async def _run_job(self, job: _InFlight) -> None:
        key = job.key
        try:
            if not job.subscribers:
                self._finish_cancelled(job)
                return
            budget_s = self._job_budget(job)
            job.exec_future = self.executor.submit(key, budget_s)
            try:
                cell = await asyncio.wrap_future(job.exec_future)
            except asyncio.CancelledError:
                # the queued execution was abandoned before starting
                self._finish_cancelled(job)
                return
            record = self._record_from(key, cell)
            if record["status"] == "ok":
                self.breaker.record_success(key)
            else:
                self.breaker.record_failure(key)
            self._cache[key] = record
            _count_cell("computed")
            for subscriber in job.subscribers:
                if not subscriber.future.done():
                    subscriber.future.set_result(record)
        except Exception as exc:  # harness failure, not a cell failure
            self.breaker.abort_trial(key)
            record = {"cell": key.as_dict(), "status": "fail",
                      "reason": "internal",
                      "message": f"scheduler error: {exc!r}"}
            for subscriber in job.subscribers:
                if not subscriber.future.done():
                    subscriber.future.set_result(record)
        finally:
            self._inflight.pop(key, None)

    def _finish_cancelled(self, job: _InFlight) -> None:
        self.cancelled += 1
        _count_cell("cancelled")
        self.breaker.abort_trial(job.key)

    @staticmethod
    def _record_from(key: CellKey, cell) -> dict:
        if isinstance(cell, SpeedupCell):
            return {"cell": key.as_dict(), "status": "ok",
                    "baseline_ms": cell.baseline_ms,
                    "racefree_ms": cell.racefree_ms,
                    "speedup": cell.speedup}
        return {"cell": key.as_dict(), "status": "fail",
                "reason": cell.reason, "message": cell.message,
                "attempts": cell.attempts}

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait for every in-flight job to resolve (drain path)."""
        tasks = [job.task for job in list(self._inflight.values())
                 if job.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
