"""The asyncio HTTP server: routing, lifecycle, and graceful drain.

:class:`SweepService` wires the pieces together — admission gate in
front, coalescing scheduler behind, one study executor at the bottom —
and owns process lifecycle: ``SIGTERM``/``SIGINT`` trigger a graceful
drain (stop admitting, finish or cancel in-flight cells within the
drain deadline, write a final checkpoint, exit), and ``/healthz`` /
``/readyz`` expose liveness and readiness, mirrored into
:mod:`repro.telemetry` gauges when telemetry is enabled.

Routes::

    GET  /healthz     liveness (200 while the process runs)
    GET  /readyz      readiness (503 while draining; reports degraded)
    GET  /metrics     Prometheus exposition of the telemetry registry
    GET  /v1/results  everything computed so far (save_results payload)
    POST /v1/study    stream per-cell NDJSON records for a study
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import time
from dataclasses import dataclass

from repro.errors import ProtocolError, ServiceError
from repro.perf.trace import TraceCache
from repro.service.protocol import (
    HttpRequest,
    end_ndjson,
    parse_study_request,
    read_request,
    send_json,
    send_ndjson_line,
    start_ndjson,
)
from repro.service.quota import AdmissionController
from repro.service.scheduler import CellScheduler, StudyExecutor
from repro.service.breaker import CircuitBreaker
from repro.telemetry.export import to_prometheus
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry

DRAIN_RETRY_AFTER = "5"


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune, with production-ish
    defaults sized for the simulator's workloads."""

    host: str = "127.0.0.1"
    port: int = 8421
    # study knobs (mirror the sweep CLI)
    reps: int = 3
    scale: float = 1.0
    validate: bool = False
    retries: int = 1
    backoff_s: float = 0.05
    max_steps: int | None = None
    jobs: int = 1
    trace_dir: str | None = None
    checkpoint: str | None = None
    faults: object | None = None  # FaultPlan, injected by the CLI
    # robustness ladder knobs
    max_pending_cells: int = 256
    per_tenant_cells: int = 64
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    saturation_threshold: int = 8
    default_deadline_s: float | None = None
    drain_deadline_s: float = 20.0


class SweepService:
    """One listening sweep server (see module docstring)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        trace_cache = (TraceCache(disk_dir=config.trace_dir)
                       if config.trace_dir else None)
        self.executor = StudyExecutor(
            reps=config.reps, scale=config.scale, validate=config.validate,
            retries=config.retries, backoff_s=config.backoff_s,
            max_steps=config.max_steps, faults=config.faults,
            trace_cache=trace_cache, checkpoint=config.checkpoint,
            jobs=config.jobs)
        self.scheduler = CellScheduler(
            self.executor,
            CircuitBreaker(threshold=config.breaker_threshold,
                           cooldown_s=config.breaker_cooldown_s),
            saturation_threshold=config.saturation_threshold)
        self.admission = AdmissionController(
            max_pending_cells=config.max_pending_cells,
            per_tenant_cells=config.per_tenant_cells)
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False
        self._drained = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — resolves ``port=0``."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not listening")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            family=socket.AF_INET)
        self._install_signal_handlers()
        self._publish_gauges()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                # non-main thread or unsupported platform: callers can
                # still drain programmatically
                pass

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain())

    async def _drain(self) -> None:
        """Stop admissions, let in-flight work land, checkpoint, exit.

        In-flight connections get up to ``drain_deadline_s`` to finish
        streaming; stragglers are cancelled (their subscribers drop and
        queued cells are abandoned), and whatever cells completed are
        in the checkpoint for a future server or ``--resume`` sweep.
        """
        self._draining = True
        self._publish_gauges()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._connections if not t.done()]
        if pending:
            _done, still = await asyncio.wait(
                pending, timeout=self.config.drain_deadline_s)
            for task in still:
                task.cancel()
            if still:
                await asyncio.gather(*still, return_exceptions=True)
        await self.scheduler.drain()
        self.executor.checkpoint_now()
        self.executor.shutdown()
        self._remove_signal_handlers()
        self._publish_gauges()
        self._drained.set()

    def _remove_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def aclose(self) -> None:
        """Drain programmatically (tests; no signal involved)."""
        self.request_drain()
        await self.wait_drained()

    def _publish_gauges(self) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        reg.gauge("repro_service_ready",
                  "1 while the service accepts new studies",
                  scope=SCOPE_PROCESS).set(0.0 if self._draining else 1.0)
        reg.gauge("repro_service_draining",
                  "1 once a graceful drain has begun",
                  scope=SCOPE_PROCESS).set(1.0 if self._draining else 0.0)
        reg.gauge("repro_service_active_requests",
                  "Open client connections",
                  scope=SCOPE_PROCESS).set(float(len(self._connections)))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._publish_gauges()
        try:
            try:
                request = await asyncio.wait_for(read_request(reader),
                                                 timeout=30.0)
            except asyncio.TimeoutError:
                await send_json(writer, 408,
                                {"error": "timed out reading request"})
                return
            except ProtocolError as exc:
                await send_json(writer, 400, {"error": str(exc)})
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; subscribers were dropped in-route
        finally:
            self._publish_gauges()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            await send_json(writer, 200, self._health_payload())
        elif route == ("GET", "/readyz"):
            ready = not self._draining
            await send_json(writer, 200 if ready else 503,
                            self._ready_payload(ready))
        elif route == ("GET", "/metrics"):
            body = to_prometheus(get_registry()).encode()
            writer.write(_plain_response(200, body))
            await writer.drain()
        elif route == ("GET", "/v1/results"):
            await send_json(writer, 200, self.executor.results_payload())
        elif route == ("POST", "/v1/study"):
            await self._handle_study(request, writer)
        elif request.path in ("/healthz", "/readyz", "/metrics",
                              "/v1/results", "/v1/study"):
            await send_json(writer, 405,
                            {"error": f"{request.method} not allowed "
                                      f"on {request.path}"})
        else:
            await send_json(writer, 404,
                            {"error": f"no route {request.path}"})

    def _health_payload(self) -> dict:
        return {"status": "ok",
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "draining": self._draining}

    def _ready_payload(self, ready: bool) -> dict:
        return {"ready": ready,
                "draining": self._draining,
                "degraded": self.scheduler.degraded_mode(),
                "pending_cells": self.admission.pending_cells,
                "queued_executions": self.executor.queued,
                "inflight_cells": self.scheduler.inflight_cells(),
                "open_breakers": [
                    getattr(k, "describe", lambda: str(k))()
                    for k in self.scheduler.breaker.open_keys()],
                "coalesced": self.scheduler.coalesced,
                "stale_served": self.scheduler.stale_served}

    # ------------------------------------------------------------------
    # The study route
    # ------------------------------------------------------------------
    async def _handle_study(self, request: HttpRequest,
                            writer: asyncio.StreamWriter) -> None:
        if self._draining:
            await send_json(
                writer, 503, {"error": "service is draining"},
                extra_headers=(("Retry-After", DRAIN_RETRY_AFTER),))
            return
        try:
            study = parse_study_request(request.body)
        except ProtocolError as exc:
            await send_json(writer, 400, {"error": str(exc)})
            return
        admission = self.admission.try_admit(study.tenant,
                                             len(study.cells))
        if not admission.ok:
            await send_json(
                writer, 429,
                {"error": admission.reason,
                 "retry_after_s": admission.retry_after_s},
                extra_headers=(("Retry-After",
                                admission.retry_after_header),))
            return
        deadline_s = (study.deadline_s
                      if study.deadline_s is not None
                      else self.config.default_deadline_s)
        tasks = [asyncio.create_task(
                     self.scheduler.request_cell(key, deadline_s))
                 for key in study.cells]
        ok = failed = 0
        started = time.monotonic()
        try:
            await start_ndjson(writer)
            for fut in asyncio.as_completed(tasks):
                record = await fut
                if record.get("status") == "ok":
                    ok += 1
                else:
                    failed += 1
                await send_ndjson_line(writer, record)
            await send_ndjson_line(writer, {
                "summary": {"cells": len(study.cells), "ok": ok,
                            "failed": failed, "tenant": study.tenant,
                            "elapsed_s": round(
                                time.monotonic() - started, 3)}})
            await end_ndjson(writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            # client disconnected or the drain deadline cancelled us:
            # abandon our seats so unstarted cells are not computed
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        finally:
            self.admission.release(study.tenant, len(study.cells))


def _plain_response(status: int, body: bytes) -> bytes:
    from repro.service.protocol import response_bytes
    return response_bytes(status, body,
                          content_type="text/plain; version=0.0.4")


# ----------------------------------------------------------------------
# Entry point used by ``repro serve``
# ----------------------------------------------------------------------
async def _serve_main(config: ServiceConfig) -> None:
    service = SweepService(config)
    await service.start()
    host, port = service.address
    print(f"repro service listening on http://{host}:{port}", flush=True)
    await service.wait_drained()
    print("repro service drained cleanly", flush=True)


def serve_forever(config: ServiceConfig) -> int:
    """Run the service until a SIGTERM/SIGINT drain completes."""
    asyncio.run(_serve_main(config))
    return 0
