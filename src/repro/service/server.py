"""The asyncio HTTP server: routing, lifecycle, and graceful drain.

:class:`SweepService` wires the pieces together — admission gate in
front, coalescing scheduler behind, one study executor at the bottom —
and owns process lifecycle: ``SIGTERM``/``SIGINT`` trigger a graceful
drain (stop admitting, finish or cancel in-flight cells within the
drain deadline, write a final checkpoint, exit), and ``/healthz`` /
``/readyz`` expose liveness and readiness, mirrored into
:mod:`repro.telemetry` gauges when telemetry is enabled.

With ``--workers N`` (N > 1) the study executor is the
:class:`~repro.service.fleet.FleetExecutor`: N supervised worker
processes with heartbeats, crash failover, bounded respawn, and an
optional content-addressed shared result store
(:class:`~repro.service.store.ResultStore`, ``--store DIR``).
``/readyz`` then reports **degraded** (503 with JSON reasons) when the
fleet's respawn budget is exhausted or the store has sticky-degraded,
and the drain path waits for every worker before exiting.

Routes::

    GET  /healthz                 liveness (200 while the process runs)
    GET  /readyz                  readiness (503 while draining or
                                  degraded, with JSON reasons)
    GET  /metrics                 Prometheus exposition of the registry
    GET  /v1/results              everything computed so far
    POST /v1/study                stream per-cell NDJSON records
    GET  /v1/study/{id}/events    NDJSON study-progress subscription
                                  (cell start/finish/failover events)
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ProtocolError, ServiceError
from repro.perf.trace import TraceCache
from repro.service.fleet import FleetExecutor
from repro.service.protocol import (
    HttpRequest,
    end_ndjson,
    parse_study_request,
    read_request,
    send_json,
    send_ndjson_line,
    start_ndjson,
)
from repro.service.quota import AdmissionController
from repro.service.scheduler import CellScheduler, StudyExecutor
from repro.service.breaker import CircuitBreaker
from repro.service.store import ResultStore
from repro.telemetry.export import to_prometheus
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry

DRAIN_RETRY_AFTER = "5"

#: completed studies whose event buffers are retained for replay
EVENT_HISTORY = 256


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune, with production-ish
    defaults sized for the simulator's workloads."""

    host: str = "127.0.0.1"
    port: int = 8421
    # study knobs (mirror the sweep CLI)
    reps: int = 3
    scale: float = 1.0
    validate: bool = False
    retries: int = 1
    backoff_s: float = 0.05
    max_steps: int | None = None
    jobs: int = 1
    trace_dir: str | None = None
    checkpoint: str | None = None
    faults: object | None = None  # FaultPlan, injected by the CLI
    # fleet knobs (workers > 1 swaps in the FleetExecutor; fleet
    # workers execute serially, so ``jobs`` is ignored in fleet mode)
    workers: int = 1
    store_dir: str | None = None
    fleet_heartbeat_s: float = 0.5
    fleet_flap_threshold: int = 3
    fleet_flap_cooldown_s: float = 30.0
    fleet_task_deadline_s: float | None = None
    # robustness ladder knobs
    max_pending_cells: int = 256
    per_tenant_cells: int = 64
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    saturation_threshold: int = 8
    default_deadline_s: float | None = None
    drain_deadline_s: float = 20.0


@dataclass
class _StudyEvents:
    """One study's progress-event buffer and its live subscribers."""

    study_id: str
    buffer: list = field(default_factory=list)
    queues: set = field(default_factory=set)
    done: bool = False


class SweepService:
    """One listening sweep server (see module docstring)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        trace_cache = (TraceCache(disk_dir=config.trace_dir)
                       if config.trace_dir else None)
        if config.workers > 1:
            store = (ResultStore(config.store_dir, reps=config.reps,
                                 scale=config.scale)
                     if config.store_dir else None)
            self.executor = FleetExecutor(
                workers=config.workers, reps=config.reps,
                scale=config.scale, validate=config.validate,
                retries=config.retries, backoff_s=config.backoff_s,
                max_steps=config.max_steps, faults=config.faults,
                trace_cache=trace_cache, checkpoint=config.checkpoint,
                store=store, heartbeat_s=config.fleet_heartbeat_s,
                flap_threshold=config.fleet_flap_threshold,
                flap_cooldown_s=config.fleet_flap_cooldown_s,
                task_deadline_s=config.fleet_task_deadline_s)
        else:
            self.executor = StudyExecutor(
                reps=config.reps, scale=config.scale,
                validate=config.validate, retries=config.retries,
                backoff_s=config.backoff_s, max_steps=config.max_steps,
                faults=config.faults, trace_cache=trace_cache,
                checkpoint=config.checkpoint, jobs=config.jobs)
        self.scheduler = CellScheduler(
            self.executor,
            CircuitBreaker(threshold=config.breaker_threshold,
                           cooldown_s=config.breaker_cooldown_s),
            saturation_threshold=config.saturation_threshold)
        self.admission = AdmissionController(
            max_pending_cells=config.max_pending_cells,
            per_tenant_cells=config.per_tenant_cells)
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False
        self._drained = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._started_at = time.monotonic()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._study_seq = 0
        self._events: OrderedDict[str, _StudyEvents] = OrderedDict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — resolves ``port=0``."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not listening")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            family=socket.AF_INET)
        self._loop = asyncio.get_running_loop()
        if isinstance(self.executor, FleetExecutor):
            # fleet events (failover, respawn, eviction) arrive from
            # the supervisor thread; hop onto the loop and fan them out
            # to every active study's event stream
            self.executor.on_event = self._fleet_event_threadsafe
        self._install_signal_handlers()
        self._publish_gauges()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                # non-main thread or unsupported platform: callers can
                # still drain programmatically
                pass

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain())

    async def _drain(self) -> None:
        """Stop admissions, let in-flight work land, checkpoint, exit.

        In-flight connections get up to ``drain_deadline_s`` to finish
        streaming; stragglers are cancelled (their subscribers drop and
        queued cells are abandoned), and whatever cells completed are
        in the checkpoint for a future server or ``--resume`` sweep.
        """
        self._draining = True
        self._publish_gauges()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._connections if not t.done()]
        if pending:
            _done, still = await asyncio.wait(
                pending, timeout=self.config.drain_deadline_s)
            for task in still:
                task.cancel()
            if still:
                await asyncio.gather(*still, return_exceptions=True)
        await self.scheduler.drain()
        self.executor.checkpoint_now()
        self.executor.shutdown()
        self._remove_signal_handlers()
        self._publish_gauges()
        self._drained.set()

    def _remove_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def aclose(self) -> None:
        """Drain programmatically (tests; no signal involved)."""
        self.request_drain()
        await self.wait_drained()

    def _publish_gauges(self) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        reg.gauge("repro_service_ready",
                  "1 while the service accepts new studies",
                  scope=SCOPE_PROCESS).set(0.0 if self._draining else 1.0)
        reg.gauge("repro_service_draining",
                  "1 once a graceful drain has begun",
                  scope=SCOPE_PROCESS).set(1.0 if self._draining else 0.0)
        reg.gauge("repro_service_active_requests",
                  "Open client connections",
                  scope=SCOPE_PROCESS).set(float(len(self._connections)))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._publish_gauges()
        try:
            try:
                request = await asyncio.wait_for(read_request(reader),
                                                 timeout=30.0)
            except asyncio.TimeoutError:
                await send_json(writer, 408,
                                {"error": "timed out reading request"})
                return
            except ProtocolError as exc:
                await send_json(writer, 400, {"error": str(exc)})
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; subscribers were dropped in-route
        finally:
            self._publish_gauges()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        route = (request.method, request.path)
        study_events_id = self._study_events_id(request.path)
        if route == ("GET", "/healthz"):
            await send_json(writer, 200, self._health_payload())
        elif route == ("GET", "/readyz"):
            ready, reasons = self._ready_state()
            await send_json(writer, 200 if ready else 503,
                            self._ready_payload(ready, reasons))
        elif study_events_id is not None:
            if request.method != "GET":
                await send_json(writer, 405,
                                {"error": f"{request.method} not allowed "
                                          f"on {request.path}"})
            else:
                await self._handle_study_events(study_events_id, writer)
        elif route == ("GET", "/metrics"):
            body = to_prometheus(get_registry()).encode()
            writer.write(_plain_response(200, body))
            await writer.drain()
        elif route == ("GET", "/v1/results"):
            await send_json(writer, 200, self.executor.results_payload())
        elif route == ("POST", "/v1/study"):
            await self._handle_study(request, writer)
        elif request.path in ("/healthz", "/readyz", "/metrics",
                              "/v1/results", "/v1/study"):
            await send_json(writer, 405,
                            {"error": f"{request.method} not allowed "
                                      f"on {request.path}"})
        else:
            await send_json(writer, 404,
                            {"error": f"no route {request.path}"})

    def _health_payload(self) -> dict:
        return {"status": "ok",
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "draining": self._draining}

    def _ready_state(self) -> tuple[bool, list[str]]:
        """Readiness and the reasons it is lost.

        The service refuses to claim ready while silently limping: an
        exhausted fleet respawn budget (an evicted worker slot, or no
        live workers) and a sticky-degraded shared result store are
        503s with an explicit reason, not a quiet ``ready: true``.
        """
        reasons: list[str] = []
        if self._draining:
            reasons.append("draining")
        if getattr(self.executor, "fleet_degraded", False):
            reasons.append("fleet_respawn_exhausted")
        store = getattr(self.executor, "store", None)
        if store is not None and store.degraded:
            reasons.append("store_degraded")
        return not reasons, reasons

    def _ready_payload(self, ready: bool, reasons: list[str]) -> dict:
        payload = {"ready": ready,
                   "reasons": reasons,
                   "draining": self._draining,
                   "degraded": self.scheduler.degraded_mode(),
                   "pending_cells": self.admission.pending_cells,
                   "queued_executions": self.executor.queued,
                   "inflight_cells": self.scheduler.inflight_cells(),
                   "open_breakers": [
                       getattr(k, "describe", lambda: str(k))()
                       for k in self.scheduler.breaker.open_keys()],
                   "coalesced": self.scheduler.coalesced,
                   "stale_served": self.scheduler.stale_served}
        status = getattr(self.executor, "fleet_status", None)
        if status is not None:
            payload["fleet"] = status()
        return payload

    # ------------------------------------------------------------------
    # The study route
    # ------------------------------------------------------------------
    async def _handle_study(self, request: HttpRequest,
                            writer: asyncio.StreamWriter) -> None:
        if self._draining:
            await send_json(
                writer, 503, {"error": "service is draining"},
                extra_headers=(("Retry-After", DRAIN_RETRY_AFTER),))
            return
        try:
            study = parse_study_request(request.body)
        except ProtocolError as exc:
            await send_json(writer, 400, {"error": str(exc)})
            return
        admission = self.admission.try_admit(study.tenant,
                                             len(study.cells))
        if not admission.ok:
            await send_json(
                writer, 429,
                {"error": admission.reason,
                 "retry_after_s": admission.retry_after_s},
                extra_headers=(("Retry-After",
                                admission.retry_after_header),))
            return
        deadline_s = (study.deadline_s
                      if study.deadline_s is not None
                      else self.config.default_deadline_s)
        study_id = self._new_study()
        for key in study.cells:
            self._publish_event(study_id, {"event": "cell_start",
                                           "cell": key.as_dict()})
        tasks = [asyncio.create_task(
                     self.scheduler.request_cell(key, deadline_s))
                 for key in study.cells]
        ok = failed = 0
        started = time.monotonic()
        try:
            await start_ndjson(writer)
            await send_ndjson_line(writer, {"study_id": study_id})
            for fut in asyncio.as_completed(tasks):
                record = await fut
                if record.get("status") == "ok":
                    ok += 1
                else:
                    failed += 1
                self._publish_event(study_id, {
                    "event": "cell_finish", "cell": record.get("cell"),
                    "status": record.get("status")})
                await send_ndjson_line(writer, record)
            await send_ndjson_line(writer, {
                "summary": {"cells": len(study.cells), "ok": ok,
                            "failed": failed, "tenant": study.tenant,
                            "study_id": study_id,
                            "elapsed_s": round(
                                time.monotonic() - started, 3)}})
            await end_ndjson(writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            # client disconnected or the drain deadline cancelled us:
            # abandon our seats so unstarted cells are not computed
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        finally:
            self._finish_study(study_id, {
                "event": "study_done",
                "cells": len(study.cells), "ok": ok, "failed": failed})
            self.admission.release(study.tenant, len(study.cells))

    # ------------------------------------------------------------------
    # Study-progress events (GET /v1/study/{id}/events)
    # ------------------------------------------------------------------
    @staticmethod
    def _study_events_id(path: str) -> str | None:
        """The study id of an events-subscription path, or None."""
        prefix, suffix = "/v1/study/", "/events"
        if not (path.startswith(prefix) and path.endswith(suffix)):
            return None
        study_id = path[len(prefix):-len(suffix)]
        return study_id if study_id and "/" not in study_id else None

    def _new_study(self) -> str:
        self._study_seq += 1
        study_id = f"s{self._study_seq:06d}"
        self._events[study_id] = _StudyEvents(study_id=study_id)
        while len(self._events) > EVENT_HISTORY:
            self._events.popitem(last=False)
        return study_id

    def _publish_event(self, study_id: str, event: dict) -> None:
        entry = self._events.get(study_id)
        if entry is None or entry.done:
            return
        event = {"study": study_id, **event}
        entry.buffer.append(event)
        for queue in list(entry.queues):
            queue.put_nowait(event)

    def _finish_study(self, study_id: str, event: dict) -> None:
        self._publish_event(study_id, event)
        entry = self._events.get(study_id)
        if entry is not None:
            entry.done = True

    def _fleet_event_threadsafe(self, event: dict) -> None:
        """Fleet supervisor callback: hop to the loop, then fan out."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._fleet_event, dict(event))
        except RuntimeError:  # loop shut down mid-callback
            pass

    def _fleet_event(self, event: dict) -> None:
        """Failover/respawn/eviction events go to every open study —
        a subscriber watching cell progress needs to see why a cell is
        suddenly taking a second trip."""
        for study_id, entry in list(self._events.items()):
            if not entry.done:
                self._publish_event(study_id, event)

    async def _handle_study_events(self, study_id: str,
                                   writer: asyncio.StreamWriter) -> None:
        entry = self._events.get(study_id)
        if entry is None:
            await send_json(writer, 404,
                            {"error": f"no study {study_id!r}"})
            return
        queue: asyncio.Queue = asyncio.Queue()
        # subscribe before snapshotting the buffer (same loop tick, so
        # replay + live consumption is the exact event sequence)
        if not entry.done:
            entry.queues.add(queue)
        replay = list(entry.buffer)
        try:
            await start_ndjson(writer)
            for event in replay:
                await send_ndjson_line(writer, event)
            if not entry.done:
                while True:
                    event = await queue.get()
                    await send_ndjson_line(writer, event)
                    if event.get("event") == "study_done":
                        break
            await end_ndjson(writer)
        finally:
            entry.queues.discard(queue)


def _plain_response(status: int, body: bytes) -> bytes:
    from repro.service.protocol import response_bytes
    return response_bytes(status, body,
                          content_type="text/plain; version=0.0.4")


# ----------------------------------------------------------------------
# Entry point used by ``repro serve``
# ----------------------------------------------------------------------
async def _serve_main(config: ServiceConfig) -> None:
    service = SweepService(config)
    await service.start()
    host, port = service.address
    print(f"repro service listening on http://{host}:{port}", flush=True)
    await service.wait_drained()
    print("repro service drained cleanly", flush=True)


def serve_forever(config: ServiceConfig) -> int:
    """Run the service until a SIGTERM/SIGINT drain completes."""
    asyncio.run(_serve_main(config))
    return 0
