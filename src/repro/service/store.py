"""Content-addressed shared result store for the worker fleet.

Fleet replicas (and successive server incarnations pointed at the same
directory) share completed cells through one on-disk store instead of
recomputing them: each fully-``ok`` cell is published as
``cell-<digest>.json``, where the digest is a blake2b hash of the cell
identity *and* the study policy (``reps``/``scale``/format version), so
a store can never serve records produced under a different policy.

The durability ladder is the trace cache's (see
:class:`~repro.perf.trace.TraceCache`), applied record-by-record:

* **atomic publish** — every record is written through
  :func:`repro.utils.atomicio.atomic_write_text` (temp file + fsync +
  rename), so a crash or injected torn write never leaves a partially
  visible record under the final name;
* **CRC self-checking** — each record embeds a CRC32 of its canonical
  JSON; a torn, truncated, or bit-flipped record fails validation on
  read and is **quarantined** (renamed to ``*.corrupt``) rather than
  served, and the cell is simply recomputed;
* **sticky degrade** — after :data:`DEGRADE_AFTER` consecutive publish
  failures (disk full, I/O errors) the store stops touching the disk
  and serves from its in-memory mirror only; ``/readyz`` reports the
  degraded state.

Publishing is *best effort* and lookups are *advisory*: a store failure
never fails a cell, it only costs a recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.perf.trace import payload_crc
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.utils.atomicio import atomic_write_text

STORE_FORMAT = 1

DEGRADE_AFTER = 3
"""Consecutive publish failures after which the store sticky-degrades
to memory-only operation (mirrors the trace cache's ladder)."""


def _count_event(event: str) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.counter("repro_fleet_store_events_total",
                    "Shared result store events, by kind", ("event",),
                    scope=SCOPE_PROCESS).inc(1, event)


def _set_degraded_gauge(value: int) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.gauge("repro_fleet_store_degraded",
                  "1 while the shared result store is memory-only",
                  scope=SCOPE_PROCESS).set(value)


class ResultStore:
    """One directory of content-addressed, CRC-checked cell records.

    Parameters
    ----------
    disk_dir:
        Directory for ``cell-*.json`` records (created on demand).
    reps / scale:
        The owning study's policy; part of every cell's address so
        records never cross policy boundaries.
    """

    def __init__(self, disk_dir, *, reps: int, scale: float) -> None:
        self.disk_dir = Path(disk_dir)
        self.reps = int(reps)
        self.scale = float(scale)
        self._mem: dict[str, list[dict]] = {}
        self._degraded = False
        self._consecutive_errors = 0
        #: observability counters (also exported as telemetry)
        self.hits = 0
        self.misses = 0
        self.publishes = 0
        self.quarantined = 0
        self.disk_errors = 0

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the store has sticky-degraded to memory-only."""
        return self._degraded

    def status(self) -> dict:
        return {"dir": str(self.disk_dir), "degraded": self._degraded,
                "hits": self.hits, "misses": self.misses,
                "publishes": self.publishes,
                "quarantined": self.quarantined,
                "disk_errors": self.disk_errors}

    # ------------------------------------------------------------------
    def digest(self, algorithm: str, input_name: str, device: str) -> str:
        """The content address of one cell under this store's policy."""
        identity = repr((STORE_FORMAT, self.reps, self.scale,
                         algorithm, input_name, device))
        return hashlib.blake2b(identity.encode("utf-8"),
                               digest_size=16).hexdigest()

    def _path(self, digest: str) -> Path:
        return self.disk_dir / f"cell-{digest}.json"

    # ------------------------------------------------------------------
    def publish(self, algorithm: str, input_name: str, device: str,
                records: list[dict]) -> None:
        """Publish one completed cell's ``result`` records.

        Only fully-successful cells are publishable — failures stay
        local (they are policy- and deadline-dependent, not content).
        Publish errors degrade the store, never the cell.
        """
        if not records or any(r.get("kind") != "result" for r in records):
            return
        digest = self.digest(algorithm, input_name, device)
        self._mem[digest] = [dict(r) for r in records]
        if self._degraded:
            return
        payload = {"format": STORE_FORMAT, "reps": self.reps,
                   "scale": self.scale, "algorithm": algorithm,
                   "input": input_name, "device": device,
                   "records": records}
        payload["crc"] = payload_crc(payload)
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self._path(digest),
                              json.dumps(payload, sort_keys=True))
        except OSError:
            self.disk_errors += 1
            self._consecutive_errors += 1
            _count_event("disk_error")
            if self._consecutive_errors >= DEGRADE_AFTER:
                self._degraded = True
                _set_degraded_gauge(1)
            return
        self._consecutive_errors = 0
        self.publishes += 1
        _count_event("publish")

    # ------------------------------------------------------------------
    def lookup(self, algorithm: str, input_name: str,
               device: str) -> list[dict] | None:
        """The cell's published ``result`` records, or None.

        Validation mirrors the trace cache's read ladder: unreadable is
        a miss, unparsable/mis-shapen/checksum-failed records are
        quarantined as ``*.corrupt``, and identity or policy mismatches
        (a digest collision would be the only path here) are misses.
        """
        digest = self.digest(algorithm, input_name, device)
        cached = self._mem.get(digest)
        if cached is not None:
            self.hits += 1
            _count_event("hit")
            return [dict(r) for r in cached]
        records = self._read_disk(digest, algorithm, input_name, device)
        if records is None:
            self.misses += 1
            _count_event("miss")
            return None
        self._mem[digest] = records
        self.hits += 1
        _count_event("hit")
        return [dict(r) for r in records]

    def _read_disk(self, digest: str, algorithm: str, input_name: str,
                   device: str) -> list[dict] | None:
        if self._degraded:
            return None
        path = self._path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path, "torn")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "shape")
            return None
        if payload.get("format") != STORE_FORMAT:
            return None
        if payload_crc(payload) != payload.get("crc"):
            self._quarantine(path, "checksum")
            return None
        records = payload.get("records")
        if (not isinstance(records, list) or not records
                or any(not isinstance(r, dict) or r.get("kind") != "result"
                       for r in records)):
            self._quarantine(path, "shape")
            return None
        if (payload.get("algorithm") != algorithm
                or payload.get("input") != input_name
                or payload.get("device") != device
                or payload.get("reps") != self.reps
                or payload.get("scale") != self.scale):
            return None
        return records

    def _quarantine(self, path: Path, cause: str) -> None:
        """Move a failed record aside so it is never re-read, and the
        bad bytes remain available for a post-mortem."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - already gone
            pass
        self.quarantined += 1
        _count_event("quarantined")
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_host_corrupt_quarantined_total",
                        "Corrupt artifacts quarantined, by cause",
                        ("cause",), scope=SCOPE_PROCESS).inc(1, cause)
