"""Admission control: a bounded cell queue with per-tenant quotas.

The first rung of the degradation ladder.  Every admitted study
request reserves its cell count against two budgets — a global bound
(the server's total appetite for queued + running cells) and a
per-tenant bound (no single client can starve the rest) — and releases
the reservation when its response stream finishes.  A request that
does not fit is rejected *immediately* with a 429-style
:class:`Admission` carrying a ``Retry-After`` hint, computed from the
shared :class:`~repro.utils.backoff.BackoffPolicy` so repeatedly
rejected tenants are pushed back exponentially (with full jitter, so a
rejected herd does not return in lockstep).

Nothing here queues anything: admission is a pure counting gate, which
is what makes the memory bound hard — the server's queue depth can
never exceed ``max_pending_cells`` regardless of client behavior.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.utils.backoff import BackoffPolicy

DEFAULT_RETRY_BACKOFF = BackoffPolicy(base_s=1.0, cap_s=60.0)


@dataclass(frozen=True)
class Admission:
    """Outcome of one admission decision."""

    ok: bool
    reason: str = ""
    retry_after_s: float = 0.0

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` wants integral seconds; round up, min 1."""
        return str(max(1, math.ceil(self.retry_after_s)))


class AdmissionController:
    """Counting gate over in-flight cells, global and per tenant.

    Parameters
    ----------
    max_pending_cells:
        Global bound on reserved (queued + running) cells.
    per_tenant_cells:
        Bound per tenant name.
    backoff:
        Policy behind the ``Retry-After`` hint; attempt index is the
        tenant's consecutive-rejection count, so a tenant hammering a
        full server is told to back off progressively further.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, max_pending_cells: int = 256,
                 per_tenant_cells: int = 64,
                 backoff: BackoffPolicy = DEFAULT_RETRY_BACKOFF,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_pending_cells < 1:
            raise ValueError(
                f"max_pending_cells must be >= 1, got {max_pending_cells}")
        if per_tenant_cells < 1:
            raise ValueError(
                f"per_tenant_cells must be >= 1, got {per_tenant_cells}")
        self.max_pending_cells = max_pending_cells
        self.per_tenant_cells = per_tenant_cells
        self.backoff = backoff
        self._clock = clock
        self._pending = 0
        self._per_tenant: dict[str, int] = {}
        self._rejections: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def pending_cells(self) -> int:
        return self._pending

    def tenant_cells(self, tenant: str) -> int:
        return self._per_tenant.get(tenant, 0)

    def _publish(self) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        reg.gauge("repro_service_pending_cells",
                  "Cells currently reserved by admitted requests",
                  scope=SCOPE_PROCESS).set(self._pending)

    def _count(self, outcome: str) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_service_admissions_total",
                        "Admission decisions, by outcome", ("outcome",),
                        scope=SCOPE_PROCESS).inc(1, outcome)

    # ------------------------------------------------------------------
    def try_admit(self, tenant: str, n_cells: int) -> Admission:
        """Reserve ``n_cells`` for ``tenant``, or reject with a hint.

        A rejection reserves nothing; an admission must be paired with
        exactly one :meth:`release` when the request finishes (stream
        closed, errored, or drained).
        """
        if n_cells < 1:
            return Admission(ok=False, reason="empty request")
        if n_cells > self.per_tenant_cells:
            # can never fit; retrying won't help, but tell the client
            # the structural reason rather than a transient one
            self._count("oversized")
            return Admission(
                ok=False,
                reason=(f"request of {n_cells} cells exceeds the "
                        f"per-tenant quota of {self.per_tenant_cells}"),
                retry_after_s=self.backoff.nominal(0))
        used = self._per_tenant.get(tenant, 0)
        if used + n_cells > self.per_tenant_cells:
            return self._reject(
                tenant,
                f"tenant {tenant!r} is using {used} of "
                f"{self.per_tenant_cells} cells")
        if self._pending + n_cells > self.max_pending_cells:
            return self._reject(
                tenant,
                f"server is at {self._pending} of "
                f"{self.max_pending_cells} pending cells")
        self._pending += n_cells
        self._per_tenant[tenant] = used + n_cells
        self._rejections.pop(tenant, None)
        self._count("admitted")
        self._publish()
        return Admission(ok=True)

    def _reject(self, tenant: str, reason: str) -> Admission:
        attempt = self._rejections.get(tenant, 0)
        self._rejections[tenant] = attempt + 1
        retry_after = self.backoff.delay(attempt, salt=tenant)
        self._count("rejected")
        return Admission(ok=False, reason=reason,
                         retry_after_s=retry_after)

    def release(self, tenant: str, n_cells: int) -> None:
        """Return a reservation made by :meth:`try_admit`."""
        self._pending = max(0, self._pending - n_cells)
        used = self._per_tenant.get(tenant, 0) - n_cells
        if used > 0:
            self._per_tenant[tenant] = used
        else:
            self._per_tenant.pop(tenant, None)
        self._publish()
