"""The worker fleet: N supervised sweep processes behind one listener.

:class:`FleetExecutor` is a drop-in replacement for
:class:`~repro.service.scheduler.StudyExecutor` (same ``submit`` /
``results_payload`` / ``checkpoint_now`` / ``shutdown`` surface) that
executes cells on a fleet of long-lived worker *processes* instead of
one worker thread:

* **workers** are forked processes, each owning a private
  :class:`~repro.core.resilience.ResilientStudy` built from the same
  :class:`~repro.core.parallel.WorkerConfig` policy the offline pool
  uses (same fault plans, trace-cache disk layer, telemetry deltas);
* a **supervisor thread** health-checks them over duplex pipes:
  heartbeats every ``heartbeat_s``, pipe EOF detects kills instantly,
  a missing heartbeat or an expired per-task deadline detects stalls;
* a dead worker's in-flight cell is **redispatched at most once** to a
  surviving worker (preferring the freshest generation, which under
  ``disrupt_generations``-bounded kill plans is the one that will
  survive); a cell that dies twice fails with ``reason="fleet"``
  instead of looping;
* each worker slot has a **flap circuit-breaker**
  (:class:`~repro.service.breaker.CircuitBreaker` keyed per slot):
  every death is a failure, every completed cell a success, and a slot
  whose breaker opens is **evicted** — bounded respawn, so a
  crash-looping worker cannot starve its siblings;
* completed records are staged per submission index and folded into
  the parent's ledger study **strictly in submission order** — exactly
  the :func:`repro.core.parallel.execute_tasks` discipline — so
  ``/v1/results`` and checkpoints stay byte-identical to the
  single-worker serial path;
* an optional :class:`~repro.service.store.ResultStore` serves
  published cells without dispatching (store-served cells do not count
  as executed and carry no telemetry records, so nothing is priced
  twice) and receives every fully-``ok`` cell for other replicas.

Worker kill/stall injection rides the host-fault layer:
:func:`repro.core.hostfaults.maybe_disrupt_fleet` draws on the
installed plan keyed on (worker id, cell identity) and the worker's
*generation*, so ``disrupt_generations=1`` kills every first-generation
worker exactly once and lets respawns make progress.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import stat
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from statistics import median

from repro.core.resilience import CellBudget, CellFailure, ResilientStudy
from repro.core.study import SpeedupCell
from repro.core.variants import Variant
from repro.errors import ServiceError
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import CellKey
from repro.service.store import ResultStore
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


def _count_fleet(name: str, help_text: str) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.counter(name, help_text, scope=SCOPE_PROCESS).inc(1)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _close_foreign_sockets(keep_fd: int) -> None:
    """Close inherited sockets that belong to the supervisor process.

    A worker forked mid-study inherits every descriptor the supervisor
    holds at fork time: the asyncio listening socket, any *accepted
    client connections*, and the socketpairs of sibling workers.  A
    long-lived child keeping a client socket open means the peer never
    sees EOF after the server closes its side — the response hangs at
    the client even though the server finished.  Only ``keep_fd``
    (this worker's own duplex pipe, itself a socketpair) survives.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - non-/proc platforms
        fds = list(range(3, 256))
    for fd in fds:
        if fd == keep_fd or fd < 3:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _fleet_worker_main(conn, config, worker_id: int, generation: int,
                       heartbeat_s: float) -> None:
    """One fleet worker: a persistent cell-execution loop.

    Policy setup is :func:`repro.core.parallel._init_worker` verbatim
    (signal hygiene, telemetry enable/clear, host-fault plan install,
    private study + trace cache), so a fleet worker's execution of a
    cell is indistinguishable from a pool worker's.
    """
    from repro.core import hostfaults, parallel

    _close_foreign_sockets(conn.fileno())
    parallel._init_worker(config)
    study = parallel._WORKER_STUDY
    send_lock = threading.Lock()
    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(heartbeat_s):
            try:
                with send_lock:
                    conn.send(("beat", worker_id))
            except (OSError, ValueError, BrokenPipeError):
                return

    threading.Thread(target=beat, name=f"fleet-beat-{worker_id}",
                     daemon=True).start()
    max_steps = getattr(config.budget, "max_steps", None)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, task_id, key, budget_s = msg
            algorithm, input_name, device = key
            # the injected kill/stall window: deterministic on the
            # (worker, cell) identity, bounded by the worker generation
            hostfaults.maybe_disrupt_fleet(
                hostfaults.active_plan(), worker_id, key, generation)
            # a service-level retry of a failed cell must actually
            # execute: re-arm the failure memo, like StudyExecutor
            for variant in Variant:
                study._failures.pop(
                    (algorithm, input_name, device, variant), None)
            study.budget = CellBudget(max_seconds=budget_s,
                                      max_steps=max_steps)
            records: list[dict] = []
            for variant in (Variant.BASELINE, Variant.RACE_FREE):
                out = study.run_cell(algorithm, input_name, device,
                                     variant)
                if isinstance(out, CellFailure):
                    records.append({
                        "kind": "failure", "algorithm": out.algorithm,
                        "input": out.input_name,
                        "device": out.device_key, "variant": out.variant,
                        "reason": out.reason, "message": out.message,
                        "attempts": out.attempts,
                        "elapsed_s": out.elapsed_s,
                    })
                    # mirror speedup_cell: a failed baseline
                    # short-circuits the race-free run, keeping the
                    # ledger memo identical to the serial path's
                    break
                records.append({
                    "kind": "result", "algorithm": out.algorithm,
                    "input": out.input_name, "device": out.device_key,
                    "variant": out.variant.value,
                    "runtimes_ms": list(out.runtimes_ms),
                })
            parallel._append_telemetry_record(records)
            try:
                with send_lock:
                    conn.send(("done", task_id, records))
            except (OSError, ValueError, BrokenPipeError):
                break
    finally:
        stop_beat.set()
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------

@dataclass
class _FleetTask:
    """One submitted cell: its seat in the merge order and its fate."""

    task_id: int                 #: doubles as the submission index
    key: CellKey
    budget_s: float | None
    future: Future
    dispatches: int = 0
    resolved: bool = False


class _Slot:
    """One supervised worker slot across its respawn generations."""

    __slots__ = ("slot_id", "proc", "conn", "generation", "state",
                 "task_id", "task_started", "last_beat", "beat_flagged",
                 "dispatched", "completed")

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.proc = None
        self.conn = None
        self.generation = -1
        self.state = "dead"     # idle | busy | dead | evicted
        self.task_id: int | None = None
        self.task_started = 0.0
        self.last_beat = 0.0
        self.beat_flagged = False
        self.dispatched = 0
        self.completed = 0

    @property
    def live(self) -> bool:
        return self.state in ("idle", "busy")


class FleetExecutor:
    """N supervised worker processes behind the StudyExecutor surface.

    Parameters mirror :class:`~repro.service.scheduler.StudyExecutor`
    plus the fleet knobs; ``trace_cache`` backs the parent ledger and
    its ``disk_dir`` is the shared layer workers record traces into,
    ``store`` is the optional shared result store, and ``flap_*``
    configure the per-slot respawn circuit-breaker (``flap_threshold``
    consecutive deaths evict the slot).
    """

    #: heartbeats a worker may miss before it is flagged (telemetry),
    #: and before it is declared dead and torn down
    MISS_AFTER = 3
    DEAD_AFTER = 20

    def __init__(self, *, workers: int = 2, reps: int = 3,
                 scale: float = 1.0, validate: bool = False,
                 retries: int = 0, backoff_s: float = 0.0,
                 max_steps: int | None = None, faults=None,
                 trace_cache=None, checkpoint=None,
                 store: ResultStore | None = None,
                 heartbeat_s: float = 0.5,
                 flap_threshold: int = 3,
                 flap_cooldown_s: float = 30.0,
                 task_deadline_s: float | None = None) -> None:
        if workers < 1:
            raise ServiceError(f"fleet needs >= 1 worker, got {workers}")
        self.workers = workers
        self.jobs = 1  # cells are the parallelism unit; workers run serial
        self._max_steps = max_steps
        self.store = store
        self.heartbeat_s = heartbeat_s
        self.task_deadline_s = task_deadline_s
        self.study = ResilientStudy(
            reps=reps, scale=scale, validate=validate, retries=retries,
            backoff_s=backoff_s, budget=CellBudget(max_steps=max_steps),
            faults=faults, checkpoint=checkpoint, trace_cache=trace_cache)
        self._study_lock = threading.RLock()
        self._count_lock = threading.Lock()
        self._fleet_lock = threading.RLock()
        self._queued = 0
        self._closed = False
        self.flap_breaker = CircuitBreaker(threshold=flap_threshold,
                                           cooldown_s=flap_cooldown_s)
        #: observability counters (also exported as telemetry)
        self.respawns = 0
        self.redispatches = 0
        self.heartbeat_misses = 0
        self.evictions = 0
        self.fleet_failures = 0
        #: optional thread-safe callback receiving fleet event dicts
        self.on_event = None

        self._tasks: dict[int, _FleetTask] = {}
        self._task_seq = 0
        self._queue: deque[int] = deque()
        self._staged: dict[int, tuple[list[dict], bool]] = {}
        self._flushed = 0
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self._slots = [_Slot(i) for i in range(workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor",
            daemon=True)
        self._supervisor.start()

    # ------------------------------------------------------------------
    # StudyExecutor surface
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Cells submitted and not yet resolved."""
        with self._count_lock:
            return self._queued

    @property
    def degraded(self) -> bool:
        cache = self.study.trace_cache
        return cache is not None and cache.degraded

    @property
    def fleet_degraded(self) -> bool:
        """True when the respawn budget has been spent somewhere: a
        slot was evicted (flap breaker open) or every worker is gone."""
        with self._fleet_lock:
            slots = self._slots
            return (any(s.state == "evicted" for s in slots)
                    or not any(s.live for s in slots))

    def submit(self, key: CellKey, budget_s: float | None) -> Future:
        """Queue one cell; returns a ``concurrent.futures.Future``.

        Serving ladder: ledger memo (free) → shared store (merge
        without execution) → dispatch to the fleet.  Cancelling the
        future before a worker picks the cell up skips it entirely.
        """
        with self._count_lock:
            if self._closed:
                raise ServiceError("fleet executor is shut down")
            self._queued += 1
        future: Future = Future()
        future.add_done_callback(self._one_done)

        cell = self._serve_from_memo(key)
        if cell is not None:
            future.set_result(cell)
            return future

        with self._fleet_lock:
            task_id = self._task_seq
            self._task_seq += 1
            task = _FleetTask(task_id=task_id, key=key,
                              budget_s=budget_s, future=future)
            self._tasks[task_id] = task
            records = self._store_lookup(key)
            if records is not None:
                self._stage(task_id, records, executed=False)
                self._resolve(task, records)
            else:
                self._queue.append(task_id)
        return future

    def _one_done(self, _future) -> None:
        with self._count_lock:
            self._queued -= 1

    def results_payload(self) -> dict:
        with self._study_lock:
            return {"reps": self.study.reps, "scale": self.study.scale,
                    "results": self.study._result_records()}

    def save_results(self, path) -> None:
        with self._study_lock:
            self.study.save_results(path)

    def checkpoint_now(self) -> None:
        with self._study_lock:
            if self.study.checkpoint is not None:
                self.study.save_checkpoint()

    def shutdown(self) -> None:
        """Stop the fleet: workers get a stop message and a join
        grace, stragglers are killed, unresolved cells fail."""
        with self._count_lock:
            self._closed = True
        self._stop.set()
        self._supervisor.join(timeout=10.0)
        with self._fleet_lock:
            for slot in self._slots:
                if slot.live and slot.conn is not None:
                    try:
                        slot.conn.send(("stop",))
                    except (OSError, ValueError, BrokenPipeError):
                        pass
            for slot in self._slots:
                if slot.proc is not None:
                    slot.proc.join(timeout=2.0)
                    if slot.proc.is_alive():
                        slot.proc.kill()
                        slot.proc.join(timeout=2.0)
                if slot.conn is not None:
                    try:
                        slot.conn.close()
                    except OSError:  # pragma: no cover
                        pass
                if slot.live:
                    slot.state = "dead"
            for task in self._tasks.values():
                if not task.resolved:
                    self._resolve_failure(task, "shutdown",
                                          "fleet shut down before the "
                                          "cell completed")

    # ------------------------------------------------------------------
    # Fleet status
    # ------------------------------------------------------------------
    def fleet_status(self) -> dict:
        with self._fleet_lock:
            workers = [{
                "id": s.slot_id,
                "pid": s.proc.pid if s.proc is not None else None,
                "generation": s.generation,
                "state": s.state,
                "dispatched": s.dispatched,
                "completed": s.completed,
            } for s in self._slots]
        return {"workers": workers, "respawns": self.respawns,
                "redispatches": self.redispatches,
                "heartbeat_misses": self.heartbeat_misses,
                "evictions": self.evictions,
                "store": self.store.status() if self.store else None}

    def _emit(self, event: dict) -> None:
        callback = self.on_event
        if callback is not None:
            try:
                callback(event)
            except Exception:  # pragma: no cover - observer bug
                pass

    # ------------------------------------------------------------------
    # Serving without execution
    # ------------------------------------------------------------------
    def _serve_from_memo(self, key: CellKey) -> SpeedupCell | None:
        """A cell both of whose variants are memoized (checkpoint or
        earlier merge) is served straight from the ledger."""
        with self._study_lock:
            results = self.study._results
            base = results.get((key.algorithm, key.input_name,
                                key.device, Variant.BASELINE))
            free = results.get((key.algorithm, key.input_name,
                                key.device, Variant.RACE_FREE))
        if base is None or free is None:
            return None
        return SpeedupCell(key.algorithm, key.input_name, key.device,
                           baseline_ms=base.median_ms,
                           racefree_ms=free.median_ms)

    def _store_lookup(self, key: CellKey) -> list[dict] | None:
        if self.store is None:
            return None
        return self.store.lookup(key.algorithm, key.input_name,
                                 key.device)

    # ------------------------------------------------------------------
    # Ordered merge (the byte-identity discipline)
    # ------------------------------------------------------------------
    def _stage(self, task_id: int, records: list[dict],
               executed: bool) -> None:
        with self._fleet_lock:
            self._staged[task_id] = (records, executed)
            while (self._flushed in self._staged
                   and self._flushed < self._task_seq):
                recs, ran = self._staged.pop(self._flushed)
                self._flushed += 1
                self._merge(recs, ran)

    def _merge(self, records: list[dict], executed: bool) -> None:
        with self._study_lock:
            before = self.study.cells_executed
            for record in records:
                self.study._merge_parallel_record(record)
            if not executed:
                # store-served cells were computed elsewhere: like
                # memoized/checkpoint-loaded cells they do not count
                self.study.cells_executed = before

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve(self, task: _FleetTask, records: list[dict]) -> None:
        if task.resolved:
            return
        task.resolved = True
        cell = self._cell_from_records(task.key, records)
        if not task.future.done():
            task.future.set_result(cell)

    def _resolve_failure(self, task: _FleetTask, reason: str,
                         message: str) -> None:
        if task.resolved:
            return
        task.resolved = True
        self.fleet_failures += 1
        cell = CellFailure(
            algorithm=task.key.algorithm, input_name=task.key.input_name,
            device_key=task.key.device, variant=Variant.BASELINE.value,
            reason=reason, message=message, attempts=task.dispatches,
            elapsed_s=0.0)
        # the seat in the merge order must still be filled (or every
        # later cell's merge would wait forever), and it must be filled
        # before the future resolves — see _task_done
        self._stage(task.task_id, [], executed=False)
        if not task.future.done():
            task.future.set_result(cell)

    @staticmethod
    def _cell_from_records(key: CellKey, records: list[dict]):
        """The cell a worker's records describe — medians exactly as
        the ledger's :class:`RunResult` would compute them."""
        runtimes: dict[str, list[float]] = {}
        for record in records:
            if record.get("kind") == "failure":
                return CellFailure(
                    algorithm=record["algorithm"],
                    input_name=record["input"],
                    device_key=record["device"],
                    variant=record["variant"], reason=record["reason"],
                    message=record["message"],
                    attempts=int(record["attempts"]),
                    elapsed_s=float(record["elapsed_s"]))
            if record.get("kind") == "result":
                runtimes[record["variant"]] = [
                    float(x) for x in record["runtimes_ms"]]
        base = runtimes.get(Variant.BASELINE.value)
        free = runtimes.get(Variant.RACE_FREE.value)
        if not base or not free:
            return CellFailure(
                algorithm=key.algorithm, input_name=key.input_name,
                device_key=key.device, variant=Variant.BASELINE.value,
                reason="fleet", message="worker returned an incomplete "
                "record set", attempts=1, elapsed_s=0.0)
        return SpeedupCell(key.algorithm, key.input_name, key.device,
                           baseline_ms=median(base),
                           racefree_ms=median(free))

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self):
        with self._study_lock:
            return self.study._worker_config()

    def _spawn(self, slot: _Slot) -> None:
        """(Re)start one slot's worker process, one generation up."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        slot.generation += 1
        proc = self._ctx.Process(
            target=_fleet_worker_main,
            args=(child_conn, self._worker_config(), slot.slot_id,
                  slot.generation, self.heartbeat_s),
            name=f"repro-fleet-{slot.slot_id}-g{slot.generation}",
            daemon=True)
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.state = "idle"
        slot.task_id = None
        slot.last_beat = time.monotonic()
        slot.beat_flagged = False
        if slot.generation > 0:
            self.respawns += 1
            _count_fleet("repro_fleet_respawns_total",
                         "Fleet worker slots respawned after a death")
        self._emit({"event": "worker_spawn", "worker": slot.slot_id,
                    "generation": slot.generation, "pid": proc.pid})

    def _slot_key(self, slot: _Slot) -> str:
        return f"worker-{slot.slot_id}"

    def _worker_died(self, slot: _Slot, why: str) -> None:
        """Tear a slot down, redispatch its cell, respawn or evict."""
        if not slot.live:
            return
        task_id = slot.task_id
        slot.state = "dead"
        slot.task_id = None
        if slot.proc is not None:
            if slot.proc.is_alive():
                slot.proc.kill()
            slot.proc.join(timeout=2.0)
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover
                pass
            slot.conn = None
        self.flap_breaker.record_failure(self._slot_key(slot))
        self._emit({"event": "worker_exit", "worker": slot.slot_id,
                    "generation": slot.generation, "why": why})
        if task_id is not None:
            task = self._tasks.get(task_id)
            if task is not None and not task.resolved:
                if task.dispatches >= 2:
                    # redispatched once already: fail instead of
                    # bouncing the cell around a dying fleet
                    self._resolve_failure(
                        task, "fleet",
                        f"cell lost twice to worker deaths ({why})")
                else:
                    self.redispatches += 1
                    _count_fleet("repro_fleet_redispatches_total",
                                 "In-flight cells redispatched after "
                                 "their worker died")
                    self._queue.appendleft(task_id)
                    self._emit({"event": "failover",
                                "worker": slot.slot_id,
                                "generation": slot.generation,
                                "cell": task.key.as_dict(), "why": why})
        if self.flap_breaker.allow(self._slot_key(slot)):
            self._spawn(slot)
        else:
            slot.state = "evicted"
            self.evictions += 1
            _count_fleet("repro_fleet_evictions_total",
                         "Fleet worker slots evicted by their flap "
                         "circuit-breaker")
            self._emit({"event": "worker_evicted",
                        "worker": slot.slot_id,
                        "generation": slot.generation})

    # ------------------------------------------------------------------
    # Supervisor loop
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        tick = max(0.01, min(0.05, self.heartbeat_s / 2))
        while not self._stop.is_set():
            with self._fleet_lock:
                conns = {s.conn: s for s in self._slots
                         if s.live and s.conn is not None}
            if conns:
                try:
                    ready = mp_connection.wait(list(conns), timeout=tick)
                except OSError:  # a pipe died mid-wait
                    ready = []
                for conn in ready:
                    with self._fleet_lock:
                        slot = conns.get(conn)
                        if slot is None or slot.conn is not conn:
                            continue
                        self._receive(slot)
            else:
                self._stop.wait(tick)
            with self._fleet_lock:
                self._check_health()
                self._assign()

    def _receive(self, slot: _Slot) -> None:
        try:
            msg = slot.conn.recv()
        except (EOFError, OSError):
            self._worker_died(slot, "pipe closed")
            return
        slot.last_beat = time.monotonic()
        slot.beat_flagged = False
        if msg[0] == "done":
            self._task_done(slot, msg[1], msg[2])

    def _task_done(self, slot: _Slot, task_id: int,
                   records: list[dict]) -> None:
        slot.state = "idle"
        slot.task_id = None
        slot.completed += 1
        self.flap_breaker.record_success(self._slot_key(slot))
        task = self._tasks.get(task_id)
        if task is None:  # pragma: no cover - defensive
            return
        # stage BEFORE resolving: the moment a study's last future
        # resolves, a client may read /v1/results — every record of
        # every resolved cell must already be folded into the ledger
        self._stage(task_id, records, executed=True)
        self._resolve(task, records)
        if (self.store is not None and records
                and all(r.get("kind") == "result"
                        for r in records
                        if r.get("kind") != "telemetry")
                and any(r.get("kind") == "result" for r in records)):
            self.store.publish(
                task.key.algorithm, task.key.input_name, task.key.device,
                [r for r in records if r.get("kind") == "result"])

    def _check_health(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not slot.live:
                continue
            if slot.proc is not None and not slot.proc.is_alive():
                self._worker_died(slot, "process exited")
                continue
            silent = now - slot.last_beat
            if (silent > self.MISS_AFTER * self.heartbeat_s
                    and not slot.beat_flagged):
                slot.beat_flagged = True
                self.heartbeat_misses += 1
                _count_fleet("repro_fleet_heartbeat_misses_total",
                             "Heartbeat windows a fleet worker missed")
            if silent > self.DEAD_AFTER * self.heartbeat_s:
                self._worker_died(slot, "heartbeat lost")
                continue
            if (slot.state == "busy" and self.task_deadline_s is not None
                    and now - slot.task_started > self.task_deadline_s):
                # a stalled worker still heartbeats — the per-task
                # deadline is what catches it (kill + redispatch)
                self._worker_died(slot, "task deadline expired")

    def _assign(self) -> None:
        while self._queue:
            live = [s for s in self._slots if s.live]
            if not live:
                # the whole fleet is gone: fail what is queued rather
                # than letting clients hang
                while self._queue:
                    task = self._tasks.get(self._queue.popleft())
                    if task is not None and not task.resolved:
                        self._resolve_failure(
                            task, "fleet",
                            "no live fleet workers remain")
                return
            idle = [s for s in live if s.state == "idle"]
            if not idle:
                return
            task_id = self._queue[0]
            task = self._tasks.get(task_id)
            if task is None or task.resolved:
                self._queue.popleft()
                continue
            if task.dispatches == 0 and task.future.cancelled():
                # abandoned before any dispatch: skip entirely, but
                # fill its seat in the merge order
                self._queue.popleft()
                task.resolved = True
                self._stage(task_id, [], executed=False)
                continue
            if task.dispatches:
                # a redispatched cell goes to the freshest survivor —
                # under generation-bounded kill plans that is the one
                # that will not be killed again
                slot = max(idle,
                           key=lambda s: (s.generation, -s.slot_id))
            else:
                slot = min(idle, key=lambda s: s.slot_id)
            self._queue.popleft()
            if task.dispatches == 0:
                task.future.set_running_or_notify_cancel()
            task.dispatches += 1
            slot.state = "busy"
            slot.task_id = task_id
            slot.task_started = time.monotonic()
            slot.dispatched += 1
            try:
                slot.conn.send(("task", task_id,
                                (task.key.algorithm, task.key.input_name,
                                 task.key.device), task.budget_s))
            except (OSError, ValueError, BrokenPipeError):
                self._worker_died(slot, "dispatch failed")
