"""Per-cell circuit breakers: stop re-burning workers on cells that
keep failing.

A cell that livelocks, times out, or validates wrong once may succeed
on a retry (the resilient study's own policy covers that); a cell that
fails on *every* service-level attempt is a different animal — each new
client asking for it would re-burn a full cell budget (and, with
``jobs > 1``, a pool spin-up) to reproduce a known failure.  The
breaker is the service-level memo for those: after ``threshold``
consecutive failed executions the cell's breaker **opens**, and further
requests are short-circuited to the cached degraded ``FAIL(reason)``
record instantly.  After ``cooldown_s`` the breaker goes **half-open**
and admits exactly one trial execution; success closes it, failure
re-opens it for another cooldown.

State is purely in-memory and per-process — a restarted server
re-learns its breakers, which is the correct bias (the failure may have
been environmental).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.telemetry.metrics import SCOPE_PROCESS, get_registry


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class _Entry:
    failures: int = 0
    state: BreakerState = BreakerState.CLOSED
    opened_at: float = 0.0
    #: True while the single half-open trial execution is in flight
    trial_inflight: bool = field(default=False)


def _count(event: str) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.counter("repro_service_breaker_events_total",
                    "Circuit breaker events, by kind", ("event",),
                    scope=SCOPE_PROCESS).inc(1, event)


class CircuitBreaker:
    """Keyed breaker bank (one state machine per cell key).

    Parameters
    ----------
    threshold:
        Consecutive failed executions that open a key's breaker.
    cooldown_s:
        Open duration before one half-open trial is admitted.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._entries: dict[Hashable, _Entry] = {}

    def _entry(self, key: Hashable) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry()
        return entry

    # ------------------------------------------------------------------
    def state(self, key: Hashable) -> BreakerState:
        """Current state (an elapsed cooldown reads as half-open)."""
        entry = self._entries.get(key)
        if entry is None:
            return BreakerState.CLOSED
        if (entry.state is BreakerState.OPEN
                and self._clock() - entry.opened_at >= self.cooldown_s):
            return BreakerState.HALF_OPEN
        return entry.state

    def allow(self, key: Hashable) -> bool:
        """Whether an execution of ``key`` may proceed now.

        Closed: always.  Open: only once the cooldown has elapsed, and
        then exactly *one* in-flight trial at a time (the half-open
        contract) — concurrent requests keep short-circuiting until the
        trial resolves.
        """
        entry = self._entry(key)
        if entry.state is BreakerState.CLOSED:
            return True
        if entry.state is BreakerState.HALF_OPEN:
            return False  # a trial is already in flight
        if self._clock() - entry.opened_at < self.cooldown_s:
            _count("short_circuit")
            return False
        entry.state = BreakerState.HALF_OPEN
        entry.trial_inflight = True
        _count("half_open")
        return True

    def record_success(self, key: Hashable) -> None:
        entry = self._entry(key)
        if entry.state is not BreakerState.CLOSED:
            _count("close")
        entry.failures = 0
        entry.state = BreakerState.CLOSED
        entry.trial_inflight = False

    def record_failure(self, key: Hashable) -> None:
        entry = self._entry(key)
        entry.failures += 1
        if entry.state is BreakerState.HALF_OPEN:
            # the trial failed: straight back to open for a fresh cooldown
            entry.state = BreakerState.OPEN
            entry.opened_at = self._clock()
            entry.trial_inflight = False
            _count("reopen")
        elif (entry.state is BreakerState.CLOSED
                and entry.failures >= self.threshold):
            entry.state = BreakerState.OPEN
            entry.opened_at = self._clock()
            _count("open")

    def abort_trial(self, key: Hashable) -> None:
        """A half-open trial was cancelled before producing a verdict
        (e.g. every subscriber abandoned it): re-open without counting
        a failure, so the next cooldown admits a fresh trial."""
        entry = self._entry(key)
        if entry.state is BreakerState.HALF_OPEN:
            entry.state = BreakerState.OPEN
            entry.opened_at = self._clock()
            entry.trial_inflight = False

    # ------------------------------------------------------------------
    def open_keys(self) -> list[Hashable]:
        """Keys whose breaker is currently open or half-open."""
        return [k for k in self._entries
                if self.state(k) is not BreakerState.CLOSED]
