"""Minimal HTTP/1.1 + NDJSON framing over asyncio streams, and the
study-request schema.

The service deliberately avoids HTTP frameworks (the container bakes in
only the scientific toolchain), so this module hand-frames the small
HTTP subset the server needs: request-line + header parsing with hard
size bounds, fixed-length JSON responses, and chunked-transfer NDJSON
streaming for per-cell results.  Everything parsed from the network is
validated against explicit limits before any allocation proportional to
client input — a malformed or hostile client costs one refused request,
never unbounded memory.

The study-request schema (:func:`parse_study_request`) validates every
field against the simulator's registries (known algorithms with races
to measure, known suite inputs with matching directedness, known
devices) so a bad request fails with a 400 naming the field instead of
surfacing mid-sweep as a cell failure.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from repro.core.variants import get_algorithm
from repro.errors import DeviceError, ProtocolError, StudyError
from repro.gpu.device import get_device
from repro.graphs.suite import suite_names

MAX_HEADER_BYTES = 16 * 1024
"""Bound on the request line + headers; longer prologues are rejected."""

MAX_BODY_BYTES = 1024 * 1024
"""Bound on a request body; larger studies must be split."""

MAX_CELLS_PER_REQUEST = 512
"""Bound on cells in one study request (admission applies on top)."""

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes


async def read_request(reader, *, max_header_bytes: int = MAX_HEADER_BYTES,
                       max_body_bytes: int = MAX_BODY_BYTES
                       ) -> HttpRequest | None:
    """Read one request from ``reader``; ``None`` on a clean EOF.

    Raises :class:`~repro.errors.ProtocolError` for framing the server
    cannot (or refuses to) handle: oversized prologues or bodies, a
    mangled request line, or chunked request bodies (clients must send
    ``Content-Length``).
    """
    try:
        prologue = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request prologue overran the stream "
                            "buffer limit") from exc
    if len(prologue) > max_header_bytes:
        raise ProtocolError(
            f"request prologue exceeds {max_header_bytes} bytes")
    try:
        head, *header_lines = prologue.decode("latin-1").split("\r\n")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError("undecodable request prologue") from exc
    parts = head.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {head!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked request bodies are not supported")
    body = b""
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise ProtocolError(
            f"bad Content-Length {raw_length!r}") from None
    if length < 0 or length > max_body_bytes:
        raise ProtocolError(
            f"Content-Length {length} outside [0, {max_body_bytes}]")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    # strip any query string; the API carries parameters in JSON bodies
    path = target.split("?", 1)[0]
    return HttpRequest(method=method.upper(), path=path, headers=headers,
                       body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   extra_headers: tuple[tuple[str, str], ...] = ()
                   ) -> bytes:
    """A full fixed-length HTTP/1.1 response (connection: close)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines += [f"{name}: {value}" for name, value in extra_headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def send_json(writer, status: int, payload: dict,
                    extra_headers: tuple[tuple[str, str], ...] = ()
                    ) -> None:
    """Write one JSON response and flush it."""
    body = (json.dumps(payload) + "\n").encode()
    writer.write(response_bytes(status, body,
                                extra_headers=extra_headers))
    await writer.drain()


async def start_ndjson(writer, status: int = 200) -> None:
    """Open a chunked NDJSON streaming response."""
    reason = _REASONS.get(status, "Unknown")
    writer.write((f"HTTP/1.1 {status} {reason}\r\n"
                  "Content-Type: application/x-ndjson\r\n"
                  "Transfer-Encoding: chunked\r\n"
                  "Connection: close\r\n\r\n").encode("latin-1"))
    await writer.drain()


async def send_ndjson_line(writer, record: dict) -> None:
    """Stream one NDJSON record as an HTTP chunk and flush it, so the
    client sees each cell the moment it lands."""
    data = (json.dumps(record) + "\n").encode()
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
    await writer.drain()


async def end_ndjson(writer) -> None:
    """Terminate the chunked stream."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()


# ----------------------------------------------------------------------
# Study request schema
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellKey:
    """One (algorithm, input, device) speedup cell — the service's unit
    of scheduling, coalescing, and breaker state."""

    algorithm: str
    input_name: str
    device: str

    def as_dict(self) -> dict:
        return {"algorithm": self.algorithm, "input": self.input_name,
                "device": self.device}

    def describe(self) -> str:
        return f"{self.algorithm}/{self.input_name}/{self.device}"


@dataclass(frozen=True)
class StudyRequest:
    """One validated client request: who is asking, which cells, and
    how long they are willing to wait."""

    tenant: str
    cells: tuple[CellKey, ...]
    deadline_s: float | None = None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_study_request(body: bytes,
                        max_cells: int = MAX_CELLS_PER_REQUEST
                        ) -> StudyRequest:
    """Validate a ``POST /v1/study`` body into a :class:`StudyRequest`.

    Expected JSON shape::

        {"algorithms": ["cc", "mis"], "inputs": ["internet"],
         "device": "titanv", "tenant": "alice", "deadline_s": 30}

    Every name is checked against the simulator registries up front;
    algorithms must have measurable races (the paper does not define a
    race-free speedup otherwise) and each input's directedness must
    match the algorithm family (SCC runs directed inputs, the rest run
    undirected ones).
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not JSON: {exc}") from None
    _require(isinstance(payload, dict), "request body must be an object")

    algorithms = payload.get("algorithms")
    inputs = payload.get("inputs")
    device = payload.get("device", "titanv")
    tenant = payload.get("tenant", "anonymous")
    deadline_s = payload.get("deadline_s")

    _require(isinstance(algorithms, list) and algorithms
             and all(isinstance(a, str) for a in algorithms),
             "'algorithms' must be a non-empty list of names")
    _require(isinstance(inputs, list) and inputs
             and all(isinstance(i, str) for i in inputs),
             "'inputs' must be a non-empty list of suite names")
    _require(isinstance(device, str), "'device' must be a device key")
    _require(isinstance(tenant, str) and 0 < len(tenant) <= 128,
             "'tenant' must be a short string")
    if deadline_s is not None:
        _require(isinstance(deadline_s, (int, float))
                 and 0 < float(deadline_s) <= 24 * 3600.0,
                 "'deadline_s' must be in (0, 86400]")
        deadline_s = float(deadline_s)

    try:
        get_device(device)
    except DeviceError as exc:
        raise ProtocolError(str(exc)) from None

    directed = set(suite_names(directed=True))
    undirected = set(suite_names(directed=False))
    cells = []
    for name in algorithms:
        try:
            algo = get_algorithm(name)
        except StudyError as exc:
            raise ProtocolError(str(exc)) from None
        _require(algo.has_races,
                 f"algorithm {name!r} has no data races; the paper "
                 "defines no race-free speedup for it")
        wanted = directed if algo.directed else undirected
        for input_name in inputs:
            if input_name not in wanted:
                if input_name not in directed | undirected:
                    raise ProtocolError(
                        f"unknown suite input {input_name!r}")
                # directedness mismatch: skip quietly only when the
                # request mixes families; reject a fully-mismatched pair
                continue
            cells.append(CellKey(name, input_name, device))
    _require(bool(cells),
             "request matches no runnable cells (check that input "
             "directedness fits the algorithms)")
    _require(len(cells) <= max_cells,
             f"request expands to {len(cells)} cells, over the "
             f"{max_cells}-cell per-request bound")
    return StudyRequest(tenant=tenant, cells=tuple(cells),
                        deadline_s=deadline_s)
