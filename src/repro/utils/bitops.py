"""Bit-manipulation helpers mirroring the paper's typecasting tricks.

The race-free codes in the paper access a ``char`` stored inside an
``int`` (Figs. 3 and 4) and the two ``int`` halves of a ``long long``
(Fig. 5).  These helpers implement the same index arithmetic, shifting,
and masking on Python integers so the simulated atomics can reuse them.

All word-level values are handled as *unsigned* integers of a declared
bit width; :func:`to_signed` / :func:`to_unsigned` convert at the edges,
exactly like a C cast reinterprets the bit pattern.
"""

from __future__ import annotations

WORD_BITS = 32
"""Width of the simulated machine word (CUDA's native ``int``)."""

_U32_MASK = 0xFFFFFFFF
_U64_MASK = 0xFFFFFFFFFFFFFFFF


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Reinterpret a (possibly negative) integer as an unsigned ``bits``-wide value.

    >>> to_unsigned(-1, 8)
    255
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Reinterpret an unsigned ``bits``-wide value as two's-complement signed.

    >>> to_signed(255, 8)
    -1
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def byte_in_word(word: int, byte_index: int) -> int:
    """Extract byte ``byte_index`` (0 = least significant) from a 32-bit word.

    This is the read half of the paper's Fig. 3b:
    ``(word >> ((v % 4) * 8)) & 0xff``.
    """
    if not 0 <= byte_index < 4:
        raise ValueError(f"byte_index must be in [0, 4), got {byte_index}")
    return (to_unsigned(word, 32) >> (byte_index * 8)) & 0xFF


def make_byte_mask(byte_index: int) -> int:
    """Build the AND mask that zeroes byte ``byte_index`` of a 32-bit word.

    This is the mask of the paper's Fig. 4b: ``~(0xff << ((v % 4) * 8))``.
    """
    if not 0 <= byte_index < 4:
        raise ValueError(f"byte_index must be in [0, 4), got {byte_index}")
    return _U32_MASK & ~(0xFF << (byte_index * 8))


def clear_byte(word: int, byte_index: int) -> int:
    """Zero out byte ``byte_index`` of a 32-bit word (Fig. 4b's atomicAnd)."""
    return to_unsigned(word, 32) & make_byte_mask(byte_index)


def insert_byte(word: int, byte_index: int, byte_value: int) -> int:
    """Replace byte ``byte_index`` of a 32-bit word with ``byte_value``."""
    if not 0 <= byte_value <= 0xFF:
        raise ValueError(f"byte_value must fit in a byte, got {byte_value}")
    return clear_byte(word, byte_index) | (byte_value << (byte_index * 8))


def split_u64(value: int) -> tuple[int, int]:
    """Split a 64-bit value into (first, second) 32-bit halves.

    ``first`` is the low half (``iaddr[0]`` in Fig. 5 on a little-endian
    machine), ``second`` the high half (``iaddr[1]``).
    """
    value = to_unsigned(value, 64)
    return value & _U32_MASK, (value >> 32) & _U32_MASK


def join_u64(first: int, second: int) -> int:
    """Join (first, second) 32-bit halves back into a 64-bit value."""
    return (to_unsigned(second, 32) << 32) | to_unsigned(first, 32)
