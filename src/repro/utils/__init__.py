"""Small shared utilities: bit manipulation, statistics, table rendering."""

from repro.utils.bitops import (
    WORD_BITS,
    byte_in_word,
    clear_byte,
    insert_byte,
    make_byte_mask,
    split_u64,
    join_u64,
    to_signed,
    to_unsigned,
)
from repro.utils.atomicio import atomic_write_text
from repro.utils.stats import geometric_mean, median, relative_deviation
from repro.utils.correlation import pearson
from repro.utils.tables import format_table

__all__ = [
    "atomic_write_text",
    "WORD_BITS",
    "byte_in_word",
    "clear_byte",
    "insert_byte",
    "make_byte_mask",
    "split_u64",
    "join_u64",
    "to_signed",
    "to_unsigned",
    "geometric_mean",
    "median",
    "relative_deviation",
    "pearson",
    "format_table",
]
