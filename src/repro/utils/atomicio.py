"""Crash-safe file writes for checkpoints and result logs.

A sweep checkpoint is only useful if a crash *while writing it* cannot
destroy the work it records.  :func:`atomic_write_text` writes to a
temporary file in the destination directory, fsyncs, renames into
place, and fsyncs the parent directory — on POSIX the rename is atomic,
so readers observe either the old complete file or the new complete
file, never a torn one, and the directory fsync makes the *rename
itself* survive power loss (without it, a crash after ``os.replace``
can roll the directory entry back to the old file or to nothing).

This module is also the host-fault injection point: when
:mod:`repro.core.hostfaults` has a plan installed, ``_WRITE_HOOK``
filters every payload (truncating it, flipping a bit, or raising
``ENOSPC``/``EIO``) before it reaches the temp file.  With no hook
installed — the default — the write path is byte-identical to an
uninjected tree.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Callable

#: optional host-fault write filter, installed by
#: :func:`repro.core.hostfaults.install`; takes (path, text) and
#: returns the (possibly mangled) text or raises :class:`OSError`
_WRITE_HOOK: Callable[[Path, str], str] | None = None


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table so a completed rename is durable.

    Best-effort: platforms (or filesystems) that cannot fsync a
    directory fd simply skip the extra guarantee — the rename is still
    atomic, just not power-loss durable.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    Durable against power loss: the payload is fsynced before the
    rename and the parent directory is fsynced after it.  May raise
    :class:`OSError` (genuine disk errors, or injected ``enospc`` /
    ``eio`` host faults); on any failure the temp file is removed and
    the old ``path`` content is untouched.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    if _WRITE_HOOK is not None:
        text = _WRITE_HOOK(path, text)
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    _fsync_dir(directory)
