"""Crash-safe file writes for checkpoints and result logs.

A sweep checkpoint is only useful if a crash *while writing it* cannot
destroy the work it records.  :func:`atomic_write_text` writes to a
temporary file in the destination directory, fsyncs, and renames into
place — on POSIX the rename is atomic, so readers observe either the
old complete file or the new complete file, never a torn one.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
