"""Shared retry-backoff policy: exponential growth, full jitter, and a
deadline-aware cap.

One policy object serves every retry loop in the stack — the resilient
sweep's transient-fault retries (:func:`repro.core.resilience
.run_guarded`), and the service layer's admission ``Retry-After`` hints
(:mod:`repro.service.quota`) — so the backoff shape is defined, tested,
and tuned in exactly one place.

The shape is AWS-style *full jitter*: the nominal delay grows
exponentially (``base_s * multiplier ** attempt``, clamped to
``cap_s``), and the actual delay is drawn uniformly from
``[0, nominal]``.  Full jitter de-synchronizes retry herds — when many
clients (or many sweep cells) fail at once, fixed exponential delays
make them all come back at the same instant; jittered delays spread the
retry load evenly across the window.

Determinism: the stack never uses Python's randomized ``hash()`` or an
unseeded global RNG for anything that must replay.  The jitter draw
comes from a stable blake2 digest of ``(seed, attempt, salt)``, so a
given policy produces the same delay sequence in every process and
every rerun — the property the resilience tests (and byte-identical
chaos recovery) rely on.  Pass ``jitter=False`` for the legacy fixed
exponential shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["BackoffPolicy", "full_jitter_delay"]


def _unit_draw(seed: int, attempt: int, salt: object) -> float:
    """Deterministic uniform draw in [0, 1) from a stable digest."""
    digest = hashlib.blake2b(
        repr((int(seed), int(attempt), salt)).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


def full_jitter_delay(base_s: float, attempt: int, *,
                      multiplier: float = 2.0,
                      cap_s: float | None = None,
                      seed: int = 0, salt: object = "",
                      remaining_s: float | None = None) -> float:
    """One full-jitter delay: ``U[0, min(cap, base * mult**attempt))``.

    ``remaining_s`` is the deadline-aware cap: a retry loop running
    under a wall-clock budget must never sleep past the budget, so the
    delay is additionally clamped to the time left (and to 0 when the
    budget is already spent).
    """
    policy = BackoffPolicy(base_s=base_s, multiplier=multiplier,
                           cap_s=cap_s, seed=seed)
    return policy.delay(attempt, salt=salt, remaining_s=remaining_s)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with full jitter and a deadline-aware cap.

    Parameters
    ----------
    base_s:
        Nominal delay of attempt 0; ``0`` disables sleeping entirely.
    multiplier:
        Exponential growth factor per attempt (default 2).
    cap_s:
        Upper bound on the *nominal* delay (``None`` = unbounded) —
        keeps late attempts from sleeping for minutes.
    jitter:
        ``True`` (default) draws the actual delay uniformly from
        ``[0, nominal)``; ``False`` returns the nominal delay itself
        (the legacy fixed-exponential shape).
    seed:
        Root of the deterministic jitter stream; the same (seed,
        attempt, salt) always yields the same delay.
    """

    base_s: float
    multiplier: float = 2.0
    cap_s: float | None = None
    jitter: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.cap_s is not None and self.cap_s < 0:
            raise ValueError(f"cap_s must be >= 0, got {self.cap_s}")

    def nominal(self, attempt: int) -> float:
        """The un-jittered delay for ``attempt`` (0-based), capped."""
        if self.base_s <= 0:
            return 0.0
        delay = self.base_s * self.multiplier ** max(0, attempt)
        if self.cap_s is not None:
            delay = min(delay, self.cap_s)
        return delay

    def delay(self, attempt: int, *, salt: object = "",
              remaining_s: float | None = None) -> float:
        """The actual delay to sleep before retry ``attempt + 1``.

        ``salt`` keys independent jitter streams (e.g. one per sweep
        cell or per tenant) off one policy; ``remaining_s`` clamps the
        delay to a wall-clock budget so a retry loop never sleeps past
        its deadline.
        """
        delay = self.nominal(attempt)
        if delay > 0.0 and self.jitter:
            delay *= _unit_draw(self.seed, attempt, salt)
        if remaining_s is not None:
            delay = min(delay, max(0.0, remaining_s))
        return delay
