"""Pearson correlation for Table IX (graph property vs. speedup)."""

from __future__ import annotations

import math
from collections.abc import Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length sequences.

    Raises ``ValueError`` on mismatched lengths, fewer than two points,
    or zero variance in either input (the coefficient is undefined).
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        raise ValueError("correlation requires at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = 0.0
    var_x = 0.0
    var_y = 0.0
    for x, y in zip(xs, ys):
        dx = x - mean_x
        dy = y - mean_y
        cov += dx * dy
        var_x += dx * dx
        var_y += dy * dy
    if var_x == 0.0 or var_y == 0.0:
        raise ValueError("correlation undefined: zero variance input")
    r = cov / math.sqrt(var_x * var_y)
    # floating-point error can push |r| marginally past 1; clamp
    return max(-1.0, min(1.0, r))
