"""Statistics used by the experimental methodology (Section V/VI).

The paper runs every configuration nine times and reports the median;
table footers report min, geometric mean, and max; Section VI.A quotes a
median relative deviation of 0.6 %.  These helpers implement exactly
those statistics.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def median(values: Sequence[float]) -> float:
    """Return the median of a non-empty sequence.

    For an even count, returns the mean of the two central values —
    matching :func:`statistics.median`, reimplemented here so numpy
    floats pass through unchanged.
    """
    if len(values) == 0:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return float(ordered[mid])
    return (float(ordered[mid - 1]) + float(ordered[mid])) / 2.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (table footers, Fig. 6)."""
    log_sum = 0.0
    count = 0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
        log_sum += math.log(v)
        count += 1
    if count == 0:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(log_sum / count)


def relative_deviation(values: Sequence[float]) -> float:
    """Median absolute deviation from the median, relative to the median.

    This is the "median relative deviation" statistic the paper uses to
    argue repeated runs are stable (0.6 % in Section VI.A).
    """
    m = median(values)
    if m == 0:
        raise ValueError("relative deviation undefined for zero median")
    deviations = [abs(v - m) / abs(m) for v in values]
    return median(deviations)
