"""Plain-text table rendering for the benchmark harness output.

The harness prints the same rows the paper's tables report.  Markdown
pipes keep the output copy-pasteable into the experiment log
(EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned markdown table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Each row must have the same arity as ``headers``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[fmt(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [c.ljust(widths[j]) for j, c in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    out = [line(list(headers))]
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
