"""Dynamic data-race detection over the SIMT access-event stream.

This is the reproduction's stand-in for Compute Sanitizer and iGuard
(Section IV): it replays the byte-granular access history of one or more
kernel launches through shadow memory and reports every pair of
conflicting accesses.

Two accesses *conflict* when they:

* touch overlapping bytes of the same array,
* come from different threads,
* include at least one write, and
* are not both atomic.

Two conflicting accesses *race* unless they are ordered by
synchronization.  The happens-before relation modelled here matches the
simulator's synchronization vocabulary:

* different kernel launches are ordered (the implicit barrier between
  launches that iGuard reportedly ignores, causing its false positives);
* within a launch, accesses in the same block separated by a
  ``__syncthreads()`` barrier (different epochs) are ordered;
* everything else within a launch is concurrent.

The detector is exhaustive per schedule: it flags every racy pair that
*this execution* exhibited.  Like any dynamic tool it cannot prove the
absence of races in unexecuted interleavings, which is why the paper —
and our test-suite — also re-runs under many random and adversarial
schedules.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import DataRaceError
from repro.gpu.accesses import AccessKind
from repro.gpu.simt import AccessEvent, SimtExecutor


@dataclass(frozen=True)
class RaceReport:
    """One detected data race: a pair of unordered conflicting accesses."""

    array: str
    byte: int
    first: AccessEvent
    second: AccessEvent

    @property
    def kind(self) -> str:
        """``write-write`` or ``read-write``."""
        if self.first.is_write and self.second.is_write:
            return "write-write"
        return "read-write"

    def describe(self) -> str:
        return (
            f"{self.kind} race on {self.array} byte {self.byte}: "
            f"thread {self.first.tid} ({self.first.access.value} "
            f"{'write' if self.first.is_write else 'read'}) vs "
            f"thread {self.second.tid} ({self.second.access.value} "
            f"{'write' if self.second.is_write else 'read'})"
        )


def _ordered(a: AccessEvent, b: AccessEvent) -> bool:
    """True if a happens-before b (or vice versa) under the simulator's
    synchronization model."""
    if a.launch != b.launch:
        return True  # implicit barrier between kernel launches
    if a.block == b.block and a.epoch != b.epoch:
        return True  # __syncthreads() between them
    return False


def _conflict(a: AccessEvent, b: AccessEvent) -> bool:
    if a.tid == b.tid:
        return False
    if not (a.is_write or b.is_write):
        return False
    if a.access is AccessKind.ATOMIC and b.access is AccessKind.ATOMIC:
        return False
    return a.span.overlaps(b.span)


class RaceDetector:
    """Shadow-memory race detector.

    Parameters
    ----------
    max_reports:
        Stop after this many distinct reports (full graph workloads can
        produce millions of racy pairs; a handful per location suffices
        to localize the bug, which is how the real tools behave too).
    dedupe_by_location:
        Report at most one race per (array, site-pair kind), mirroring
        how Compute Sanitizer groups its output.
    """

    def __init__(self, max_reports: int = 1000,
                 dedupe_by_location: bool = True) -> None:
        self.max_reports = max_reports
        self.dedupe_by_location = dedupe_by_location

    def analyze(self, events: Iterable[AccessEvent]) -> list[RaceReport]:
        """Replay ``events`` through shadow memory and collect races."""
        reports: list[RaceReport] = []
        seen_keys: set[tuple] = set()
        # shadow state per byte: last write event, reads since last write
        last_write: dict[tuple[str, int], AccessEvent] = {}
        readers: dict[tuple[str, int], list[AccessEvent]] = defaultdict(list)

        def emit(a: AccessEvent, b: AccessEvent, byte: int) -> bool:
            key = (a.span.array, a.is_write, b.is_write,
                   a.access, b.access)
            if self.dedupe_by_location and key in seen_keys:
                return len(reports) < self.max_reports
            seen_keys.add(key)
            reports.append(RaceReport(a.span.array, byte, a, b))
            return len(reports) < self.max_reports

        for ev in events:
            for byte in range(ev.span.start, ev.span.end):
                loc = (ev.span.array, byte)
                lw = last_write.get(loc)
                if lw is not None and _conflict(lw, ev) and not _ordered(lw, ev):
                    if not emit(lw, ev, byte):
                        return reports
                if ev.is_write:
                    for rd in readers[loc]:
                        if _conflict(rd, ev) and not _ordered(rd, ev):
                            if not emit(rd, ev, byte):
                                return reports
                    readers[loc].clear()
                    last_write[loc] = ev
                if ev.is_read:
                    bucket = readers[loc]
                    if len(bucket) < 64:  # bound shadow growth
                        bucket.append(ev)
        return reports

    def check(self, executor: SimtExecutor,
              fail_on_race: bool = False) -> list[RaceReport]:
        """Analyze everything an executor has recorded so far."""
        reports = self.analyze(executor.events)
        if fail_on_race and reports:
            raise DataRaceError(
                f"{len(reports)} data race(s) detected; first: "
                f"{reports[0].describe()}"
            )
        return reports


def summarize_races(reports: list[RaceReport]) -> dict[str, dict[str, int]]:
    """Group race reports per array and kind — the per-code summary of
    Section IV.A ("the CC code ... most of these accesses are
    unprotected")."""
    summary: dict[str, dict[str, int]] = defaultdict(
        lambda: {"read-write": 0, "write-write": 0})
    for r in reports:
        summary[r.array][r.kind] += 1
    return {k: dict(v) for k, v in summary.items()}
