"""Dynamic data-race detection over the SIMT access-event stream.

This is the reproduction's stand-in for Compute Sanitizer and iGuard
(Section IV): it replays the byte-granular access history of one or more
kernel launches through shadow memory and reports every pair of
conflicting accesses.

Two accesses *conflict* when they:

* touch overlapping bytes of the same array,
* come from different threads,
* include at least one write, and
* are not both atomic.

Two conflicting accesses *race* unless they are ordered by
synchronization.  The happens-before relation matches the simulator's
synchronization vocabulary:

* different kernel launches are ordered (the implicit barrier between
  launches that iGuard reportedly ignores, causing its false positives);
* within a launch, accesses in the same block separated by a
  ``__syncthreads()`` barrier (different epochs) are ordered;
* everything else within a launch is concurrent.

Since the ``repro.check`` subsystem landed, the default analysis is the
FastTrack-style vector-clock engine of :mod:`repro.check.vclock`, which
additionally emits *predictive* reports (``predicted=True``): races that
did not manifest adjacently in this trace but are feasible in a
reordering of it.  The original pairwise shadow scan is kept as
``engine="pairwise"`` for cross-checking; it sees only the races this
execution exhibited, which is why the paper — and our test-suite — also
re-runs under many schedules, and why :mod:`repro.check.explore`
enumerates the reduced schedule space outright.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import DataRaceError, ReproError
from repro.gpu.accesses import AccessKind
from repro.gpu.simt import AccessEvent, SimtExecutor


def _site_descriptor(ev: AccessEvent) -> str:
    """Stable per-access source descriptor.

    Prefers the kernel-declared access-plan site label (stable across
    schedules, graph sizes, and runs: it names the algorithm, kernel
    phase, and array role, e.g. ``"cc.label.jump_read"``).  Unlabeled
    accesses fall back to the array name plus byte range — deterministic
    for a fixed input, though not comparable across input sizes.
    """
    where = ev.site or f"{ev.span.array}[{ev.span.start}:{ev.span.end}]"
    direction = "write" if ev.is_write else "read"
    return f"{where}/{ev.access.value}-{direction}"


@dataclass(frozen=True)
class RaceReport:
    """One detected data race: a pair of unordered conflicting accesses.

    ``predicted`` marks races inferred from a feasible reordering of the
    observed trace (vector-clock engine only) rather than from accesses
    the trace placed adjacently.
    """

    array: str
    byte: int
    first: AccessEvent
    second: AccessEvent
    predicted: bool = False

    @property
    def kind(self) -> str:
        """``write-write`` or ``read-write``."""
        if self.first.is_write and self.second.is_write:
            return "write-write"
        return "read-write"

    @property
    def site_key(self) -> tuple:
        """The program-site pair this race occurred between: the two
        access spans plus their access classes and directions.  Distinct
        racy sites on one array produce distinct keys (the granularity
        the paper's Section IV.A per-code counts imply)."""
        return (self.array,
                self.first.span.start, self.first.span.nbytes,
                self.second.span.start, self.second.span.nbytes,
                self.first.is_write, self.second.is_write,
                self.first.access, self.second.access)

    @property
    def source_sites(self) -> tuple[str, str]:
        """The two accesses' stable source descriptors (sorted)."""
        pair = sorted((_site_descriptor(self.first),
                       _site_descriptor(self.second)))
        return (pair[0], pair[1])

    @property
    def site_id(self) -> str:
        """Schedule-stable identifier of the racy *site pair*.

        Unlike :attr:`site_key` (positional byte offsets, used for
        per-run dedupe), this identifier is built from the accesses'
        kernel-declared site labels, so the same source-level race gets
        the same id across schedules, runs, and graph sizes — the key
        the repair localizer clusters obligations by.
        """
        a, b = self.source_sites
        return f"{self.array}:{a}<->{b}"

    @property
    def fixable_sites(self) -> tuple[str, ...]:
        """Kernel-declared plan-site labels of the non-atomic accesses
        in this pair — the sites a per-site promotion fix can target."""
        labels = []
        for ev in (self.first, self.second):
            if ev.site and ev.access is not AccessKind.ATOMIC:
                labels.append(ev.site)
        return tuple(sorted(set(labels)))

    def to_json(self) -> dict:
        """Machine-readable form (``repro check --json`` / the repair
        localizer's input)."""
        def access(ev: AccessEvent) -> dict:
            return {
                "site": ev.site,
                "descriptor": _site_descriptor(ev),
                "tid": ev.tid,
                "block": ev.block,
                "launch": ev.launch,
                "epoch": ev.epoch,
                "span": [ev.span.array, ev.span.start, ev.span.nbytes],
                "access_kind": ev.access.value,
                "direction": "write" if ev.is_write else "read",
            }

        return {
            "array": self.array,
            "byte": self.byte,
            "kind": self.kind,
            "predicted": self.predicted,
            "site_id": self.site_id,
            "fixable_sites": list(self.fixable_sites),
            "accesses": [access(self.first), access(self.second)],
        }

    def describe(self) -> str:
        flavor = "predicted " if self.predicted else ""
        sites = ""
        if self.first.site or self.second.site:
            a, b = self.source_sites
            sites = f" [{a} vs {b}]"
        return (
            f"{flavor}{self.kind} race on {self.array} byte {self.byte}: "
            f"thread {self.first.tid} ({self.first.access.value} "
            f"{'write' if self.first.is_write else 'read'}) vs "
            f"thread {self.second.tid} ({self.second.access.value} "
            f"{'write' if self.second.is_write else 'read'}){sites}"
        )


def _ordered(a: AccessEvent, b: AccessEvent) -> bool:
    """True if a happens-before b (or vice versa) under the simulator's
    synchronization model."""
    if a.launch != b.launch:
        return True  # implicit barrier between kernel launches
    if a.block == b.block and a.epoch != b.epoch:
        return True  # __syncthreads() between them
    return False


def _conflict(a: AccessEvent, b: AccessEvent) -> bool:
    if a.tid == b.tid:
        return False
    if not (a.is_write or b.is_write):
        return False
    if a.access is AccessKind.ATOMIC and b.access is AccessKind.ATOMIC:
        return False
    return a.span.overlaps(b.span)


class RaceDetector:
    """Shadow-memory race detector.

    Parameters
    ----------
    max_reports:
        Stop after this many distinct reports (full graph workloads can
        produce millions of racy pairs; a handful per location suffices
        to localize the bug, which is how the real tools behave too).
    dedupe_by_location:
        Report at most one race per program-site pair (the two access
        spans plus kinds), mirroring how Compute Sanitizer groups its
        output.
    engine:
        ``"vclock"`` (default) — the FastTrack-style vector-clock engine
        with predictive reports; ``"pairwise"`` — the original shadow
        scan, kept for cross-checking.
    predictive:
        Include ``predicted=True`` reports (vclock engine only).
    memory_model:
        The consistency model supplying atomic happens-before edges
        (vclock engine only; None = the paper's relaxed default, under
        which atomics never synchronize).
    """

    def __init__(self, max_reports: int = 1000,
                 dedupe_by_location: bool = True,
                 engine: str = "vclock",
                 predictive: bool = True,
                 memory_model=None) -> None:
        if engine not in ("vclock", "pairwise"):
            raise ReproError(
                f"unknown race engine {engine!r}; use 'vclock' or "
                "'pairwise'")
        self.max_reports = max_reports
        self.dedupe_by_location = dedupe_by_location
        self.engine = engine
        self.predictive = predictive
        self.memory_model = memory_model

    def analyze(self, events: Iterable[AccessEvent]) -> list[RaceReport]:
        """Replay ``events`` through shadow state and collect races."""
        reports: list[RaceReport] = []
        seen_keys: set[tuple] = set()

        def emit(a: AccessEvent, b: AccessEvent, byte: int,
                 predicted: bool = False) -> bool:
            report = RaceReport(a.span.array, byte, a, b,
                                predicted=predicted)
            if self.dedupe_by_location:
                key = report.site_key
                if key in seen_keys:
                    return len(reports) < self.max_reports
                seen_keys.add(key)
            reports.append(report)
            return len(reports) < self.max_reports

        if self.engine == "vclock":
            from repro.check.vclock import VectorClockEngine

            def on_report(first: AccessEvent, second: AccessEvent,
                          byte: int, predicted: bool) -> bool:
                if predicted and not self.predictive:
                    return True
                return emit(first, second, byte, predicted)

            VectorClockEngine(on_report,
                              memory_model=self.memory_model).analyze(events)
        else:
            self._analyze_pairwise(events, emit)
        return reports

    @staticmethod
    def _analyze_pairwise(events: Iterable[AccessEvent], emit) -> None:
        """The original per-schedule shadow scan: last write + readers
        since, per byte.  Forgets displaced accesses, so it reports only
        the races this trace placed adjacently."""
        last_write: dict[tuple[str, int], AccessEvent] = {}
        readers: dict[tuple[str, int], list[AccessEvent]] = defaultdict(list)

        for ev in events:
            for byte in range(ev.span.start, ev.span.end):
                loc = (ev.span.array, byte)
                lw = last_write.get(loc)
                if lw is not None and _conflict(lw, ev) and not _ordered(lw, ev):
                    if not emit(lw, ev, byte):
                        return
                if ev.is_write:
                    for rd in readers[loc]:
                        if _conflict(rd, ev) and not _ordered(rd, ev):
                            if not emit(rd, ev, byte):
                                return
                    readers[loc].clear()
                    last_write[loc] = ev
                if ev.is_read:
                    bucket = readers[loc]
                    if len(bucket) < 64:  # bound shadow growth
                        bucket.append(ev)

    def check(self, executor: SimtExecutor,
              fail_on_race: bool = False) -> list[RaceReport]:
        """Analyze everything an executor has recorded so far."""
        reports = self.analyze(executor.events)
        if fail_on_race and reports:
            raise DataRaceError(
                f"{len(reports)} data race(s) detected; first: "
                f"{reports[0].describe()}"
            )
        return reports


def summarize_races(reports: list[RaceReport]) -> dict[str, dict[str, int]]:
    """Group race reports per array and kind — the per-code summary of
    Section IV.A ("the CC code ... most of these accesses are
    unprotected")."""
    summary: dict[str, dict[str, int]] = defaultdict(
        lambda: {"read-write": 0, "write-write": 0})
    for r in reports:
        summary[r.array][r.kind] += 1
    return {k: dict(v) for k, v in summary.items()}
