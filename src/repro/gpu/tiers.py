"""Execution-tier selection: interpreter vs batched fast path.

The simulator has two execution tiers that compute bit-identical
results:

* **interp** — the original per-micro-operation engines: the SIMT
  generator interpreter stepping one thread at a time, and the perf
  engine's :class:`~repro.perf.engine.Recorder` doing per-call bucket
  accounting.
* **batched** — the warp-wide fast path: the SIMT core evaluates the
  memory accesses of all non-diverged lanes of a warp as numpy vectors
  in one dispatch (:mod:`repro.gpu.batch`), and the perf engine buffers
  per-site bucket increments into ndarray scratch flushed once per
  round (:class:`~repro.perf.engine.BatchedRecorder`).

Selection is resolved per component from, in priority order:

1. an explicit argument at the call/constructor site
   (``SimtExecutor(batch=...)``, ``record_trace(engine=...)``);
2. for the SIMT layer only, the ``REPRO_SIMT_BATCH`` env knob
   (``0``/``1`` — the benchmark harness's override);
3. the process-wide engine mode: ``set_engine()`` (the CLI's
   ``--engine``) or the ``REPRO_ENGINE`` env var;
4. the default, ``auto``.

``auto`` and ``batched`` both mean *use the fast path wherever it is
eligible*; ``interp`` forces the original engines everywhere.
Eligibility is decided per launch by :func:`repro.gpu.batch
.ineligible_reason`: any installed hook that observes individual
micro-steps (``step_probe``, fault injectors, weak-memory store
buffers, a controlled scheduler) forces the interpreter, so the
check/DPOR/repair paths always keep the exact interpreter semantics
they rely on — the batched tier can never be forced onto an execution
it cannot reproduce bit-identically.
"""

from __future__ import annotations

import os

ENGINE_INTERP = "interp"
ENGINE_BATCHED = "batched"
ENGINE_AUTO = "auto"

ENGINE_MODES = (ENGINE_INTERP, ENGINE_BATCHED, ENGINE_AUTO)

_FALSEY = ("0", "false", "no", "off", "")

#: process-wide explicit mode installed by the CLI (beats the env var)
_explicit_mode: str | None = None


def _validate(mode: str) -> str:
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    return mode


def set_engine(mode: str | None) -> None:
    """Install the process-wide engine mode (the CLI's ``--engine``).

    Also exported through ``REPRO_ENGINE`` so pool worker processes
    inherit the choice.
    """
    global _explicit_mode
    if mode is None:
        _explicit_mode = None
        return
    _explicit_mode = _validate(mode)
    os.environ["REPRO_ENGINE"] = _explicit_mode


def resolve_engine(explicit: str | None = None) -> str:
    """The effective engine mode (``interp``/``batched``/``auto``)."""
    if explicit is not None:
        return _validate(explicit)
    if _explicit_mode is not None:
        return _explicit_mode
    env = os.environ.get("REPRO_ENGINE")
    if env:
        return _validate(env)
    return ENGINE_AUTO


def simt_batch_enabled(explicit: bool | None = None) -> bool:
    """Whether the SIMT layer may use the batched warp-wide stepper.

    True only grants *permission*: the executor still runs the
    interpreter whenever the launch is ineligible (hooks, controlled
    schedulers, weak memory — see :func:`repro.gpu.batch
    .ineligible_reason`).
    """
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get("REPRO_SIMT_BATCH")
    if env is not None:
        return env.strip().lower() not in _FALSEY
    return resolve_engine() != ENGINE_INTERP


def recorder_batch_enabled(explicit: str | None = None) -> bool:
    """Whether the perf engine should use the vectorized recorder."""
    return resolve_engine(explicit) != ENGINE_INTERP
