"""Byte-granular simulated global memory.

Memory is organized the way the paper's typecasting tricks require: the
backing store of every array is a flat little-endian byte buffer, so a
``char`` array can be reinterpreted as an ``int`` array (Fig. 3), an
``int2`` pair lives in one 8-byte element whose halves are individually
addressable (Fig. 5), and a non-atomic access wider than the native
32-bit word is decomposed by the SIMT executor into word-size pieces
that other threads can observe half-done — real word tearing, Fig. 1's
``0xffffffff00000000`` chimera included.

All element values cross the API as Python ints; signedness is applied
per the array's :class:`~repro.gpu.accesses.DType` at the edges, like a
C cast reinterpreting the bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MemoryAccessError
from repro.gpu.accesses import AccessKind, DType, MemSpan
from repro.gpu.faults import FaultInjector, FaultKind
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.utils.bitops import join_u64, split_u64, to_signed, to_unsigned

NATIVE_WORD_BYTES = 4
"""Width of one native memory transaction (CUDA's 32-bit word)."""


@dataclass(frozen=True)
class ArrayHandle:
    """Reference to an allocated global array."""

    name: str
    dtype: DType
    length: int
    #: derived sizes, precomputed (identity/eq still on name/dtype/length)
    elem_bytes: int = field(init=False, repr=False, compare=False, default=0)
    total_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "elem_bytes", self.dtype.width_bytes)
        object.__setattr__(self, "total_bytes",
                           self.length * self.dtype.width_bytes)

    def span(self, element: int) -> MemSpan:
        """The byte span of one whole element."""
        if not 0 <= element < self.length:
            raise MemoryAccessError(
                f"{self.name}[{element}] out of range [0, {self.length})"
            )
        return MemSpan(self.name, element * self.elem_bytes, self.elem_bytes)

    def subspan(self, element: int, byte_offset: int, nbytes: int) -> MemSpan:
        """A byte range inside one element (int2 halves, Fig. 5)."""
        base = self.span(element)
        if byte_offset < 0 or byte_offset + nbytes > self.elem_bytes:
            raise MemoryAccessError(
                f"subspan [{byte_offset}, {byte_offset + nbytes}) outside "
                f"element of {self.elem_bytes} bytes"
            )
        return MemSpan(self.name, base.start + byte_offset, nbytes)

    def cast_span(self, byte_start: int, nbytes: int) -> MemSpan:
        """A reinterpret-cast access (Fig. 3's ``(int*)node_stat``)."""
        if byte_start < 0 or byte_start + nbytes > self.total_bytes:
            raise MemoryAccessError(
                f"cast span [{byte_start}, {byte_start + nbytes}) outside "
                f"array {self.name!r} of {self.total_bytes} bytes"
            )
        return MemSpan(self.name, byte_start, nbytes)


def split_native_words(span: MemSpan) -> list[MemSpan]:
    """Split a span into native-word-or-smaller pieces along word
    boundaries — the decomposition that makes wide plain accesses tear."""
    if span.start % NATIVE_WORD_BYTES + span.nbytes <= NATIVE_WORD_BYTES:
        return [span]  # already within one word: no decomposition
    pieces = []
    pos = span.start
    end = span.end
    while pos < end:
        boundary = (pos // NATIVE_WORD_BYTES + 1) * NATIVE_WORD_BYTES
        piece_end = min(end, boundary)
        pieces.append(MemSpan(span.array, pos, piece_end - pos))
        pos = piece_end
    return pieces


#: numpy dtype string per (element width, signedness) — the typed-view
#: windows the batched tier gathers and scatters through
_TYPED_DTYPES = {
    (1, False): "<u1", (1, True): "<i1",
    (2, False): "<u2", (2, True): "<i2",
    (4, False): "<u4", (4, True): "<i4",
    (8, False): "<u8", (8, True): "<i8",
}


class _Arena:
    """One contiguous byte buffer backing every allocation.

    Named arrays are carved out of a single ndarray as 8-byte-aligned
    blocks (first-fit with coalescing free list, geometric growth), so
    warp-wide gather/scatter, ``fingerprint()``, and checksumming all
    run over flat ndarray views instead of per-element Python.  Blocks
    are zeroed on allocation, preserving the fresh-``np.zeros``
    semantics of the previous per-array backing stores.
    """

    ALIGN = 8

    def __init__(self, capacity: int = 1 << 16) -> None:
        self.buf = np.zeros(capacity, dtype=np.uint8)
        #: bumped whenever the backing buffer is reallocated; any view
        #: cached against an older generation is dangling
        self.generation = 0
        self._free: list[list[int]] = [[0, capacity]]  # [offset, size]

    @classmethod
    def block_size(cls, nbytes: int) -> int:
        """Allocation granule: padded so typed views of every native
        width fit and successor blocks stay aligned."""
        return max(cls.ALIGN,
                   (nbytes + cls.ALIGN - 1) // cls.ALIGN * cls.ALIGN)

    def allocate(self, nbytes: int) -> int:
        """Reserve (and zero) a block; returns its byte offset."""
        size = self.block_size(nbytes)
        for i, (off, avail) in enumerate(self._free):
            if avail >= size:
                if avail == size:
                    self._free.pop(i)
                else:
                    self._free[i] = [off + size, avail - size]
                self.buf[off:off + size] = 0
                return off
        self._grow(size)
        return self.allocate(nbytes)

    def _grow(self, need: int) -> None:
        old = self.buf
        cap = old.shape[0]
        new_cap = cap
        while new_cap - cap < need:
            new_cap *= 2
        buf = np.zeros(new_cap, dtype=np.uint8)
        buf[:cap] = old
        self.buf = buf
        self.generation += 1
        self._insert_free(cap, new_cap - cap)

    def release(self, offset: int, nbytes: int) -> None:
        self._insert_free(offset, self.block_size(nbytes))

    def _insert_free(self, offset: int, size: int) -> None:
        """Insert a block into the free list (offset-sorted, coalesced)."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, [offset, size])
        if lo + 1 < len(free) and free[lo][0] + free[lo][1] == free[lo + 1][0]:
            free[lo][1] += free[lo + 1][1]
            free.pop(lo + 1)
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            free[lo - 1][1] += free[lo][1]
            free.pop(lo)


def pack_int2(first: int, second: int) -> int:
    """Pack an ``int2`` (two signed 32-bit ints) into its 64-bit element."""
    return to_signed(
        join_u64(to_unsigned(first, 32), to_unsigned(second, 32)), 64
    )


def unpack_int2(value: int) -> tuple[int, int]:
    """Unpack a 64-bit ``int2`` element into its (first, second) ints."""
    lo, hi = split_u64(to_unsigned(value, 64))
    return to_signed(lo, 32), to_signed(hi, 32)


class GlobalMemory:
    """The simulated GPU's global memory: named, typed byte buffers.

    An optional :class:`~repro.gpu.faults.FaultInjector` makes the
    memory system adversarial: span operations that declare their
    :class:`~repro.gpu.accesses.AccessKind` (the SIMT executor does)
    can suffer dropped or torn non-atomic stores and stuck-stale plain
    loads.  With ``faults=None`` (the default) and for kind-less host
    operations, behavior is bit-identical to the unfaulted memory.
    """

    def __init__(self, faults: FaultInjector | None = None) -> None:
        self._arena = _Arena()
        #: name -> (handle, byte offset of the array's block in the arena)
        self._arrays: dict[str, tuple[ArrayHandle, int]] = {}
        #: cached per-array uint8 slice views into the arena buffer
        self._views: dict[str, np.ndarray] = {}
        #: cached typed views keyed (name, element width, signed)
        self._typed: dict[tuple[str, int, bool], np.ndarray] = {}
        self._view_generation = self._arena.generation
        self.faults = faults
        self._allocated_bytes = 0

    def _refresh_views(self) -> None:
        """Drop cached views after an arena reallocation."""
        if self._view_generation != self._arena.generation:
            self._views.clear()
            self._typed.clear()
            self._view_generation = self._arena.generation

    def _publish_allocation(self) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        reg.gauge("repro_gpu_allocated_bytes",
                  "Bytes of simulated global memory currently allocated",
                  scope=SCOPE_PROCESS).set(self._allocated_bytes)
        reg.gauge("repro_gpu_allocated_arrays",
                  "Simulated global arrays currently allocated",
                  scope=SCOPE_PROCESS).set(len(self._arrays))

    def _count_fault(self, kind: str) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_mem_faults_total",
                        "Injected memory faults that actually fired",
                        ("kind",)).inc(1, kind)

    # ------------------------------------------------------------------
    # Allocation and bulk transfer (host-side, not simulated accesses)
    # ------------------------------------------------------------------
    def alloc(self, name: str, length: int, dtype: DType,
              fill: int = 0) -> ArrayHandle:
        """Allocate ``length`` elements of ``dtype`` under ``name``."""
        if name in self._arrays:
            raise MemoryAccessError(f"array {name!r} already allocated")
        if length < 0:
            raise MemoryAccessError(f"negative length {length}")
        handle = ArrayHandle(name, dtype, length)
        offset = self._arena.allocate(handle.total_bytes)
        self._arrays[name] = (handle, offset)
        self._allocated_bytes += handle.total_bytes
        self._publish_allocation()
        if fill != 0:
            self.fill(handle, fill)
        return handle

    def fill(self, handle: ArrayHandle, value: int) -> None:
        """Set every element to ``value`` (cudaMemset analog)."""
        store = self._store(handle)
        raw = to_unsigned(value, handle.dtype.width_bits)
        pattern = raw.to_bytes(handle.elem_bytes, "little")
        store[:] = np.frombuffer(
            pattern * handle.length, dtype=np.uint8
        )

    def free(self, name: str) -> None:
        """Release an allocation."""
        if name not in self._arrays:
            raise MemoryAccessError(f"array {name!r} not allocated")
        handle, offset = self._arrays.pop(name)
        self._arena.release(offset, handle.total_bytes)
        self._allocated_bytes -= handle.total_bytes
        self._views.pop(name, None)
        for key in [k for k in self._typed if k[0] == name]:
            del self._typed[key]
        self._publish_allocation()

    def handle(self, name: str) -> ArrayHandle:
        try:
            return self._arrays[name][0]
        except KeyError:
            raise MemoryAccessError(f"array {name!r} not allocated") from None

    def arrays(self) -> list[ArrayHandle]:
        return [h for h, _ in self._arrays.values()]

    def fingerprint(self) -> bytes:
        """Digest of the full memory image (names, shapes, and bytes).

        Two memories with equal fingerprints are observationally
        identical; the schedule explorer uses this to deduplicate
        states and the replayer to certify bit-identical re-execution.
        """
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for name in sorted(self._arrays):
            handle, _ = self._arrays[name]
            h.update(name.encode())
            h.update(f"{handle.dtype.label}:{handle.length};".encode())
            h.update(self._store_by_name(name).tobytes())
        return h.digest()

    def upload(self, handle: ArrayHandle, values: np.ndarray | list) -> None:
        """Host-to-device bulk copy (cudaMemcpy analog)."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape[0] != handle.length:
            raise MemoryAccessError(
                f"upload length {values.shape[0]} != {handle.length}"
            )
        width = handle.dtype.width_bits
        if width == 8:
            raw = (values & 0xFF).astype(np.uint8)
            self._store(handle)[:] = raw
        elif width == 32:
            raw = (values.astype(np.uint64) & np.uint64(0xFFFFFFFF)).astype("<u4")
            self._store(handle)[:] = raw.view(np.uint8)
        else:
            raw = values.astype(np.uint64).astype("<u8")
            self._store(handle)[:] = raw.view(np.uint8)

    def download(self, handle: ArrayHandle) -> np.ndarray:
        """Device-to-host bulk copy, decoded per the array's dtype."""
        store = self._store(handle)
        width = handle.dtype.width_bits
        if width == 8:
            return store.astype(np.int64)
        if width == 32:
            raw = store.view("<u4").astype(np.int64)
            if handle.dtype.signed:
                raw = np.where(raw >= (1 << 31), raw - (1 << 32), raw)
            return raw
        raw = store.view("<u8")
        return raw.astype(np.int64) if handle.dtype.signed else raw.astype(np.int64)

    # ------------------------------------------------------------------
    # Span-level operations (what the SIMT executor drives)
    # ------------------------------------------------------------------
    def span_read(self, span: MemSpan,
                  kind: AccessKind | None = None) -> int:
        """Read ``span`` as an unsigned little-endian integer.

        ``kind`` identifies the simulated access class for fault
        injection; ``None`` marks a host-side operation, which is never
        faulted.
        """
        store = self._check(span)
        value = int.from_bytes(store[span.start:span.end].tobytes(), "little")
        if self.faults is not None and kind is not None:
            faulted = self.faults.load_fault(span, value, kind)
            if faulted != value:
                self._count_fault("stale_load")
            value = faulted
        return value

    def span_write(self, span: MemSpan, value: int,
                   kind: AccessKind | None = None) -> None:
        """Write ``span`` from an unsigned little-endian integer.

        ``kind`` identifies the simulated access class for fault
        injection (``None`` = host operation, never faulted): a
        non-atomic store may be dropped entirely, or torn so that only
        its lowest native-word piece reaches memory.
        """
        if self.faults is not None and kind is not None:
            fault = self.faults.store_fault(span, kind)
            if fault is FaultKind.DROPPED_WRITE:
                self._count_fault("dropped_write")
                return
            if (fault is FaultKind.TORN_WRITE
                    and span.nbytes > NATIVE_WORD_BYTES):
                self._count_fault("torn_write")
                span = split_native_words(span)[0]
                value = value & ((1 << (span.nbytes * 8)) - 1)
        store = self._check(span)
        raw = to_unsigned(value, span.nbytes * 8)
        store[span.start:span.end] = np.frombuffer(
            raw.to_bytes(span.nbytes, "little"), dtype=np.uint8
        )

    # ------------------------------------------------------------------
    # Element-level convenience (tests and host code)
    # ------------------------------------------------------------------
    def element_read(self, handle: ArrayHandle, index: int) -> int:
        raw = self.span_read(handle.span(index))
        if handle.dtype.signed:
            return to_signed(raw, handle.dtype.width_bits)
        return raw

    def element_write(self, handle: ArrayHandle, index: int,
                      value: int) -> None:
        self.span_write(handle.span(index), value)

    # ------------------------------------------------------------------
    def _store(self, handle: ArrayHandle) -> np.ndarray:
        return self._store_by_name(handle.name)

    def _store_by_name(self, name: str) -> np.ndarray:
        self._refresh_views()
        view = self._views.get(name)
        if view is None:
            try:
                handle, offset = self._arrays[name]
            except KeyError:
                raise MemoryAccessError(
                    f"array {name!r} not allocated"
                ) from None
            view = self._arena.buf[offset:offset + handle.total_bytes]
            self._views[name] = view
        return view

    def typed_view(self, name: str, width: int,
                   signed: bool = False) -> np.ndarray:
        """Cached ndarray view of ``name`` reinterpreted at ``width``
        bytes per element — the batched tier's gather/scatter window.

        Arena blocks are 8-byte aligned, so views of every native width
        are aligned; a trailing remainder narrower than ``width`` is
        truncated (cast-style, like ``(int*)char_array``).
        """
        self._refresh_views()
        key = (name, width, signed)
        view = self._typed.get(key)
        if view is None:
            store = self._store_by_name(name)
            usable = store.shape[0] // width * width
            view = store[:usable].view(_TYPED_DTYPES[(width, signed)])
            self._typed[key] = view
        return view

    def _check(self, span: MemSpan) -> np.ndarray:
        store = self._store_by_name(span.array)
        if span.start < 0 or span.end > store.shape[0] or span.nbytes <= 0:
            raise MemoryAccessError(f"{span} out of bounds")
        return store
