"""Byte-granular simulated global memory.

Memory is organized the way the paper's typecasting tricks require: the
backing store of every array is a flat little-endian byte buffer, so a
``char`` array can be reinterpreted as an ``int`` array (Fig. 3), an
``int2`` pair lives in one 8-byte element whose halves are individually
addressable (Fig. 5), and a non-atomic access wider than the native
32-bit word is decomposed by the SIMT executor into word-size pieces
that other threads can observe half-done — real word tearing, Fig. 1's
``0xffffffff00000000`` chimera included.

All element values cross the API as Python ints; signedness is applied
per the array's :class:`~repro.gpu.accesses.DType` at the edges, like a
C cast reinterpreting the bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryAccessError
from repro.gpu.accesses import AccessKind, DType, MemSpan
from repro.gpu.faults import FaultInjector, FaultKind
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.utils.bitops import join_u64, split_u64, to_signed, to_unsigned

NATIVE_WORD_BYTES = 4
"""Width of one native memory transaction (CUDA's 32-bit word)."""


@dataclass(frozen=True)
class ArrayHandle:
    """Reference to an allocated global array."""

    name: str
    dtype: DType
    length: int

    @property
    def elem_bytes(self) -> int:
        return self.dtype.width_bytes

    @property
    def total_bytes(self) -> int:
        return self.length * self.elem_bytes

    def span(self, element: int) -> MemSpan:
        """The byte span of one whole element."""
        if not 0 <= element < self.length:
            raise MemoryAccessError(
                f"{self.name}[{element}] out of range [0, {self.length})"
            )
        return MemSpan(self.name, element * self.elem_bytes, self.elem_bytes)

    def subspan(self, element: int, byte_offset: int, nbytes: int) -> MemSpan:
        """A byte range inside one element (int2 halves, Fig. 5)."""
        base = self.span(element)
        if byte_offset < 0 or byte_offset + nbytes > self.elem_bytes:
            raise MemoryAccessError(
                f"subspan [{byte_offset}, {byte_offset + nbytes}) outside "
                f"element of {self.elem_bytes} bytes"
            )
        return MemSpan(self.name, base.start + byte_offset, nbytes)

    def cast_span(self, byte_start: int, nbytes: int) -> MemSpan:
        """A reinterpret-cast access (Fig. 3's ``(int*)node_stat``)."""
        if byte_start < 0 or byte_start + nbytes > self.total_bytes:
            raise MemoryAccessError(
                f"cast span [{byte_start}, {byte_start + nbytes}) outside "
                f"array {self.name!r} of {self.total_bytes} bytes"
            )
        return MemSpan(self.name, byte_start, nbytes)


def split_native_words(span: MemSpan) -> list[MemSpan]:
    """Split a span into native-word-or-smaller pieces along word
    boundaries — the decomposition that makes wide plain accesses tear."""
    pieces = []
    pos = span.start
    end = span.end
    while pos < end:
        boundary = (pos // NATIVE_WORD_BYTES + 1) * NATIVE_WORD_BYTES
        piece_end = min(end, boundary)
        pieces.append(MemSpan(span.array, pos, piece_end - pos))
        pos = piece_end
    return pieces


def pack_int2(first: int, second: int) -> int:
    """Pack an ``int2`` (two signed 32-bit ints) into its 64-bit element."""
    return to_signed(
        join_u64(to_unsigned(first, 32), to_unsigned(second, 32)), 64
    )


def unpack_int2(value: int) -> tuple[int, int]:
    """Unpack a 64-bit ``int2`` element into its (first, second) ints."""
    lo, hi = split_u64(to_unsigned(value, 64))
    return to_signed(lo, 32), to_signed(hi, 32)


class GlobalMemory:
    """The simulated GPU's global memory: named, typed byte buffers.

    An optional :class:`~repro.gpu.faults.FaultInjector` makes the
    memory system adversarial: span operations that declare their
    :class:`~repro.gpu.accesses.AccessKind` (the SIMT executor does)
    can suffer dropped or torn non-atomic stores and stuck-stale plain
    loads.  With ``faults=None`` (the default) and for kind-less host
    operations, behavior is bit-identical to the unfaulted memory.
    """

    def __init__(self, faults: FaultInjector | None = None) -> None:
        self._arrays: dict[str, tuple[ArrayHandle, np.ndarray]] = {}
        self.faults = faults
        self._allocated_bytes = 0

    def _publish_allocation(self) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        reg.gauge("repro_gpu_allocated_bytes",
                  "Bytes of simulated global memory currently allocated",
                  scope=SCOPE_PROCESS).set(self._allocated_bytes)
        reg.gauge("repro_gpu_allocated_arrays",
                  "Simulated global arrays currently allocated",
                  scope=SCOPE_PROCESS).set(len(self._arrays))

    def _count_fault(self, kind: str) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_mem_faults_total",
                        "Injected memory faults that actually fired",
                        ("kind",)).inc(1, kind)

    # ------------------------------------------------------------------
    # Allocation and bulk transfer (host-side, not simulated accesses)
    # ------------------------------------------------------------------
    def alloc(self, name: str, length: int, dtype: DType,
              fill: int = 0) -> ArrayHandle:
        """Allocate ``length`` elements of ``dtype`` under ``name``."""
        if name in self._arrays:
            raise MemoryAccessError(f"array {name!r} already allocated")
        if length < 0:
            raise MemoryAccessError(f"negative length {length}")
        handle = ArrayHandle(name, dtype, length)
        store = np.zeros(handle.total_bytes, dtype=np.uint8)
        self._arrays[name] = (handle, store)
        self._allocated_bytes += handle.total_bytes
        self._publish_allocation()
        if fill != 0:
            self.fill(handle, fill)
        return handle

    def fill(self, handle: ArrayHandle, value: int) -> None:
        """Set every element to ``value`` (cudaMemset analog)."""
        store = self._store(handle)
        raw = to_unsigned(value, handle.dtype.width_bits)
        pattern = raw.to_bytes(handle.elem_bytes, "little")
        store[:] = np.frombuffer(
            pattern * handle.length, dtype=np.uint8
        )

    def free(self, name: str) -> None:
        """Release an allocation."""
        if name not in self._arrays:
            raise MemoryAccessError(f"array {name!r} not allocated")
        self._allocated_bytes -= self._arrays[name][0].total_bytes
        del self._arrays[name]
        self._publish_allocation()

    def handle(self, name: str) -> ArrayHandle:
        try:
            return self._arrays[name][0]
        except KeyError:
            raise MemoryAccessError(f"array {name!r} not allocated") from None

    def arrays(self) -> list[ArrayHandle]:
        return [h for h, _ in self._arrays.values()]

    def fingerprint(self) -> bytes:
        """Digest of the full memory image (names, shapes, and bytes).

        Two memories with equal fingerprints are observationally
        identical; the schedule explorer uses this to deduplicate
        states and the replayer to certify bit-identical re-execution.
        """
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for name in sorted(self._arrays):
            handle, store = self._arrays[name]
            h.update(name.encode())
            h.update(f"{handle.dtype.label}:{handle.length};".encode())
            h.update(store.tobytes())
        return h.digest()

    def upload(self, handle: ArrayHandle, values: np.ndarray | list) -> None:
        """Host-to-device bulk copy (cudaMemcpy analog)."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape[0] != handle.length:
            raise MemoryAccessError(
                f"upload length {values.shape[0]} != {handle.length}"
            )
        width = handle.dtype.width_bits
        if width == 8:
            raw = (values & 0xFF).astype(np.uint8)
            self._store(handle)[:] = raw
        elif width == 32:
            raw = (values.astype(np.uint64) & np.uint64(0xFFFFFFFF)).astype("<u4")
            self._store(handle)[:] = raw.view(np.uint8)
        else:
            raw = values.astype(np.uint64).astype("<u8")
            self._store(handle)[:] = raw.view(np.uint8)

    def download(self, handle: ArrayHandle) -> np.ndarray:
        """Device-to-host bulk copy, decoded per the array's dtype."""
        store = self._store(handle)
        width = handle.dtype.width_bits
        if width == 8:
            return store.astype(np.int64)
        if width == 32:
            raw = store.view("<u4").astype(np.int64)
            if handle.dtype.signed:
                raw = np.where(raw >= (1 << 31), raw - (1 << 32), raw)
            return raw
        raw = store.view("<u8")
        return raw.astype(np.int64) if handle.dtype.signed else raw.astype(np.int64)

    # ------------------------------------------------------------------
    # Span-level operations (what the SIMT executor drives)
    # ------------------------------------------------------------------
    def span_read(self, span: MemSpan,
                  kind: AccessKind | None = None) -> int:
        """Read ``span`` as an unsigned little-endian integer.

        ``kind`` identifies the simulated access class for fault
        injection; ``None`` marks a host-side operation, which is never
        faulted.
        """
        store = self._check(span)
        value = int.from_bytes(store[span.start:span.end].tobytes(), "little")
        if self.faults is not None and kind is not None:
            faulted = self.faults.load_fault(span, value, kind)
            if faulted != value:
                self._count_fault("stale_load")
            value = faulted
        return value

    def span_write(self, span: MemSpan, value: int,
                   kind: AccessKind | None = None) -> None:
        """Write ``span`` from an unsigned little-endian integer.

        ``kind`` identifies the simulated access class for fault
        injection (``None`` = host operation, never faulted): a
        non-atomic store may be dropped entirely, or torn so that only
        its lowest native-word piece reaches memory.
        """
        if self.faults is not None and kind is not None:
            fault = self.faults.store_fault(span, kind)
            if fault is FaultKind.DROPPED_WRITE:
                self._count_fault("dropped_write")
                return
            if (fault is FaultKind.TORN_WRITE
                    and span.nbytes > NATIVE_WORD_BYTES):
                self._count_fault("torn_write")
                span = split_native_words(span)[0]
                value = value & ((1 << (span.nbytes * 8)) - 1)
        store = self._check(span)
        raw = to_unsigned(value, span.nbytes * 8)
        store[span.start:span.end] = np.frombuffer(
            raw.to_bytes(span.nbytes, "little"), dtype=np.uint8
        )

    # ------------------------------------------------------------------
    # Element-level convenience (tests and host code)
    # ------------------------------------------------------------------
    def element_read(self, handle: ArrayHandle, index: int) -> int:
        raw = self.span_read(handle.span(index))
        if handle.dtype.signed:
            return to_signed(raw, handle.dtype.width_bits)
        return raw

    def element_write(self, handle: ArrayHandle, index: int,
                      value: int) -> None:
        self.span_write(handle.span(index), value)

    # ------------------------------------------------------------------
    def _store(self, handle: ArrayHandle) -> np.ndarray:
        return self._store_by_name(handle.name)

    def _store_by_name(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name][1]
        except KeyError:
            raise MemoryAccessError(f"array {name!r} not allocated") from None

    def _check(self, span: MemSpan) -> np.ndarray:
        store = self._store_by_name(span.array)
        if span.start < 0 or span.end > store.shape[0] or span.nbytes <= 0:
            raise MemoryAccessError(f"{span} out of bounds")
        return store
