"""Memory access classes, orders, scopes, and element types.

The paper contrasts three ways a CUDA kernel can touch shared memory:

* **plain** accesses — the compiler may keep the value in a register
  (Section II.A's thread T4 never re-reads ``val``), and the hardware
  may cache it in L1.  Concurrent conflicting plain accesses are data
  races and therefore undefined behavior.
* **volatile** accesses — every source-level access compiles to a real
  memory instruction (no register caching), but atomicity is *not*
  guaranteed, so word tearing remains possible and the race remains.
* **atomic** accesses (libcu++) — single indivisible transactions with a
  memory order; the paper uses ``memory_order_relaxed`` everywhere.

Element types mirror the C types the ECL codes use (``char`` status
bytes in MIS, ``int`` labels in CC/GC, ``long long`` merge candidates in
MST, ``int2`` path pairs in SCC).
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class AccessKind(enum.Enum):
    """How a memory operation is performed (Section II.A)."""

    PLAIN = "plain"
    VOLATILE = "volatile"
    ATOMIC = "atomic"

    @property
    def is_atomic(self) -> bool:
        return self is AccessKind.ATOMIC


class MemoryOrder(enum.Enum):
    """libcu++ memory orderings; the paper's codes only need RELAXED."""

    RELAXED = "relaxed"
    ACQUIRE = "acquire"
    RELEASE = "release"
    ACQ_REL = "acq_rel"
    SEQ_CST = "seq_cst"


class Scope(enum.Enum):
    """libcu++ atomic scopes (block / grid / system)."""

    BLOCK = "block"
    DEVICE = "device"
    SYSTEM = "system"


class DType(enum.Enum):
    """Element types of simulated global arrays.

    ``width_bits`` is the logical element width; elements wider than the
    device's native word are stored as multiple words and their
    non-atomic accesses can tear (Fig. 1).
    """

    U8 = ("u8", 8, False)
    I32 = ("i32", 32, True)
    U32 = ("u32", 32, False)
    I64 = ("i64", 64, True)
    U64 = ("u64", 64, False)
    INT2 = ("int2", 64, True)  # pair of i32, stored as one 64-bit element

    def __init__(self, label: str, width_bits: int, signed: bool) -> None:
        self.label = label
        self.width_bits = width_bits
        self.signed = signed
        self.width_bytes = width_bits // 8

    def words(self, word_bits: int = 32) -> int:
        """Number of native words one element occupies (>= 1)."""
        return max(1, self.width_bits // word_bits)


class RMWOp(enum.Enum):
    """Read-modify-write operations (CUDA atomic* functions)."""

    ADD = "add"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MIN = "min"
    MAX = "max"
    EXCH = "exch"
    CAS = "cas"


class MemSpan(NamedTuple):
    """A byte range of a named array: the unit of one memory transaction.

    Byte granularity matters for fidelity: the paper's MIS code
    reinterprets a ``char`` array as an ``int`` array (Fig. 3), so a
    single atomic transaction can cover four logically distinct ``char``
    elements.  Conversely, two threads writing *different* bytes of the
    same word do not race.

    A NamedTuple (not a dataclass): spans are created once per simulated
    memory micro-operation, making construction cost part of the
    simulator's per-instruction floor.
    """

    array: str
    start: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.start + self.nbytes

    def overlaps(self, other: "MemSpan") -> bool:
        return (self.array == other.array
                and self.start < other.end and other.start < self.end)

    def __repr__(self) -> str:
        return f"{self.array}[{self.start}:{self.end}]"
