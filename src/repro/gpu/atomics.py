"""libcu++-style atomic helpers for simulated kernels (Figs. 2-5).

These are ``yield from``-able sub-generators: a kernel does

    val = yield from atomic_read(ctx, labels, v)

and the helper yields the underlying atomic :class:`Op` to the executor.
They mirror, one-to-one, the helpers the paper adds to the race-free
codes:

* :func:`atomic_read` / :func:`atomic_write` — Fig. 2's relaxed
  ``cuda::atomic`` load/store.
* :func:`atomic_read_char` — Fig. 3b's typecast-and-mask read of a
  ``char`` through an ``int``-sized atomic.
* :func:`atomic_clear_char` — Fig. 4b's atomicAnd masking write of 0x00.
* :func:`atomic_write_char` — general byte store via a CAS loop on the
  containing word (used where the race-free code must store a nonzero
  status byte).
* :func:`read_first` / :func:`read_second` / :func:`write_first` /
  :func:`write_second` — Fig. 5's half accessors for ``int2`` values
  stored in ``long long`` elements.  Tearing *between* the halves is
  acceptable (the SCC code treats them independently); tearing *within*
  a half is prevented by the 32-bit atomic.

All helpers use ``memory_order_relaxed`` — sufficient for every code in
the suite (Section IV.B).
"""

from __future__ import annotations

from repro.gpu.accesses import AccessKind, MemoryOrder, RMWOp
from repro.gpu.memory import ArrayHandle
from repro.gpu.simt import ThreadCtx
from repro.utils.bitops import (
    byte_in_word,
    insert_byte,
    make_byte_mask,
    to_signed,
    to_unsigned,
)

_RELAXED = MemoryOrder.RELAXED


def atomic_read(ctx: ThreadCtx, handle: ArrayHandle, index: int):
    """Fig. 2: ``((cuda::atomic<T>*)p)->load(relaxed)``."""
    value = yield ctx.load(handle, index, AccessKind.ATOMIC, _RELAXED)
    return value


def atomic_write(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                 value: int):
    """Fig. 2: ``((cuda::atomic<T>*)p)->store(val, relaxed)``."""
    yield ctx.store(handle, index, value, AccessKind.ATOMIC, _RELAXED)


def atomic_add(ctx: ThreadCtx, handle: ArrayHandle, index: int, value: int):
    """CUDA ``atomicAdd``; returns the old value."""
    old = yield ctx.atomic_rmw(handle, index, RMWOp.ADD, value)
    return old


def atomic_min(ctx: ThreadCtx, handle: ArrayHandle, index: int, value: int):
    """CUDA ``atomicMin``; returns the old value."""
    old = yield ctx.atomic_rmw(handle, index, RMWOp.MIN, value)
    return old


def atomic_max(ctx: ThreadCtx, handle: ArrayHandle, index: int, value: int):
    """CUDA ``atomicMax``; returns the old value."""
    old = yield ctx.atomic_rmw(handle, index, RMWOp.MAX, value)
    return old


def atomic_exch(ctx: ThreadCtx, handle: ArrayHandle, index: int, value: int):
    """CUDA ``atomicExch``; returns the old value."""
    old = yield ctx.atomic_rmw(handle, index, RMWOp.EXCH, value)
    return old


def atomic_cas(ctx: ThreadCtx, handle: ArrayHandle, index: int,
               expected: int, desired: int):
    """CUDA ``atomicCAS``; returns the old value."""
    old = yield ctx.atomic_cas(handle, index, expected, desired)
    return old


# ----------------------------------------------------------------------
# char-in-int typecasting and masking (MIS status bytes, Figs. 3-4)
# ----------------------------------------------------------------------

def _word_span(handle: ArrayHandle, byte_index: int):
    """The 4-byte aligned span containing byte ``byte_index`` —
    Fig. 3b's ``(int*)node_stat`` + ``v / 4`` index computation."""
    return handle.cast_span((byte_index // 4) * 4, 4)


def atomic_read_char(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                     site: str | None = None):
    """Fig. 3b: atomically read the ``int`` containing char ``index``,
    then shift and mask out the byte."""
    span = _word_span(handle, index)
    word = yield ctx.load_span(span, AccessKind.ATOMIC, site=site)
    return byte_in_word(word, index % 4)


def atomic_clear_char(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                      site: str | None = None):
    """Fig. 4b: atomically write 0x00 to char ``index`` using an
    atomicAnd with a byte mask; returns the old byte."""
    span = _word_span(handle, index)
    old_word = yield ctx.atomic_rmw_span(span, RMWOp.AND,
                                         make_byte_mask(index % 4),
                                         site=site)
    return byte_in_word(old_word, index % 4)


def atomic_or_char(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                   bits: int, site: str | None = None):
    """Atomically OR ``bits`` into char ``index``; returns the old byte."""
    if not 0 <= bits <= 0xFF:
        raise ValueError(f"bits must fit in a byte, got {bits}")
    span = _word_span(handle, index)
    old_word = yield ctx.atomic_rmw_span(span, RMWOp.OR,
                                         bits << ((index % 4) * 8),
                                         site=site)
    return byte_in_word(old_word, index % 4)


def atomic_write_char(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                      value: int, site: str | None = None):
    """Atomically store an arbitrary byte via a CAS loop on the word.

    The paper's codes get away with AND/OR because MIS status
    transitions are monotonic; this general version is provided for
    completeness and returns the old byte.
    """
    if not 0 <= value <= 0xFF:
        raise ValueError(f"value must fit in a byte, got {value}")
    span = _word_span(handle, index)
    old_word = yield ctx.load_span(span, AccessKind.ATOMIC, site=site)
    while True:
        new_word = insert_byte(old_word, index % 4, value)
        seen = yield ctx.atomic_rmw_span(span, RMWOp.CAS, new_word,
                                         expected=old_word, site=site)
        if seen == old_word:
            return byte_in_word(old_word, index % 4)
        old_word = seen


# ----------------------------------------------------------------------
# int2-in-long-long half accessors (SCC path pairs, Fig. 5)
# ----------------------------------------------------------------------

def read_first(ctx: ThreadCtx, handle: ArrayHandle, index: int,
               site: str | None = None):
    """Fig. 5 ``readFirst``: atomic 32-bit read of the low half."""
    raw = yield ctx.load_span(handle.subspan(index, 0, 4), AccessKind.ATOMIC,
                              site=site)
    return to_signed(raw, 32)


def read_second(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                site: str | None = None):
    """Fig. 5 ``readSecond``: atomic 32-bit read of the high half."""
    raw = yield ctx.load_span(handle.subspan(index, 4, 4), AccessKind.ATOMIC,
                              site=site)
    return to_signed(raw, 32)


def write_first(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                value: int, site: str | None = None):
    """Fig. 5 ``writeFirst``: atomic 32-bit write of the low half."""
    yield ctx.store_span(handle.subspan(index, 0, 4),
                         to_unsigned(value, 32), AccessKind.ATOMIC,
                         site=site)


def write_second(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                 value: int, site: str | None = None):
    """Fig. 5 ``writeSecond``: atomic 32-bit write of the high half."""
    yield ctx.store_span(handle.subspan(index, 4, 4),
                         to_unsigned(value, 32), AccessKind.ATOMIC,
                         site=site)


def atomic_max_half(ctx: ThreadCtx, handle: ArrayHandle, index: int,
                    half: int, value: int):
    """Atomic 32-bit max on one half of an ``int2`` element (used by the
    race-free SCC's monotonic max-ID propagation).  Returns the old half."""
    if half not in (0, 1):
        raise ValueError(f"half must be 0 or 1, got {half}")
    span = handle.subspan(index, half * 4, 4)
    old = yield ctx.atomic_rmw_span(span, RMWOp.MAX, to_unsigned(value, 32),
                                    signed=True)
    return old
