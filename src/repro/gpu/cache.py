"""Cache models.

Two levels of fidelity, matching the two execution levels in DESIGN.md:

* :class:`CacheSim` — a real set-associative LRU cache simulator, driven
  per access.  Used at the SIMT level and in tests.
* :class:`AnalyticCache` — a closed-form hit-rate estimator used by the
  performance level, where driving millions of accesses one by one
  through Python would be prohibitive.  It estimates the probability
  that a re-referenced line is still resident from the ratio of the
  cache capacity to the access footprint — the first-order effect that
  Section VI.A's profiling discussion relies on ("the baseline code has
  a much higher L1 hit rate for both loads and stores").

Atomics never allocate in L1 (they are performed at the L2 slice on all
modelled architectures), which is precisely why converting CC's plain
pointer-jumping loads into atomics destroys its L1 hit rate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.gpu.accesses import MemSpan
from repro.telemetry.metrics import get_registry


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class CacheSim:
    """Set-associative LRU cache over (array, line) tags.

    Addresses are byte spans; a span touching multiple lines counts one
    access per line (CUDA sector behaviour simplified to whole lines).
    """

    def __init__(self, capacity_bytes: int, ways: int = 4,
                 line_bytes: int = 128) -> None:
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise DeviceError("cache dimensions must be positive")
        n_lines = max(ways, capacity_bytes // line_bytes)
        self.sets = max(1, n_lines // ways)
        self.ways = ways
        self.line_bytes = line_bytes
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self.stats = CacheStats()
        #: counter values as of the last :meth:`publish`
        self._published: dict[str, int] = {}

    def _lines_of(self, span: MemSpan) -> list[tuple[str, int]]:
        first = span.start // self.line_bytes
        last = (span.end - 1) // self.line_bytes
        return [(span.array, line) for line in range(first, last + 1)]

    def access(self, span: MemSpan) -> int:
        """Touch all lines of ``span``; returns how many hit."""
        hits = 0
        for tag in self._lines_of(span):
            s = self._sets[hash(tag) % self.sets]
            if tag in s:
                s.move_to_end(tag)
                self.stats.hits += 1
                hits += 1
            else:
                self.stats.misses += 1
                s[tag] = True
                if len(s) > self.ways:
                    s.popitem(last=False)
                    self.stats.evictions += 1
        return hits

    def contains(self, span: MemSpan) -> bool:
        """Non-mutating residency check (all lines resident)."""
        return all(
            tag in self._sets[hash(tag) % self.sets]
            for tag in self._lines_of(span)
        )

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    def publish(self, cache: str = "l1") -> None:
        """Emit this simulator's counters into the telemetry registry.

        Publishes the *delta* since the previous publish, so callers can
        publish per launch (or per run) without double counting.  A
        no-op while telemetry is disabled.
        """
        reg = get_registry()
        if not reg.enabled:
            return
        events = reg.counter(
            "repro_cachesim_events_total",
            "Set-associative cache simulator events (SIMT level)",
            ("cache", "event"))
        rate = reg.gauge(
            "repro_cachesim_hit_rate",
            "Cumulative hit rate of one cache simulator instance",
            ("cache",))
        for event, total in (("hit", self.stats.hits),
                             ("miss", self.stats.misses),
                             ("eviction", self.stats.evictions)):
            delta = total - self._published.get(event, 0)
            if delta:
                events.inc(delta, cache, event)
            self._published[event] = total
        rate.set(self.stats.hit_rate, cache)


@dataclass
class AnalyticCache:
    """Closed-form hit-rate estimate for the performance level.

    ``hit_rate(footprint, accesses)``: a stream of ``accesses`` touches
    ``footprint`` bytes of distinct data.  Every first touch of a line
    is a compulsory miss; a re-reference hits with probability equal to
    the fraction of the footprint that fits in the cache (fully resident
    footprint => all re-references hit).
    """

    capacity_bytes: int
    line_bytes: int = 128

    def hit_rate(self, footprint_bytes: float, accesses: float) -> float:
        if accesses <= 0 or footprint_bytes <= 0:
            return 0.0
        lines = max(1.0, footprint_bytes / self.line_bytes)
        compulsory = min(1.0, lines / accesses)
        residency = min(1.0, self.capacity_bytes / footprint_bytes)
        return (1.0 - compulsory) * residency


@dataclass
class CacheHierarchy:
    """L1 (per SM, aggregated) + shared L2 built from a device spec."""

    l1: AnalyticCache
    l2: AnalyticCache

    @classmethod
    def for_device(cls, device) -> "CacheHierarchy":
        # irregular kernels spread their footprint over all SMs, so the
        # effective L1 capacity is the aggregate across SMs
        return cls(
            l1=AnalyticCache(device.l1_bytes * device.sms,
                             device.cache_line_bytes),
            l2=AnalyticCache(device.l2_bytes, device.cache_line_bytes),
        )
