"""Interleaving SIMT interpreter.

Kernels are Python *generator functions*: every memory operation is
``yield``-ed as an :class:`Op`, the executor performs it against
:class:`~repro.gpu.memory.GlobalMemory`, and the result is sent back
into the generator.  A pluggable :class:`~repro.gpu.interleave.Scheduler`
decides which thread advances next, one memory *micro-operation* at a
time, so every interleaving a real GPU could exhibit (and a few nastier
ones) is reachable:

* A non-atomic access wider than the native 32-bit word is decomposed
  into word-size micro-operations — other threads can run in between,
  producing genuine word tearing (Fig. 1).
* Plain loads are subject to a *compiler register-caching model*: once a
  thread has loaded a location plainly, later plain loads of the same
  location return the registered value without touching memory — the
  optimization that turns Fig. 1's thread T4 into an infinite loop.
  Volatile and atomic accesses always reach memory.
* Atomic operations execute as single indivisible transactions.

Every micro-operation is recorded as an :class:`AccessEvent`; the race
detector and cache simulator consume that stream.

Example kernel::

    def copy_kernel(ctx, src, dst):
        i = ctx.tid
        if i < src.length:
            val = yield ctx.load(src, i, AccessKind.PLAIN)
            yield ctx.store(dst, i, val, AccessKind.PLAIN)
"""

from __future__ import annotations

import enum
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, NamedTuple

from repro.errors import DeadlockError, KernelError, MemoryAccessError
from repro.gpu.accesses import AccessKind, DType, MemoryOrder, MemSpan, RMWOp, Scope
from repro.memmodel.models import MemoryModel, resolve_model
from repro.gpu.interleave import RoundRobinScheduler, Scheduler
from repro.gpu import tiers
from repro.gpu.memory import (
    ArrayHandle,
    GlobalMemory,
    split_native_words,
)
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_spans
from repro.utils.bitops import to_signed, to_unsigned

MAX_ATOMIC_BYTES = 8
"""CUDA atomics support at most 64-bit operands."""

DRAIN_BASE = 1_000_000
"""Scheduler-visible ids of store-buffer drain agents.

Under ``schedulable_drains`` every drainable buffer entry appears in the
runnable set as its own pseudo-thread ``DRAIN_BASE + entry.seq``, so a
controlled scheduler (and the DPOR explorer behind it) decides *when*
each buffered store becomes globally visible — memory-model reordering
becomes ordinary scheduling choice.  Entry seqs are assigned in decision
order, so the ids are deterministic along any replayed prefix."""


class OpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    RMW = "rmw"
    BARRIER = "barrier"
    FENCE = "fence"


class Op(NamedTuple):
    """One operation yielded by a kernel.

    A NamedTuple for construction speed: one Op is built per yielded
    kernel operation, squarely on the simulator's hot path.
    """

    kind: OpKind
    span: MemSpan | None = None
    access: AccessKind = AccessKind.PLAIN
    order: MemoryOrder = MemoryOrder.RELAXED
    value: int | None = None          # store value / rmw operand
    rmw: RMWOp | None = None
    expected: int | None = None       # CAS expected value
    signed: bool = False              # sign-extend load results
    site: str | None = None           # source access-plan site label
    scope: Scope = Scope.DEVICE       # synchronization scope (PTXScoped)


class AccessEvent(NamedTuple):
    """One micro-operation against global memory.

    ``site`` carries the kernel-declared access-plan site label of the
    originating op (e.g. ``"cc.label.jump_read"``) when the kernel
    provided one — the stable source identifier race reports and the
    repair localizer key on.  Structure reads and ad-hoc accesses leave
    it None.
    """

    step: int
    launch: int
    tid: int
    block: int
    epoch: int
    span: MemSpan
    is_read: bool
    is_write: bool
    access: AccessKind
    value: int
    site: str | None = None
    #: memory order / scope of the originating op — consumed by the
    #: model-aware vector-clock engine (``tid >= DRAIN_BASE`` marks a
    #: scheduled store-buffer drain performed by a drain agent)
    order: MemoryOrder = MemoryOrder.RELAXED
    scope: Scope = Scope.DEVICE


@dataclass
class LaunchStats:
    """Operation counters for one kernel launch."""

    loads: dict[AccessKind, int] = field(
        default_factory=lambda: {k: 0 for k in AccessKind})
    stores: dict[AccessKind, int] = field(
        default_factory=lambda: {k: 0 for k in AccessKind})
    rmws: int = 0
    register_hits: int = 0
    barriers: int = 0
    steps: int = 0
    #: warp-lockstep steps where some live lane of the chosen warp was
    #: blocked (done early, at a barrier, or fault-filtered) while its
    #: peers advanced — the executor's branch-divergence measure
    divergent_steps: int = 0


class ThreadCtx:
    """Per-thread handle passed to kernels: ids plus op constructors."""

    __slots__ = ("tid", "block", "lane", "num_threads", "block_dim",
                 "_shared")

    def __init__(self, tid: int, block: int, lane: int,
                 num_threads: int, block_dim: int,
                 shared: dict[str, "ArrayHandle"] | None = None) -> None:
        self.tid = tid
        self.block = block
        self.lane = lane
        self.num_threads = num_threads
        self.block_dim = block_dim
        self._shared = shared or {}

    def shared(self, name: str) -> "ArrayHandle":
        """This block's instance of the named ``__shared__`` array."""
        try:
            return self._shared[name]
        except KeyError:
            raise KernelError(
                f"no shared array {name!r} declared at launch; known: "
                f"{sorted(self._shared)}"
            ) from None

    # -- element accesses ---------------------------------------------
    def load(self, handle: ArrayHandle, index: int,
             kind: AccessKind = AccessKind.PLAIN,
             order: MemoryOrder = MemoryOrder.RELAXED,
             site: str | None = None,
             scope: Scope = Scope.DEVICE) -> Op:
        return Op(OpKind.LOAD, handle.span(index), kind, order,
                  signed=handle.dtype.signed, site=site, scope=scope)

    def store(self, handle: ArrayHandle, index: int, value: int,
              kind: AccessKind = AccessKind.PLAIN,
              order: MemoryOrder = MemoryOrder.RELAXED,
              site: str | None = None,
              scope: Scope = Scope.DEVICE) -> Op:
        return Op(OpKind.STORE, handle.span(index), kind, order,
                  value=value, site=site, scope=scope)

    # -- raw span accesses (typecasting tricks) ------------------------
    def load_span(self, span: MemSpan,
                  kind: AccessKind = AccessKind.PLAIN,
                  signed: bool = False,
                  order: MemoryOrder = MemoryOrder.RELAXED,
                  site: str | None = None,
                  scope: Scope = Scope.DEVICE) -> Op:
        return Op(OpKind.LOAD, span, kind, order, signed=signed, site=site,
                  scope=scope)

    def store_span(self, span: MemSpan, value: int,
                   kind: AccessKind = AccessKind.PLAIN,
                   order: MemoryOrder = MemoryOrder.RELAXED,
                   site: str | None = None,
                   scope: Scope = Scope.DEVICE) -> Op:
        return Op(OpKind.STORE, span, kind, order, value=value, site=site,
                  scope=scope)

    # -- read-modify-write atomics -------------------------------------
    def atomic_rmw(self, handle: ArrayHandle, index: int, op: RMWOp,
                   value: int, expected: int | None = None,
                   site: str | None = None,
                   order: MemoryOrder = MemoryOrder.RELAXED,
                   scope: Scope = Scope.DEVICE) -> Op:
        return Op(OpKind.RMW, handle.span(index), AccessKind.ATOMIC,
                  order, value=value, rmw=op,
                  expected=expected, signed=handle.dtype.signed, site=site,
                  scope=scope)

    def atomic_rmw_span(self, span: MemSpan, op: RMWOp, value: int,
                        expected: int | None = None,
                        signed: bool = False,
                        site: str | None = None,
                        order: MemoryOrder = MemoryOrder.RELAXED,
                        scope: Scope = Scope.DEVICE) -> Op:
        return Op(OpKind.RMW, span, AccessKind.ATOMIC, order,
                  value=value, rmw=op, expected=expected, signed=signed,
                  site=site, scope=scope)

    def atomic_cas(self, handle: ArrayHandle, index: int,
                   expected: int, desired: int,
                   site: str | None = None,
                   order: MemoryOrder = MemoryOrder.RELAXED,
                   scope: Scope = Scope.DEVICE) -> Op:
        return self.atomic_rmw(handle, index, RMWOp.CAS, desired,
                               expected=expected, site=site, order=order,
                               scope=scope)

    # -- synchronization -----------------------------------------------
    def barrier(self) -> Op:
        """Block-level ``__syncthreads()``."""
        return Op(OpKind.BARRIER)

    def fence(self, order: MemoryOrder = MemoryOrder.SEQ_CST,
              scope: Scope = Scope.DEVICE) -> Op:
        """``__threadfence()`` — also discards register-cached values.

        Under :class:`~repro.memmodel.models.PTXScoped`, a releasing
        fence at ``scope=Scope.BLOCK`` (PTX ``fence.cta``) publishes the
        store buffer to same-block threads only; every other model
        drains it globally regardless of scope.
        """
        return Op(OpKind.FENCE, order=order, scope=scope)

    def fence_sc(self, scope: Scope = Scope.DEVICE) -> Op:
        """PTX ``fence.sc`` — the sequentially-consistent fence.  Always
        drains the store buffer globally (even under scoped models) and
        discards register-cached values."""
        return Op(OpKind.FENCE, order=MemoryOrder.SEQ_CST, scope=scope,
                  value=1)  # value=1 marks the fence as fence.sc


# ----------------------------------------------------------------------
# Micro-operations
# ----------------------------------------------------------------------

@dataclass(slots=True)
class _Micro:
    span: MemSpan
    is_read: bool
    is_write: bool
    access: AccessKind
    # STORE: the piece's value; RMW: handled via fn
    value: int = 0
    rmw: RMWOp | None = None
    operand: int = 0
    expected: int | None = None
    site: str | None = None
    order: MemoryOrder = MemoryOrder.RELAXED
    scope: Scope = Scope.DEVICE


class _BufEntry(NamedTuple):
    """One issued-but-not-globally-visible store in a thread's buffer.

    ``seq`` is the executor-wide issue stamp (drain-agent id =
    ``DRAIN_BASE + seq``); ``vis`` is 0 while the entry is private to
    the issuing thread, or the promote stamp once a block-scoped
    release made it visible to same-block threads (PTXScoped)."""

    span: MemSpan
    value: int
    seq: int
    vis: int = 0


@dataclass
class _Thread:
    tid: int
    block: int
    gen: Iterator
    started: bool = False
    done: bool = False
    at_barrier: bool = False
    micro: deque = field(default_factory=deque)
    current_op: Op | None = None
    pieces: list[int] = field(default_factory=list)  # loaded piece values
    send_value: Any = None
    reg_cache: dict[MemSpan, int] = field(default_factory=dict)
    #: buffered-store models: issued but not yet globally visible stores
    store_buffer: list[_BufEntry] = field(default_factory=list)


def _apply_rmw(op: RMWOp, old: int, operand: int, expected: int | None,
               nbytes: int, signed: bool) -> int:
    """Compute the new raw (unsigned) value of an atomic RMW."""
    bits = nbytes * 8
    if signed:
        old_v = to_signed(old, bits)
        operand_v = to_signed(to_unsigned(operand, bits), bits)
    else:
        old_v = old
        operand_v = to_unsigned(operand, bits)
    if op is RMWOp.ADD:
        new = old_v + operand_v
    elif op is RMWOp.AND:
        new = old & to_unsigned(operand, bits)
        return to_unsigned(new, bits)
    elif op is RMWOp.OR:
        new = old | to_unsigned(operand, bits)
        return to_unsigned(new, bits)
    elif op is RMWOp.XOR:
        new = old ^ to_unsigned(operand, bits)
        return to_unsigned(new, bits)
    elif op is RMWOp.MIN:
        new = min(old_v, operand_v)
    elif op is RMWOp.MAX:
        new = max(old_v, operand_v)
    elif op is RMWOp.EXCH:
        new = operand_v
    elif op is RMWOp.CAS:
        if expected is None:
            raise KernelError("CAS requires an expected value")
        exp = to_unsigned(expected, bits)
        new = operand_v if old == exp else old_v
    else:  # pragma: no cover - enum is closed
        raise KernelError(f"unknown RMW op {op}")
    return to_unsigned(new, bits)


@dataclass
class BatchStats:
    """Cumulative batched-tier counters for one executor.

    ``scalar_steps`` maps fallback reason (``solo``, ``resume``,
    ``conflict``, ``step_budget``) to per-lane scalar steps taken while
    on the batched tier.
    """

    batched_launches: int = 0
    interp_launches: int = 0
    warp_dispatches: int = 0
    warp_lanes: int = 0
    scalar_steps: dict[str, int] = field(default_factory=dict)

    def count_scalar(self, reason: str, n: int = 1) -> None:
        self.scalar_steps[reason] = self.scalar_steps.get(reason, 0) + n


class SimtExecutor:
    """Executes kernel launches against a :class:`GlobalMemory`.

    Parameters
    ----------
    memory:
        The global memory all launches share.
    scheduler:
        Interleaving policy; defaults to round-robin.
    register_cache_plain:
        Model the compiler register-caching plain loads (on by default —
        this is what an optimizing compiler is *allowed* to do, which is
        the paper's core correctness argument).
    record_events:
        Keep the full :class:`AccessEvent` stream (needed by the race
        detector and the cache simulator; costs memory).
    max_steps:
        Abort a launch with :class:`DeadlockError` after this many
        micro-steps — catches the infinite polling loops that register
        caching induces in racy code.
    memory_model:
        A :class:`~repro.memmodel.models.MemoryModel`, a spec string
        (``"sc"``, ``"tso"``, ``"relaxed_gpu"``, ``"ptx:acq_rel"``, …),
        or None for the default — the paper's relaxed-GPU semantics
        with eager stores, bit-identical to the pre-zoo executor.
    schedulable_drains:
        Expose each drainable store-buffer entry as its own runnable
        drain agent (id ``DRAIN_BASE + seq``) so a controlled scheduler
        — and the DPOR explorer — decides drain timing.  Only
        meaningful under a buffered model; the litmus harness turns it
        on.  Incompatible with warp lockstep and fault injection.
    """

    def __init__(
        self,
        memory: GlobalMemory,
        scheduler: Scheduler | None = None,
        register_cache_plain: bool = True,
        record_events: bool = True,
        max_steps: int = 2_000_000,
        warp_lockstep: bool = False,
        warp_size: int = 32,
        weak_memory: bool = False,
        store_buffer_capacity: int = 8,
        faults: "FaultInjector | None" = None,
        batch: bool | None = None,
        memory_model: "MemoryModel | str | None" = None,
        schedulable_drains: bool = False,
    ) -> None:
        self.memory = memory
        self.scheduler = scheduler or RoundRobinScheduler()
        self.record_events = record_events
        self.max_steps = max_steps
        if warp_size <= 0:
            raise KernelError(f"warp_size must be positive, got {warp_size}")
        self.warp_lockstep = warp_lockstep
        self.warp_size = warp_size
        if store_buffer_capacity <= 0:
            raise KernelError(
                f"store_buffer_capacity must be positive, got "
                f"{store_buffer_capacity}"
            )
        if weak_memory:
            if memory_model is not None:
                raise KernelError(
                    "pass memory_model= or the deprecated weak_memory= "
                    "flag, not both")
            warnings.warn(
                "SimtExecutor(weak_memory=True) is deprecated; use "
                "memory_model='tso' (per-thread FIFO store buffers with "
                "forwarding) or memory_model='relaxed_gpu' (out-of-order "
                "drain)", DeprecationWarning, stacklevel=2)
            memory_model = "tso"
        #: the consistency semantics this executor runs under (see
        #: :mod:`repro.memmodel.models`); structural knobs below are
        #: resolved from it once, here
        self.memory_model: MemoryModel = resolve_model(memory_model)
        self.register_cache_plain = (register_cache_plain
                                     and self.memory_model.register_cache_plain)
        if self.memory_model.store_buffer_capacity is not None:
            store_buffer_capacity = self.memory_model.store_buffer_capacity
            if store_buffer_capacity <= 0:
                raise KernelError(
                    f"store_buffer_capacity must be positive, got "
                    f"{store_buffer_capacity}")
        #: buffered-store mode: non-atomic stores become globally
        #: visible late, in an order the model controls (FIFO under
        #: TSO, out of program order under RelaxedGPU/PTXScoped).
        #: Kept under the historical name for compatibility.
        self.weak_memory = self.memory_model.buffers_stores
        self.store_buffer_capacity = store_buffer_capacity
        if schedulable_drains and not self.memory_model.buffers_stores:
            schedulable_drains = False  # nothing to schedule
        if schedulable_drains and warp_lockstep:
            raise KernelError(
                "schedulable_drains is incompatible with warp_lockstep")
        if schedulable_drains and faults is not None:
            raise KernelError(
                "schedulable_drains is incompatible with fault injection")
        self.schedulable_drains = schedulable_drains
        #: issue/promote stamp counter (drain-agent ids derive from it)
        self._buf_seq = 0
        #: live block-visible (promoted) entries across all threads
        self._promoted_entries = 0
        self._launch_id = 0
        #: optional fault injector (scheduler stalls, transient aborts);
        #: memory-level faults ride on the injector installed in
        #: ``memory`` — pass the same injector to both for a full plan
        self.faults = faults
        #: batched-tier selection: True/False force it on/off, None
        #: defers to :mod:`repro.gpu.tiers` (env knobs, then ``auto``)
        self.batch = batch
        self.batch_stats = BatchStats()
        self.events: list[AccessEvent] = []
        self.launch_count = 0
        #: optional callback ``(threads, epochs, stats)`` invoked before
        #: every scheduling decision — the systematic explorer's window
        #: into executor state (fingerprinting, pending-op inspection)
        self.step_probe: Callable | None = None

    # ------------------------------------------------------------------
    def launch(self, kernel: Callable, num_threads: int, *args,
               block_dim: int = 32,
               shared: dict[str, tuple[int, DType]] | None = None,
               ) -> LaunchStats:
        """Run one kernel launch to completion and return its stats.

        ``kernel`` is called as ``kernel(ctx, *args)`` for every thread;
        it must be a generator function (or return None for a no-op
        thread, e.g. when guarded by ``if ctx.tid >= n: return``).

        ``shared`` declares block-shared scratchpads (``__shared__``
        arrays): ``{name: (length, dtype)}``.  Each block gets its own
        instance, reachable in the kernel via ``ctx.shared(name)``; the
        instances are freed when the launch completes.  ECL-APSP's
        tiled Floyd-Warshall is the suite's heavy user of this memory.

        With telemetry enabled, every launch opens a ``simt.launch``
        span and publishes its :class:`LaunchStats` (steps retired,
        per-kind loads/stores, register hits, barriers, divergence)
        into the metrics registry; with it disabled (the default) the
        execution is untouched.
        """
        spans = get_spans()
        if not spans.enabled and not get_registry().enabled:
            return self._launch_impl(kernel, num_threads, *args,
                                     block_dim=block_dim, shared=shared)
        with spans.span("simt.launch",
                        kernel=getattr(kernel, "__name__", "kernel"),
                        threads=num_threads) as sp:
            stats = self._launch_impl(kernel, num_threads, *args,
                                      block_dim=block_dim, shared=shared)
            sp.set(steps=stats.steps)
            self._publish_launch(kernel, stats)
            return stats

    def _publish_launch(self, kernel: Callable, stats: LaunchStats) -> None:
        """Fold one launch's counters into the telemetry registry."""
        reg = get_registry()
        if not reg.enabled:
            return
        name = getattr(kernel, "__name__", "kernel")
        reg.counter("repro_simt_launches_total",
                    "Kernel launches executed by the SIMT interpreter",
                    ("kernel",)).inc(1, name)
        reg.counter("repro_simt_steps_total",
                    "Scheduler micro-steps retired (instructions)",
                    ("kernel",)).inc(stats.steps, name)
        reg.counter("repro_simt_divergent_steps_total",
                    "Warp-lockstep steps with partially blocked warps",
                    ("kernel",)).inc(stats.divergent_steps, name)
        reg.counter("repro_simt_register_hits_total",
                    "Plain loads served from the register-caching model",
                    ("kernel",)).inc(stats.register_hits, name)
        reg.counter("repro_simt_barriers_total",
                    "Block barriers crossed",
                    ("kernel",)).inc(stats.barriers, name)
        accesses = reg.counter(
            "repro_simt_accesses_total",
            "Memory micro-operations by access kind",
            ("kernel", "kind", "op"))
        for kind in AccessKind:
            if stats.loads[kind]:
                accesses.inc(stats.loads[kind], name, kind.value, "load")
            if stats.stores[kind]:
                accesses.inc(stats.stores[kind], name, kind.value, "store")
        if stats.rmws:
            accesses.inc(stats.rmws, name, AccessKind.ATOMIC.value, "rmw")

    def _launch_impl(self, kernel: Callable, num_threads: int, *args,
                     block_dim: int = 32,
                     shared: dict[str, tuple[int, DType]] | None = None,
                     ) -> LaunchStats:
        if num_threads <= 0:
            raise KernelError(f"num_threads must be positive, got {num_threads}")
        if block_dim <= 0:
            raise KernelError(f"block_dim must be positive, got {block_dim}")
        launch_id = self.launch_count
        self.launch_count += 1
        self._launch_id = launch_id
        self.scheduler.reset()
        if self.faults is not None:
            self.faults.begin_launch()

        n_blocks = (num_threads + block_dim - 1) // block_dim
        shared_handles: dict[int, dict[str, ArrayHandle]] = {}
        if shared:
            for block in range(n_blocks):
                shared_handles[block] = {
                    name: self.memory.alloc(
                        f"__shared__{launch_id}_{block}_{name}",
                        length, dtype)
                    for name, (length, dtype) in shared.items()
                }

        threads: list[_Thread] = []
        for tid in range(num_threads):
            block = tid // block_dim
            ctx = ThreadCtx(tid, block, tid % block_dim, num_threads,
                            block_dim,
                            shared=shared_handles.get(block))
            gen = kernel(ctx, *args)
            if gen is None:
                gen = iter(())
            threads.append(_Thread(tid=tid, block=block, gen=gen))

        epochs: dict[int, int] = {t.block: 0 for t in threads}
        stats = LaunchStats()

        # prime every generator to its first op
        for t in threads:
            self._advance(t, stats, threads, epochs)

        reason = None
        if tiers.simt_batch_enabled(self.batch):
            from repro.gpu import batch as _batch  # deferred: imports simt
            reason = _batch.ineligible_reason(self)
            if reason is None:
                _batch.run_launch(self, threads, epochs, stats, launch_id,
                                  getattr(kernel, "__name__", "kernel"))
        else:
            reason = "disabled"
        if reason is not None:
            self.batch_stats.interp_launches += 1
            reg = get_registry()
            if reg.enabled:
                reg.counter(
                    "repro_simt_batch_interp_launches_total",
                    "Launches kept on the interpreter tier, by reason",
                    ("kernel", "reason"),
                ).inc(1, getattr(kernel, "__name__", "kernel"), reason)
            self._interpret(threads, epochs, stats, launch_id)

        for block_map in shared_handles.values():
            for handle in block_map.values():
                self.memory.free(handle.name)
        return stats

    def _interpret(self, threads: list[_Thread], epochs: dict[int, int],
                   stats: LaunchStats, launch_id: int) -> None:
        """The original one-micro-op-per-scheduler-step interpreter loop."""
        while True:
            runnable = [t.tid for t in threads if not t.done and not t.at_barrier]
            drains = (self._drain_map(threads)
                      if self.schedulable_drains else None)
            if not runnable and not drains:
                waiting = [t.tid for t in threads if t.at_barrier]
                if waiting:
                    raise DeadlockError(
                        f"barrier divergence: threads {waiting} wait at a "
                        "barrier no peer will reach"
                    )
                break  # all done
            stats.steps += 1
            if stats.steps > self.max_steps:
                raise DeadlockError(
                    f"launch exceeded {self.max_steps} micro-steps; "
                    "likely an infinite polling loop on a stale "
                    "register-cached value"
                )
            if self.faults is not None:
                self.faults.check_abort(stats.steps)
                runnable = self.faults.filter_runnable(runnable, stats.steps)
            if self.step_probe is not None:
                self.step_probe(threads, epochs, stats)
            if drains:
                runnable = runnable + sorted(drains)
            self.scheduler.observe(
                runnable,
                self._pending_map(threads, runnable, drains)
                if self.scheduler.needs_pending else None)
            if self.warp_lockstep:
                # pre-Volta semantics: the scheduler picks a warp and
                # every runnable lane advances one micro-op in lane order
                warps = sorted({tid // self.warp_size for tid in runnable})
                wid = self.scheduler.choose(warps)
                lanes = [tid for tid in runnable
                         if tid // self.warp_size == wid]
                live = sum(
                    1 for t in threads[wid * self.warp_size:
                                       (wid + 1) * self.warp_size]
                    if not t.done)
                if len(lanes) < live:
                    stats.divergent_steps += 1
                for tid in lanes:
                    thread = threads[tid]
                    if thread.done or thread.at_barrier:
                        continue  # state may change mid-warp (barriers)
                    self._step(thread, threads, epochs, stats, launch_id)
            else:
                tid = self.scheduler.choose(runnable)
                if drains and tid in drains:
                    owner, idx = drains[tid]
                    self._drain_entry(owner, idx, epochs, stats, agent=tid)
                else:
                    thread = threads[tid]
                    self._step(thread, threads, epochs, stats, launch_id)

    def _drain_map(self, threads: list[_Thread],
                   ) -> dict[int, tuple[_Thread, int]]:
        """Map each currently drainable buffered store to a pseudo-thread
        id (``DRAIN_BASE + entry.seq``) the scheduler may pick.  Under a
        FIFO model only each buffer's head is drainable; under a
        reordering model any entry not preceded by an older overlapping
        entry of the same buffer is (per-address coherence)."""
        drains: dict[int, tuple[_Thread, int]] = {}
        reorder = self.memory_model.reorders_stores
        for t in threads:
            buf = t.store_buffer
            if not buf:
                continue
            if not reorder:
                drains[DRAIN_BASE + buf[0].seq] = (t, 0)
                continue
            for i, e in enumerate(buf):
                if any(buf[j].span.overlaps(e.span) for j in range(i)):
                    continue
                drains[DRAIN_BASE + e.seq] = (t, i)
        return drains

    def _pending_map(self, threads: list[_Thread], runnable: list[int],
                     drains: dict[int, tuple[_Thread, int]] | None = None,
                     ) -> dict[int, tuple | None]:
        """Each runnable thread's next queued micro-op, summarized for a
        controlled scheduler's dependence analysis (None when the thread
        is between operations and its next access is not yet known).

        Under a buffered memory model one micro-op can carry side
        effects on *other* spans than its own: a draining atomic (or
        RMW) flushes the thread's store buffer, a block-scope release
        promotes it, and a load that overlaps buffered stores without an
        exact forwarding match forces a flush.  Summarizing such a step
        by its primary span would under-approximate the dependence
        relation — sleep-set wakes and backtrack analysis would miss
        real conflicts and prune reachable outcomes — so those steps
        report None (conservatively dependent with everything)."""
        model = self.memory_model
        pending: dict[int, tuple | None] = {}
        for tid in runnable:
            if drains and tid in drains:
                owner, idx = drains[tid]
                span = owner.store_buffer[idx].span
                pending[tid] = (span.array, span.start, span.nbytes,
                                False, True, False)
                continue
            thread = threads[tid]
            micro = thread.micro
            if not micro:
                pending[tid] = None
                continue
            m = micro[0]
            if thread.store_buffer and m.access is AccessKind.ATOMIC \
                    and (m.is_write or m.rmw is not None):
                eff = model.runtime_order(m.order)
                if (model.atomic_drains(eff)
                        or model.release_promotes_block(eff, m.scope)):
                    pending[tid] = None  # may flush/promote other spans
                    continue
            if thread.store_buffer and m.is_read and m.rmw is None \
                    and any(e.span.overlaps(m.span)
                            for e in thread.store_buffer):
                forwarded = (self._forwarded(thread, m.span)
                             if model.forwards_stores else None)
                if forwarded is None:
                    pending[tid] = None  # load will force a flush
                    continue
            pending[tid] = (m.span.array, m.span.start, m.span.nbytes,
                            m.is_read, m.is_write or m.rmw is not None,
                            m.access is AccessKind.ATOMIC)
        return pending

    # ------------------------------------------------------------------
    def _step(self, thread: _Thread, threads: list[_Thread],
              epochs: dict[int, int], stats: LaunchStats,
              launch_id: int) -> None:
        """Execute one micro-operation of ``thread``."""
        if not thread.micro:
            # just released from a barrier: resume the generator
            self._advance(thread, stats, threads, epochs)
            return
        micro: _Micro = thread.micro.popleft()
        span = micro.span
        model = self.memory_model
        forwarded: int | None = None
        if self.weak_memory:
            if micro.access is AccessKind.ATOMIC or micro.rmw is not None:
                eff = model.runtime_order(micro.order)
                if ((micro.is_write or micro.rmw is not None)
                        and model.release_promotes_block(eff, micro.scope)):
                    # block-scope release: make buffered stores visible
                    # to the block without forcing a global drain
                    self._promote_block(thread, epochs, stats)
                elif model.atomic_drains(eff):
                    self._drain_buffer(thread, epochs, stats)
            elif micro.is_read:
                if model.forwards_stores:
                    forwarded = self._forwarded(thread, span)
                if forwarded is None and any(
                        e.span.overlaps(span) for e in thread.store_buffer):
                    # partial overlap (or no forwarding): make own pending
                    # stores visible before reading over them
                    self._drain_buffer(thread, epochs, stats)
        if micro.rmw is not None:
            old = self.memory.span_read(span)
            # micro.value carries the op's signedness flag for RMW
            new = _apply_rmw(micro.rmw, old, micro.operand, micro.expected,
                             span.nbytes, signed=bool(micro.value))
            self.memory.span_write(span, new)
            thread.pieces.append(old)
            stats.rmws += 1
            self._record(stats, launch_id, thread, epochs, span,
                         True, True, AccessKind.ATOMIC, old, micro.site,
                         micro.order, micro.scope)
        elif micro.is_write:
            if self.weak_memory and micro.access is not AccessKind.ATOMIC:
                self._buf_seq += 1
                thread.store_buffer.append(
                    _BufEntry(span, micro.value, self._buf_seq))
                if len(thread.store_buffer) > self.store_buffer_capacity:
                    self._drain_one(thread, epochs, stats)
            else:
                self.memory.span_write(span, micro.value, kind=micro.access)
            self._invalidate_overlapping(thread, span)
            which = stats.stores
            which[micro.access] = which[micro.access] + 1
            self._record(stats, launch_id, thread, epochs, span,
                         False, True, micro.access, micro.value, micro.site,
                         micro.order, micro.scope)
        else:
            if forwarded is not None:
                value = forwarded
            else:
                value = self._visible_read(thread, micro, threads)
            thread.pieces.append(value)
            which = stats.loads
            which[micro.access] = which[micro.access] + 1
            self._record(stats, launch_id, thread, epochs, span,
                         True, False, micro.access, value, micro.site,
                         micro.order, micro.scope)
            if (micro.access is AccessKind.ATOMIC
                    and model.acquire_syncs(model.runtime_order(micro.order))):
                thread.reg_cache.clear()  # acquire load synchronizes

        if not thread.micro:
            self._complete_op(thread, stats)
            self._advance(thread, stats, threads, epochs)

    def _record(self, stats: LaunchStats, launch_id: int, thread: _Thread,
                epochs: dict[int, int], span: MemSpan, is_read: bool,
                is_write: bool, access: AccessKind, value: int,
                site: str | None = None,
                order: MemoryOrder = MemoryOrder.RELAXED,
                scope: Scope = Scope.DEVICE) -> None:
        if self.record_events:
            self.events.append(AccessEvent(
                step=stats.steps, launch=launch_id, tid=thread.tid,
                block=thread.block, epoch=epochs[thread.block], span=span,
                is_read=is_read, is_write=is_write, access=access,
                value=value, site=site, order=order, scope=scope,
            ))

    def _complete_op(self, thread: _Thread, stats: LaunchStats) -> None:
        """All micro-ops of the current op are done: build its result."""
        op = thread.current_op
        if op is None:
            return
        if op.kind is OpKind.LOAD:
            pieces = thread.pieces
            if len(pieces) == 1:
                value = pieces[0]
            else:
                value = 0
                shift = 0
                # pieces were queued (and therefore loaded) low-to-high
                for piece_span, piece in zip(self._pieces_of(op), pieces):
                    value |= piece << shift
                    shift += piece_span.nbytes * 8
            if op.signed:
                value = to_signed(value, op.span.nbytes * 8)
            thread.send_value = value
            if (self.register_cache_plain
                    and op.access is AccessKind.PLAIN):
                thread.reg_cache[op.span] = value
        elif op.kind is OpKind.RMW:
            old = thread.pieces[0]
            if op.signed:
                old = to_signed(old, op.span.nbytes * 8)
            thread.send_value = old
        else:
            thread.send_value = None
        thread.pieces = []
        thread.current_op = None

    def _pieces_of(self, op: Op) -> list[MemSpan]:
        if op.access is AccessKind.ATOMIC or op.kind is OpKind.RMW:
            return [op.span]
        return split_native_words(op.span)

    #: register-hit ops one thread may satisfy without reaching memory
    #: before we declare it stuck in a stale-value polling loop
    MAX_FREE_OPS = 65_536

    def _advance(self, thread: _Thread, stats: LaunchStats,
                 threads: list[_Thread] | None = None,
                 epochs: dict[int, int] | None = None) -> None:
        """Run the generator until it yields the next op (or finishes),
        translating the op into micro-operations.  Pure compute between
        memory operations is free."""
        free_ops = 0
        while True:
            free_ops += 1
            if free_ops > self.MAX_FREE_OPS:
                raise DeadlockError(
                    f"thread {thread.tid} satisfied {self.MAX_FREE_OPS} "
                    "consecutive operations from registers without touching "
                    "memory — an infinite polling loop on a stale "
                    "register-cached value (Fig. 1's thread T4)"
                )
            try:
                if not thread.started:
                    thread.started = True
                    op = next(thread.gen)
                else:
                    op = thread.gen.send(thread.send_value)
            except StopIteration:
                thread.done = True
                if self.weak_memory and not self.schedulable_drains:
                    # exit makes stores visible; in schedulable mode the
                    # leftover entries instead drain via drain agents so
                    # the explorer controls their timing
                    self._drain_buffer(thread, epochs, stats)
                return
            thread.send_value = None
            if not isinstance(op, Op):
                raise KernelError(
                    f"kernel thread {thread.tid} yielded {op!r}; kernels "
                    "must yield Op objects built via ThreadCtx"
                )
            if op.kind is OpKind.FENCE:
                thread.reg_cache.clear()
                if self.weak_memory:
                    model = self.memory_model
                    eff = model.runtime_order(op.order)
                    # op.value == 1 marks fence.sc: always drains globally
                    if (op.value != 1
                            and model.release_promotes_block(eff, op.scope)):
                        self._promote_block(thread, epochs, stats)
                    elif model.fence_drains(eff):
                        self._drain_buffer(thread, epochs, stats)
                continue  # free
            if op.kind is OpKind.BARRIER:
                if self.weak_memory:
                    self._drain_buffer(thread, epochs, stats)
                if threads is None or epochs is None:
                    raise KernelError("barrier before first micro-step")
                thread.at_barrier = True
                stats.barriers += 1
                self._maybe_release_barrier(thread.block, threads, epochs)
                return
            self._translate(thread, op, stats)
            if thread.micro:
                thread.current_op = op
                return
            # op satisfied without memory traffic (register hit): loop on

    def _translate(self, thread: _Thread, op: Op, stats: LaunchStats) -> None:
        """Turn an Op into queued micro-operations."""
        span = op.span
        if span is None:
            raise KernelError(f"{op.kind} op requires a span")
        if op.kind is OpKind.LOAD:
            if op.access is AccessKind.ATOMIC:
                self._check_atomic_span(span)
                thread.micro.append(
                    _Micro(span, True, False, op.access, site=op.site,
                           order=op.order, scope=op.scope))
            else:
                if (self.register_cache_plain
                        and op.access is AccessKind.PLAIN
                        and span in thread.reg_cache):
                    stats.register_hits += 1
                    thread.send_value = thread.reg_cache[span]
                    return
                for piece in split_native_words(span):
                    thread.micro.append(
                        _Micro(piece, True, False, op.access, site=op.site,
                               order=op.order, scope=op.scope))
        elif op.kind is OpKind.STORE:
            raw = to_unsigned(op.value, span.nbytes * 8)
            if op.access is AccessKind.ATOMIC:
                self._check_atomic_span(span)
                thread.micro.append(
                    _Micro(span, False, True, op.access, value=raw,
                           site=op.site, order=op.order, scope=op.scope))
            else:
                shift = 0
                for piece in split_native_words(span):
                    piece_raw = (raw >> shift) & ((1 << (piece.nbytes * 8)) - 1)
                    thread.micro.append(
                        _Micro(piece, False, True, op.access,
                               value=piece_raw, site=op.site,
                               order=op.order, scope=op.scope))
                    shift += piece.nbytes * 8
        elif op.kind is OpKind.RMW:
            self._check_atomic_span(span)
            thread.reg_cache.clear()  # atomics synchronize the thread
            thread.micro.append(_Micro(
                span, True, True, AccessKind.ATOMIC, value=int(op.signed),
                rmw=op.rmw, operand=op.value or 0, expected=op.expected,
                site=op.site, order=op.order, scope=op.scope))
        else:  # pragma: no cover - closed enum
            raise KernelError(f"unhandled op kind {op.kind}")

    @staticmethod
    def _check_atomic_span(span: MemSpan) -> None:
        if span.nbytes not in (4, 8):
            raise KernelError(
                f"atomic access of {span.nbytes} bytes unsupported: CUDA "
                "atomics require 32- or 64-bit operands (use the "
                "typecast-and-mask helpers for small types)"
            )
        if span.start % span.nbytes != 0:
            raise MemoryAccessError(f"misaligned atomic access at {span}")

    # -- store-buffer machinery ----------------------------------------
    def _forwarded(self, thread: _Thread, span: MemSpan) -> int | None:
        """Store-to-load forwarding: the youngest buffered store to
        exactly this span, if any (TSO/PTXScoped).  Partial overlaps
        don't forward — the caller drains instead."""
        for e in reversed(thread.store_buffer):
            if e.span == span:
                return e.value
        return None

    def _visible_read(self, thread: _Thread, micro: _Micro,
                      threads: list[_Thread]) -> int:
        """Read ``micro.span`` as ``thread`` sees it: global memory,
        overridden by the youngest *promoted* (block-visible) buffered
        store of a same-block peer when PTXScoped promotion is live."""
        if self.weak_memory and self._promoted_entries:
            best_vis = 0
            best_val = 0
            for peer in threads:
                if peer.block != thread.block or peer.tid == thread.tid:
                    continue
                for e in peer.store_buffer:
                    if e.vis and e.span == micro.span and e.vis > best_vis:
                        best_vis = e.vis
                        best_val = e.value
            if best_vis:
                return best_val
        return self.memory.span_read(micro.span, kind=micro.access)

    def _drain_buffer(self, thread: _Thread,
                      epochs: dict[int, int] | None = None,
                      stats: LaunchStats | None = None) -> None:
        """Make all of a thread's buffered stores globally visible."""
        while thread.store_buffer:
            self._drain_one(thread, epochs, stats)

    def _drain_one(self, thread: _Thread,
                   epochs: dict[int, int] | None = None,
                   stats: LaunchStats | None = None) -> None:
        """Drain one buffered store.  The model picks the order: FIFO
        (TSO — program order) or lowest address first (the relaxed-GPU
        out-of-order memory system; first-wins on ties preserves
        per-address coherence)."""
        buf = thread.store_buffer
        if self.memory_model.drain_policy == "address":
            idx = min(range(len(buf)),
                      key=lambda i: (buf[i].span.array, buf[i].span.start))
        else:
            idx = 0
        self._drain_entry(thread, idx, epochs, stats, agent=thread.tid)

    def _drain_entry(self, thread: _Thread, idx: int,
                     epochs: dict[int, int] | None,
                     stats: LaunchStats | None, agent: int) -> None:
        """Write buffer entry ``idx`` of ``thread`` to global memory.
        ``agent`` is the acting id — the owning thread for forced
        drains, or a ``DRAIN_BASE+seq`` pseudo-id when the scheduler
        picked the drain itself (schedulable mode)."""
        entry = thread.store_buffer.pop(idx)
        if entry.vis:
            self._promoted_entries -= 1
        # buffered stores are non-atomic by construction (atomics drain
        # the buffer instead of entering it); fault them as plain
        self.memory.span_write(entry.span, entry.value,
                               kind=AccessKind.PLAIN)
        if (self.schedulable_drains and self.record_events
                and stats is not None and epochs is not None):
            self.events.append(AccessEvent(
                step=stats.steps, launch=self._launch_id, tid=agent,
                block=thread.block, epoch=epochs[thread.block],
                span=entry.span, is_read=False, is_write=True,
                access=AccessKind.PLAIN, value=entry.value))

    def _promote_block(self, thread: _Thread,
                       epochs: dict[int, int] | None = None,
                       stats: LaunchStats | None = None) -> None:
        """Block-scope release (PTXScoped): stamp every still-private
        buffered store visible to same-block readers without draining
        it to global memory."""
        buf = thread.store_buffer
        for i, e in enumerate(buf):
            if e.vis:
                continue
            self._buf_seq += 1
            buf[i] = e._replace(vis=self._buf_seq)
            self._promoted_entries += 1
            if (self.schedulable_drains and self.record_events
                    and stats is not None and epochs is not None):
                self.events.append(AccessEvent(
                    step=stats.steps, launch=self._launch_id,
                    tid=thread.tid, block=thread.block,
                    epoch=epochs[thread.block], span=e.span,
                    is_read=False, is_write=True,
                    access=AccessKind.PLAIN, value=e.value,
                    scope=Scope.BLOCK))

    def _invalidate_overlapping(self, thread: _Thread, span: MemSpan) -> None:
        stale = [s for s in thread.reg_cache if s.overlaps(span)]
        for s in stale:
            del thread.reg_cache[s]

    def _maybe_release_barrier(self, block: int, threads: list[_Thread],
                               epochs: dict[int, int]) -> None:
        members = [t for t in threads if t.block == block]
        live = [t for t in members if not t.done]
        if live and all(t.at_barrier for t in live):
            if any(t.done for t in members):
                raise DeadlockError(
                    f"barrier divergence in block {block}: some threads "
                    "already exited"
                )
            epochs[block] += 1
            for t in live:
                t.at_barrier = False
                t.reg_cache.clear()  # barrier implies visibility


@dataclass
class KernelLaunch:
    """A recorded launch: kernel + config, for replay under many schedules."""

    kernel: Callable
    num_threads: int
    args: tuple
    block_dim: int = 32

    def run(self, executor: SimtExecutor) -> LaunchStats:
        return executor.launch(self.kernel, self.num_threads, *self.args,
                               block_dim=self.block_dim)
