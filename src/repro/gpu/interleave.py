"""Thread interleaving schedulers for the SIMT interpreter.

A data race only manifests under *some* interleavings; these schedulers
control which one a simulated kernel launch experiences.  Tests run the
racy baselines under many random and adversarial schedules to expose
tearing and staleness, and run the race-free versions under the same
schedules to show their results never change.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class Scheduler:
    """Chooses which runnable thread executes the next micro-step."""

    def choose(self, runnable: Sequence[int]) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called at each kernel launch."""


class RoundRobinScheduler(Scheduler):
    """Fair rotation over runnable threads (the most benign schedule)."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, runnable: Sequence[int]) -> int:
        candidates = [t for t in runnable if t >= self._next]
        pick = min(candidates) if candidates else min(runnable)
        self._next = pick + 1
        return pick

    def reset(self) -> None:
        self._next = 0


class RandomScheduler(Scheduler):
    """Uniform random choice — the workhorse for stress tests."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose(self, runnable: Sequence[int]) -> int:
        return runnable[int(self._rng.integers(0, len(runnable)))]


class AdversarialScheduler(Scheduler):
    """Random choice biased *away* from the last-run thread.

    Maximizes context switches between consecutive memory operations,
    which is exactly when word tearing and stale-read windows open up.
    ``stickiness`` is the probability of letting the same thread
    continue (0 = always switch).
    """

    def __init__(self, seed: int = 0, stickiness: float = 0.05) -> None:
        if not 0.0 <= stickiness <= 1.0:
            raise ValueError(f"stickiness must be in [0, 1], got {stickiness}")
        self._rng = np.random.default_rng(seed)
        self._stickiness = stickiness
        self._last: int | None = None

    def choose(self, runnable: Sequence[int]) -> int:
        others = [t for t in runnable if t != self._last]
        if others and (self._last is None
                       or self._rng.random() >= self._stickiness):
            pick = others[int(self._rng.integers(0, len(others)))]
        else:
            pick = runnable[int(self._rng.integers(0, len(runnable)))]
        self._last = pick
        return pick

    def reset(self) -> None:
        self._last = None
