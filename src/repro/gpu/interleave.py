"""Thread interleaving schedulers for the SIMT interpreter.

A data race only manifests under *some* interleavings; these schedulers
control which one a simulated kernel launch experiences.  Tests run the
racy baselines under many random and adversarial schedules to expose
tearing and staleness, and run the race-free versions under the same
schedules to show their results never change.

All schedulers have deterministic per-launch semantics: ``reset()``
(called by the executor at the start of every launch) restores the
scheduler to a state derived only from its constructor arguments, and
``state()`` returns a hashable snapshot of that state.  Together they
make any launch replayable from its seed — the contract the
:mod:`repro.check.replay` machinery depends on.

Controlled schedulers (the systematic explorer's
``repro.check.explore`` and the replayer's
``repro.check.replay.ReplayScheduler``) additionally receive an
``observe()`` callback before every ``choose()`` with each runnable
thread's *pending* memory operation, which is what lets them compute
dependence relations between candidate steps.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

#: what a controlled scheduler can see about a runnable thread's next
#: micro-operation: (array, start, nbytes, is_read, is_write, is_atomic),
#: or None when the thread is between operations (e.g. just released
#: from a barrier).
PendingOp = tuple[str, int, int, bool, bool, bool] | None


class Scheduler:
    """Chooses which runnable thread executes the next micro-step."""

    #: set by subclasses that want ``observe()`` to receive the pending
    #: per-thread operation map (costs a little per step to build)
    needs_pending = False

    def choose(self, runnable: Sequence[int]) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called at each kernel launch.  Must restore a state that is a
        pure function of the constructor arguments, so that every launch
        under this scheduler is individually replayable."""

    def state(self) -> tuple:
        """Hashable snapshot of the scheduler's decision state."""
        return ()

    def observe(self, runnable: Sequence[int],
                pending: Mapping[int, PendingOp] | None) -> None:
        """Hook called before :meth:`choose` with the runnable set and —
        when :attr:`needs_pending` is set — each runnable thread's next
        memory operation.  The default implementation ignores it."""


class RoundRobinScheduler(Scheduler):
    """Fair rotation over runnable threads (the most benign schedule)."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, runnable: Sequence[int]) -> int:
        candidates = [t for t in runnable if t >= self._next]
        pick = min(candidates) if candidates else min(runnable)
        self._next = pick + 1
        return pick

    def reset(self) -> None:
        self._next = 0

    def state(self) -> tuple:
        return ("rr", self._next)


class RandomScheduler(Scheduler):
    """Uniform random choice — the workhorse for stress tests.

    ``reset()`` reseeds the generator, so every launch consumes the same
    decision stream: one seed identifies one schedule per launch shape,
    which is what makes a failing launch replayable.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose(self, runnable: Sequence[int]) -> int:
        return runnable[int(self._rng.integers(0, len(runnable)))]

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def state(self) -> tuple:
        return ("random", self._seed)


class AdversarialScheduler(Scheduler):
    """Random choice biased *away* from the last-run thread.

    Maximizes context switches between consecutive memory operations,
    which is exactly when word tearing and stale-read windows open up.
    ``stickiness`` is the probability of letting the same thread
    continue (0 = always switch).
    """

    def __init__(self, seed: int = 0, stickiness: float = 0.05) -> None:
        if not 0.0 <= stickiness <= 1.0:
            raise ValueError(f"stickiness must be in [0, 1], got {stickiness}")
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._stickiness = stickiness
        self._last: int | None = None

    def choose(self, runnable: Sequence[int]) -> int:
        others = [t for t in runnable if t != self._last]
        if others and (self._last is None
                       or self._rng.random() >= self._stickiness):
            pick = others[int(self._rng.integers(0, len(others)))]
        else:
            pick = runnable[int(self._rng.integers(0, len(runnable)))]
        self._last = pick
        return pick

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._last = None

    def state(self) -> tuple:
        return ("adversarial", self._seed, self._stickiness, self._last)
