"""The timing model: access statistics -> simulated milliseconds.

This encodes the architectural cost structure Section VI uses to explain
its results:

* **Plain** accesses are served by L1 when resident (cheap) and fall
  through to L2/DRAM otherwise.  Register-cached plain loads are free.
* **Volatile** accesses bypass L1 and are served by L2 (or DRAM when the
  footprint exceeds L2).
* **Atomic** accesses are L2 transactions with an additional
  architecture-dependent latency (``atomic_extra_cycles``), plus a
  contention term for operations that hit the same hot words (CC/MST's
  set representatives, SCC's ``goagain`` flag).

Total time divides the summed per-access cycle cost by the device's
effective parallelism and adds a fixed overhead per kernel launch
(iteration round).  This is a throughput model, not a cycle-accurate
pipeline — see DESIGN.md Section 5 for the calibration philosophy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec


@dataclass
class AccessStats:
    """Aggregate memory-operation counts of one algorithm run.

    The performance engine fills one of these; the SIMT executor's
    :class:`~repro.gpu.simt.LaunchStats` can be converted via
    :func:`stats_from_launches`.
    """

    plain_loads: float = 0.0
    plain_stores: float = 0.0
    volatile_loads: float = 0.0
    volatile_stores: float = 0.0
    atomic_loads: float = 0.0
    atomic_stores: float = 0.0
    atomic_rmws: float = 0.0
    #: atomics carrying a memory order stronger than relaxed
    ordered_atomics: float = 0.0
    register_hits: float = 0.0
    #: atomics aimed at highly contended words (same-address collisions)
    contended_atomics: float = 0.0
    #: bytes of distinct data the plain/volatile accesses touch
    footprint_bytes: float = 0.0
    #: kernel launches (host-side iteration rounds)
    rounds: int = 0
    #: compute cycles per thread-visit beyond memory (edge scans etc.)
    compute_ops: float = 0.0

    def merge(self, other: "AccessStats") -> None:
        """Accumulate another stats block into this one (footprint takes
        the max — it is a capacity, not a flow)."""
        for f in fields(self):
            if f.name == "footprint_bytes":
                self.footprint_bytes = max(self.footprint_bytes,
                                           other.footprint_bytes)
            else:
                setattr(self, f.name,
                        getattr(self, f.name) + getattr(other, f.name))

    @property
    def total_accesses(self) -> float:
        return (self.plain_loads + self.plain_stores + self.volatile_loads
                + self.volatile_stores + self.atomic_loads
                + self.atomic_stores + self.atomic_rmws)


@dataclass
class TimingBreakdown:
    """Itemized simulated cost (for reports and ablations)."""

    plain_cycles: float = 0.0
    volatile_cycles: float = 0.0
    atomic_cycles: float = 0.0
    contention_cycles: float = 0.0
    compute_cycles: float = 0.0
    launch_overhead_ms: float = 0.0
    total_ms: float = 0.0
    #: modelled cache behavior of the run's access streams — the
    #: quantities Section VI.A's profiling argument turns on.  Plain
    #: accesses are the only L1 clients (atomics and volatiles bypass
    #: L1 and are served at L2), so ``l1_hit_rate`` is the L1 hit rate
    #: *of the plain stream* and ``atomic_l2_hit_rate`` is where the
    #: bypassing atomic stream lands.
    l1_hit_rate: float = 0.0
    l2_hit_rate: float = 0.0
    atomic_l2_hit_rate: float = 0.0


class TimingModel:
    """Prices an :class:`AccessStats` for one device."""

    #: cycles charged per generic compute op (edge-list arithmetic)
    COMPUTE_CYCLES_PER_OP = 1.0

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.caches = CacheHierarchy.for_device(device)

    # ------------------------------------------------------------------
    def estimate(self, stats: AccessStats) -> TimingBreakdown:
        """Convert access statistics into simulated time."""
        dev = self.device
        out = TimingBreakdown()

        plain = stats.plain_loads + stats.plain_stores
        if plain > 0:
            l1_rate = self.caches.l1.hit_rate(stats.footprint_bytes, plain)
            l2_rate = self.caches.l2.hit_rate(stats.footprint_bytes,
                                              plain * (1 - l1_rate) + 1e-9)
            per = (l1_rate * dev.l1_hit_cycles
                   + (1 - l1_rate) * (l2_rate * dev.l2_hit_cycles
                                      + (1 - l2_rate) * dev.dram_cycles))
            out.plain_cycles = plain * per
            out.l1_hit_rate = l1_rate
            out.l2_hit_rate = l2_rate

        volatile = stats.volatile_loads + stats.volatile_stores
        if volatile > 0:
            l2_rate = self.caches.l2.hit_rate(stats.footprint_bytes, volatile)
            per = (l2_rate * dev.l2_hit_cycles
                   + (1 - l2_rate) * dev.dram_cycles)
            out.volatile_cycles = volatile * per

        atomics = stats.atomic_loads + stats.atomic_stores + stats.atomic_rmws
        if atomics > 0:
            l2_rate = self.caches.l2.hit_rate(stats.footprint_bytes, atomics)
            out.atomic_l2_hit_rate = l2_rate
            l2_cost = (l2_rate * dev.l2_hit_cycles
                       + (1 - l2_rate) * dev.dram_cycles)
            writes = stats.atomic_stores + stats.atomic_rmws
            out.atomic_cycles = (
                stats.atomic_loads * (l2_cost + dev.atomic_load_extra_cycles)
                + writes * (l2_cost + dev.atomic_store_extra_cycles)
                # non-relaxed orders restrict surrounding reordering;
                # Section II.A: "the weakest version that is sufficient
                # ... should be used to maximize performance"
                + stats.ordered_atomics * dev.memory_order_extra_cycles
            )
            out.contention_cycles = (stats.contended_atomics
                                     * dev.atomic_contention_cycles)

        out.compute_cycles = stats.compute_ops * self.COMPUTE_CYCLES_PER_OP

        work_cycles = (out.plain_cycles + out.volatile_cycles
                       + out.atomic_cycles + out.contention_cycles
                       + out.compute_cycles)
        parallel_cycles = work_cycles / max(1.0, self.device.parallel_lanes)
        out.launch_overhead_ms = stats.rounds * dev.kernel_launch_us / 1e3
        out.total_ms = dev.cycles_to_ms(parallel_cycles) + out.launch_overhead_ms
        return out

    def estimate_ms(self, stats: AccessStats) -> float:
        return self.estimate(stats).total_ms


def stats_from_launches(launches, footprint_bytes: float = 0.0) -> AccessStats:
    """Aggregate SIMT :class:`~repro.gpu.simt.LaunchStats` into an
    :class:`AccessStats` (used to cross-check the two execution levels).

    Tier-agnostic by construction: the batched warp-wide tier
    (:mod:`repro.gpu.batch`) fills the same ``LaunchStats`` counters the
    scalar interpreter does — vector dispatches add their lane count to
    the same per-kind buckets — so this aggregation consumes batched
    launch stats unchanged and produces byte-identical results.
    """
    from repro.gpu.accesses import AccessKind

    out = AccessStats(footprint_bytes=footprint_bytes)
    for ls in launches:
        out.plain_loads += ls.loads[AccessKind.PLAIN]
        out.volatile_loads += ls.loads[AccessKind.VOLATILE]
        out.atomic_loads += ls.loads[AccessKind.ATOMIC]
        out.plain_stores += ls.stores[AccessKind.PLAIN]
        out.volatile_stores += ls.stores[AccessKind.VOLATILE]
        out.atomic_stores += ls.stores[AccessKind.ATOMIC]
        out.atomic_rmws += ls.rmws
        out.register_hits += ls.register_hits
        out.rounds += 1
    return out
