"""Deterministic fault injection for the simulated device.

The paper's Section II argues that "benign" data races are a latent
reliability hazard: racy kernels can observe torn words, poll stale
register-cached values forever, and silently corrupt results.  This
module turns that hazard into a controllable, *seeded* adversary so the
study framework (:mod:`repro.core.resilience`) can be exercised against
exactly the failure modes the paper describes:

* ``drop``  — a non-atomic store is lost by the memory system
  (the lost-update race made manifest).
* ``tear``  — only the low native word of a wide non-atomic store
  lands; other threads observe Fig. 1's chimera values.
* ``stuck`` — a plain load returns a stale value indefinitely (the
  extreme of the register-caching model; Fig. 1's thread T4).
* ``stall`` — the scheduler starves a thread for a window of
  micro-steps (perf level: a multiplicative runtime delay).
* ``abort`` — a kernel launch dies with a *transient*
  :class:`~repro.errors.TransientKernelFault`; retries may succeed.

A :class:`FaultPlan` holds the per-kind rates plus a seed;
:meth:`FaultPlan.injector` derives an independent, deterministic
:class:`FaultInjector` for any key (cell, repetition, attempt), so runs
are reproducible and repetitions/attempts draw independent faults.

Everything is behind a ``None`` default: with no injector installed,
:mod:`repro.gpu.memory`, :mod:`repro.gpu.simt`, and
:mod:`repro.perf.engine` execute bit-identically to an unpatched tree.

Atomic accesses are immune to ``drop``/``tear``/``stuck`` by
construction — they are single indivisible memory transactions — which
is precisely why the paper's race-free conversions survive this
adversary while the racy baselines do not.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import DeadlockError, FaultConfigError, TransientKernelFault
from repro.gpu.accesses import AccessKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.variants import Variant
    from repro.gpu.accesses import MemSpan


class FaultKind(enum.Enum):
    """The injectable failure modes (names double as spec keywords)."""

    DROPPED_WRITE = "drop"
    TORN_WRITE = "tear"
    STUCK_READ = "stuck"
    SCHED_STALL = "stall"
    KERNEL_ABORT = "abort"


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind with its per-opportunity trigger probability.

    The *opportunity* depends on the level: per non-atomic memory
    micro-operation for ``drop``/``tear``/``stuck`` at the SIMT level,
    per micro-step for ``stall``, per launch for ``abort``, and per
    repetition for every kind at the performance level.
    """

    kind: FaultKind
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultConfigError(
                f"fault rate must be in [0, 1], got {self.rate} "
                f"for {self.kind.value!r}"
            )


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rates.

    The plan itself holds no mutable state; per-run randomness lives in
    the :class:`FaultInjector` objects it derives, each seeded from the
    plan seed plus an arbitrary key (typically the sweep cell, the
    repetition, and the retry attempt).
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._rates: dict[FaultKind, float] = {}
        for s in self.specs:
            if s.kind in self._rates:
                raise FaultConfigError(
                    f"duplicate fault kind {s.kind.value!r} in plan"
                )
            self._rates[s.kind] = s.rate

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI spec like ``"tear=0.3,stuck=0.1,abort=1"``.

        Each comma-separated item is ``kind=rate``; a bare ``kind``
        means rate 1.0.  Unknown kinds and out-of-range rates raise
        :class:`~repro.errors.FaultConfigError`.
        """
        known = {k.value: k for k in FaultKind}
        specs = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            name, _, value = item.partition("=")
            name = name.strip()
            if name not in known:
                raise FaultConfigError(
                    f"unknown fault kind {name!r}; known: {sorted(known)}"
                )
            try:
                rate = float(value) if value else 1.0
            except ValueError:
                raise FaultConfigError(
                    f"bad rate {value!r} for fault {name!r}"
                ) from None
            specs.append(FaultSpec(known[name], rate))
        if not specs:
            raise FaultConfigError(f"empty fault spec {text!r}")
        return cls(specs, seed=seed)

    # ------------------------------------------------------------------
    def rate(self, kind: FaultKind) -> float:
        return self._rates.get(kind, 0.0)

    def describe(self) -> str:
        body = ", ".join(f"{s.kind.value}={s.rate:g}" for s in self.specs)
        return f"{body} (seed {self.seed})"

    def injector(self, *key: object) -> "FaultInjector":
        """A deterministic injector for ``key`` (any hashable-ish parts).

        The derivation uses a stable digest, not Python's randomized
        ``hash``, so the same plan seed and key always produce the same
        fault stream — across processes and across ``--resume`` runs.
        """
        digest = hashlib.blake2b(
            repr((self.seed,) + key).encode(), digest_size=8
        ).digest()
        return FaultInjector(self, int.from_bytes(digest, "little"))


class FaultInjector:
    """The per-run fault stream: consulted by the memory, the SIMT
    executor, and the performance engine.

    One injector should drive exactly one run (one repetition of one
    cell, or one SIMT execution); derive a fresh one per run via
    :meth:`FaultPlan.injector` to keep repetitions independent.
    """

    #: micro-steps a stalled thread is held off the scheduler
    STALL_STEPS = 128
    #: latest micro-step at which an injected launch abort fires
    ABORT_WINDOW = 256

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        self._seen: dict["MemSpan", int] = {}
        self._stalls: dict[int, int] = {}
        self._abort_at: int | None = None
        self._tear_exposed = False
        self._stuck_exposed = False

    def _trigger(self, kind: FaultKind) -> bool:
        rate = self.plan.rate(kind)
        return rate > 0.0 and self._rng.random() < rate

    # ------------------------------------------------------------------
    # Memory level (consulted by GlobalMemory.span_read/span_write)
    # ------------------------------------------------------------------
    def store_fault(self, span: "MemSpan",
                    kind: AccessKind) -> FaultKind | None:
        """Decide the fate of one non-atomic store.

        Returns ``DROPPED_WRITE`` (the store is lost), ``TORN_WRITE``
        (only the low native word lands), or ``None``.  Atomic stores
        are indivisible transactions and pass through untouched.
        """
        if kind is AccessKind.ATOMIC:
            return None
        if self._trigger(FaultKind.DROPPED_WRITE):
            return FaultKind.DROPPED_WRITE
        if self._trigger(FaultKind.TORN_WRITE):
            return FaultKind.TORN_WRITE
        return None

    def load_fault(self, span: "MemSpan", value: int,
                   kind: AccessKind) -> int:
        """Possibly replace a *plain* load's value with a stale one.

        Models the register-caching delay taken to its extreme: the
        first value this injector ever saw at ``span`` can be returned
        forever.  Volatile and atomic loads always observe ``value``.
        """
        if kind is not AccessKind.PLAIN:
            return value
        stale = self._seen.get(span)
        if stale is None:
            self._seen[span] = value
            return value
        if stale != value and self._trigger(FaultKind.STUCK_READ):
            return stale
        return value

    # ------------------------------------------------------------------
    # SIMT executor level
    # ------------------------------------------------------------------
    def begin_launch(self) -> None:
        """Draw this launch's abort point (if any)."""
        self._abort_at = None
        if self._trigger(FaultKind.KERNEL_ABORT):
            self._abort_at = self._rng.randint(1, self.ABORT_WINDOW)

    def check_abort(self, step: int) -> None:
        """Raise the drawn transient abort once ``step`` reaches it."""
        if self._abort_at is not None and step >= self._abort_at:
            self._abort_at = None
            raise TransientKernelFault(
                f"injected transient kernel abort at micro-step {step}"
            )

    def filter_runnable(self, runnable: list[int],
                        step: int) -> list[int]:
        """Apply scheduler stalls: starve chosen threads for a window.

        Never stalls the last runnable thread, so injected stalls delay
        execution but cannot themselves deadlock the machine.
        """
        if self.plan.rate(FaultKind.SCHED_STALL) <= 0.0:
            return runnable
        self._stalls = {tid: until for tid, until in self._stalls.items()
                        if until > step}
        candidates = [tid for tid in runnable if tid not in self._stalls]
        if len(candidates) > 1 and self._trigger(FaultKind.SCHED_STALL):
            victim = candidates[self._rng.randrange(len(candidates))]
            self._stalls[victim] = step + self.STALL_STEPS
            candidates.remove(victim)
        return candidates if candidates else runnable

    # ------------------------------------------------------------------
    # Performance-engine level (aggregate, per repetition)
    # ------------------------------------------------------------------
    def begin_perf_run(self, algo_key: str, variant: "Variant",
                       plan) -> None:
        """Compute the variant's fault exposure and roll for an abort.

        Exposure comes from the algorithm's *effective* access plan:
        ``tear``/``drop`` need a shared non-atomic store site,
        ``stuck`` needs a shared plain load site.  The race-free
        conversion removes both, so the race-free variant is immune to
        the data-corrupting faults — it can only fail *loud* (abort).
        """
        from repro.core.transform import plan_for

        effective = plan_for(plan, variant)
        shared = [s for s in effective.sites if s.shared]
        self._tear_exposed = any(
            s.is_store and s.kind is not AccessKind.ATOMIC for s in shared
        )
        self._stuck_exposed = any(
            not s.is_store and not s.is_rmw
            and s.kind is AccessKind.PLAIN
            for s in shared
        )
        if self._trigger(FaultKind.KERNEL_ABORT):
            raise TransientKernelFault(
                f"injected transient launch failure "
                f"({algo_key}/{variant.value})"
            )

    def perf_finish(self, output: dict, runtime_ms: float) -> float:
        """Apply post-run faults; returns the (possibly delayed) runtime.

        May raise :class:`~repro.errors.DeadlockError` when a
        stuck-stale read turns a polling loop into a livelock (only
        possible for variants with plain shared loads).
        """
        if self._trigger(FaultKind.SCHED_STALL):
            runtime_ms *= 1.0 + self._rng.uniform(0.25, 1.0)
        if self._stuck_exposed and self._trigger(FaultKind.STUCK_READ):
            raise DeadlockError(
                "injected stuck-stale read: a plain polling loop never "
                "observes the update it waits for (register-caching "
                "model, Fig. 1's thread T4)"
            )
        if self._tear_exposed:
            dropped = self._trigger(FaultKind.DROPPED_WRITE)
            torn = self._trigger(FaultKind.TORN_WRITE)
            if dropped or torn:
                self._corrupt(output, torn=torn)
        return runtime_ms

    def _corrupt(self, output: dict, torn: bool) -> None:
        """Silently damage a few elements of one output array.

        ``torn=True`` plants high-half chimera values (a torn wide
        store); otherwise entries revert to zero (a dropped update).
        The damage is *silent* — only downstream validation can see it,
        which is the paper's point about benign-looking races.
        """
        arrays = [v for v in output.values()
                  if isinstance(v, np.ndarray) and v.size > 0]
        if not arrays:
            return
        arr = arrays[self._rng.randrange(len(arrays))]
        flat = arr.reshape(-1)
        count = max(1, flat.size // 64)
        idx = sorted({self._rng.randrange(flat.size) for _ in range(count)})
        if flat.dtype == np.bool_:
            flat[idx] = ~flat[idx]
        elif torn:
            chimera = np.bitwise_xor(flat[idx].astype(np.int64),
                                     np.int64(0x7FFF0000))
            flat[idx] = chimera.astype(flat.dtype)
        else:
            flat[idx] = 0
