"""Site-level access-kind overrides: the repair transform's hook.

The repair pipeline (:mod:`repro.repair`) must apply a *candidate fix*
— e.g. "promote ``cc.label.jump_read`` from PLAIN to ATOMIC" — to a
kernel without editing the algorithm's source.  Kernels already resolve
their access kinds at build time through
:func:`repro.core.transform.site_kind`; this module gives that lookup a
dynamic override layer:

    with site_kind_overrides({"cc.label.jump_read": AccessKind.ATOMIC}):
        kernel = make_cc_kernel(Variant.BASELINE)   # fix applied

Overrides nest (inner mappings shadow outer ones for the sites they
name) and are strictly scoped: on exit the previous state is restored
even on error.  The layer is intentionally process-global and **not**
thread-safe — it exists for the single-threaded repair/verification
loop, where every schedule exploration rebuilds its kernels inside the
context.  With no context active, :func:`current_override` returns
``None`` for every site and the lookup path is untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.errors import ReproError
from repro.gpu.accesses import AccessKind

#: stack of active override mappings; later entries shadow earlier ones
_STACK: list[dict[str, AccessKind]] = []


def current_override(name: str) -> AccessKind | None:
    """The active override for site ``name``, or None."""
    for mapping in reversed(_STACK):
        kind = mapping.get(name)
        if kind is not None:
            return kind
    return None


def active_overrides() -> dict[str, AccessKind]:
    """The merged override mapping currently in effect (outer→inner)."""
    merged: dict[str, AccessKind] = {}
    for mapping in _STACK:
        merged.update(mapping)
    return merged


@contextmanager
def site_kind_overrides(mapping: Mapping[str, AccessKind]
                        ) -> Iterator[dict[str, AccessKind]]:
    """Override the effective access kind of the named sites.

    ``mapping`` is validated eagerly: every value must be an
    :class:`AccessKind` (a typo'd string would otherwise surface as a
    confusing kernel-build error deep inside a schedule exploration).
    """
    frame: dict[str, AccessKind] = {}
    for name, kind in mapping.items():
        if not isinstance(kind, AccessKind):
            raise ReproError(
                f"override for site {name!r} must be an AccessKind, "
                f"got {kind!r}")
        frame[str(name)] = kind
    _STACK.append(frame)
    try:
        yield frame
    finally:
        _STACK.pop()
