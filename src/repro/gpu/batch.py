"""Warp-wide batched execution tier for the SIMT interpreter.

The interpreter tier advances ONE micro-operation per scheduler step and
rebuilds the runnable list every step — an O(threads) scan per retired
micro-op, O(threads²) per sweep round, which is what caps `scale` at toy
sizes.  This module replaces that loop, for eligible launches, with a
*wavefront stepper*: repeated tid-ascending passes over the thread list
in which every consecutive run of same-warp lanes whose pending
micro-ops form one uniform vector operation (same op class, access kind,
array, element width, aligned, conflict-free) is dispatched as a single
numpy gather/scatter against the :class:`~repro.gpu.memory.GlobalMemory`
arena.  Lanes that diverge — different ops, CAS retry loops that leave a
lane on a different micro-op, barrier waits, unaligned or conflicting
addresses — fall back to the scalar per-lane step for exactly that lane.

**Bit-identity argument.**  The round-robin scheduler picks the lowest
runnable tid at or after the previously chosen tid, wrapping when none
remains — i.e. it performs tid-ascending passes in which each eligible
thread retires exactly one micro-op, with eligibility re-evaluated at
each lane's turn.  The wavefront loop reproduces that order literally.
Within one uniform group the vector dispatch commutes with the serial
per-lane order because (a) loads do not mutate memory, (b) stores and
RMWs are only grouped when their target spans are pairwise disjoint,
and (c) resuming a lane's generator (`_advance`) performs no memory
traffic — so batching the memory phase before the per-lane completion
phase yields the same memory image, the same ``AccessEvent`` stream
(steps renumbered identically), the same ``LaunchStats``, and the same
``DeadlockError`` points as the interpreter.

Eligibility (:func:`ineligible_reason`) excludes every hook that
observes or perturbs individual micro-steps — controlled schedulers,
``step_probe``, fault injectors, weak-memory store buffers, warp
lockstep — so the racecheck/DPOR/repair paths always keep exact
interpreter semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeadlockError
from repro.gpu.accesses import AccessKind, RMWOp
from repro.gpu.interleave import RoundRobinScheduler
from repro.gpu.simt import AccessEvent, SimtExecutor, _Micro, _Thread
from repro.telemetry.metrics import get_registry
from repro.utils.bitops import to_unsigned

#: group element widths the typed-view gather/scatter supports
_VECTOR_WIDTHS = (1, 2, 4, 8)

#: warps fused into one dispatch window.  Bit-identity never depends on
#: warp boundaries (the wavefront order is pure tid order; lockstep mode
#: is ineligible), so fusing consecutive uniform warps only amortizes
#: the fixed numpy dispatch cost — 32-lane gathers are dominated by it.
FUSE_WARPS = 8

_UNSIGNED = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}
_SIGNED = {4: np.int32, 8: np.int64}

# micro-op classes for uniformity checks
_CLS_LOAD, _CLS_STORE, _CLS_RMW = 0, 1, 2


def ineligible_reason(ex: SimtExecutor) -> str | None:
    """Why ``ex`` cannot use the batched tier (None = it can).

    Every condition here marks a hook that observes or perturbs
    individual micro-steps, which the vector dispatch does not replay.
    """
    if ex.warp_lockstep:
        return "warp_lockstep"
    if ex.weak_memory:
        return "weak_memory"
    if not ex.memory_model.batch_eligible:
        return "memory_model"
    if ex.step_probe is not None:
        return "step_probe"
    if ex.faults is not None or ex.memory.faults is not None:
        return "faults"
    if type(ex.scheduler) is not RoundRobinScheduler:
        return "scheduler"
    return None


def run_launch(ex: SimtExecutor, threads: list[_Thread],
               epochs: dict[int, int], stats, launch_id: int,
               kernel_name: str = "kernel") -> None:
    """Run one (already primed) launch on the wavefront stepper.

    Mutates ``threads``/``epochs``/``stats``/``ex.events`` exactly as
    the interpreter loop would; raises the same ``DeadlockError``s at
    the same step counts.
    """
    n = len(threads)
    warp_size = ex.warp_size
    bs = ex.batch_stats
    bs.batched_launches += 1
    d0, l0 = bs.warp_dispatches, bs.warp_lanes
    s0 = dict(bs.scalar_steps)

    # the wavefront only visits still-live lanes: `active` is the
    # ascending tid list compacted once per pass as lanes retire
    active = [t.tid for t in threads if not t.done]
    while True:
        progressed = False
        new_active: list[int] = []
        i = 0
        na = len(active)
        while i < na:
            tid = active[i]
            thread = threads[tid]
            if thread.done:
                i += 1
                continue
            if thread.at_barrier:
                new_active.append(tid)
                i += 1
                continue
            progressed = True
            if not thread.micro:
                # between ops (barrier release): resume the generator
                _scalar_step(ex, thread, threads, epochs, stats,
                             launch_id, bs, "resume")
                if not thread.done:
                    new_active.append(tid)
                i += 1
                continue
            group, starts, resume = _collect_group(ex, threads, tid,
                                                   warp_size, n)
            if len(group) < 2:
                _scalar_step(ex, thread, threads, epochs, stats,
                             launch_id, bs, "solo")
                if not thread.done:
                    new_active.append(tid)
                i += 1
                continue
            if stats.steps + len(group) > ex.max_steps:
                # near the step budget: serial semantics raise mid-group
                _scalar_step(ex, thread, threads, epochs, stats,
                             launch_id, bs, "step_budget")
                if not thread.done:
                    new_active.append(tid)
                i += 1
                continue
            if not _dispatch(ex, group, starts, threads, epochs, stats,
                             launch_id, bs):
                # conflicting targets inside the group: per-lane order
                for t in group:
                    _scalar_step(ex, t, threads, epochs, stats,
                                 launch_id, bs, "conflict")
            for t in group:
                if not t.done:
                    new_active.append(t.tid)
            while i < na and active[i] < resume:
                i += 1
        active = new_active
        if not progressed:
            waiting = [t.tid for t in threads if t.at_barrier]
            if waiting:
                raise DeadlockError(
                    f"barrier divergence: threads {waiting} wait at a "
                    "barrier no peer will reach"
                )
            break  # all done

    _publish(kernel_name, bs, d0, l0, s0)


def _scalar_step(ex: SimtExecutor, thread: _Thread, threads, epochs,
                 stats, launch_id: int, bs, reason: str) -> None:
    """One interpreter micro-step for one lane (exact serial semantics)."""
    stats.steps += 1
    if stats.steps > ex.max_steps:
        raise DeadlockError(
            f"launch exceeded {ex.max_steps} micro-steps; "
            "likely an infinite polling loop on a stale "
            "register-cached value"
        )
    ex._step(thread, threads, epochs, stats, launch_id)
    bs.count_scalar(reason)


def _micro_cls(m: _Micro) -> int:
    if m.rmw is not None:
        return _CLS_RMW
    if m.is_write:
        return _CLS_STORE
    return _CLS_LOAD


def _collect_group(
    ex: SimtExecutor, threads: list[_Thread], start: int,
    warp_size: int, n: int,
) -> tuple[list[_Thread], list[int], int]:
    """Collect the uniform vector group headed at lane ``start``.

    Scans consecutive lanes of the head's warp; done lanes are skipped
    (permanently inert), any other break in uniformity stops the scan.
    Returns ``(group, starts, resume_tid)`` — the main loop continues
    its pass at ``resume_tid``.
    """
    head = threads[start]
    m0: _Micro = head.micro[0]
    span0 = m0.span
    cls = _micro_cls(m0)
    width = span0.nbytes
    if (width not in _VECTOR_WIDTHS
            or span0.start % width != 0
            or (cls == _CLS_RMW and width not in (4, 8))):
        return [head], [], start + 1
    entry = ex.memory._arrays.get(span0.array)
    if entry is None:
        return [head], [], start + 1  # scalar path raises the lookup error
    total = entry[0].total_bytes
    if span0.start < 0 or span0.start + width > total:
        return [head], [], start + 1  # scalar path raises the bounds error

    window = warp_size * FUSE_WARPS
    warp_end = min(n, (start // window + 1) * window)
    array = span0.array
    access = m0.access
    is_rmw = cls == _CLS_RMW
    is_write = cls == _CLS_STORE
    group = [head]
    starts = [span0.start]
    tid = start + 1
    while tid < warp_end:
        t = threads[tid]
        if t.done:
            tid += 1
            continue
        if t.at_barrier or not t.micro:
            break
        m: _Micro = t.micro[0]
        span = m.span
        if ((m.rmw is not None) != is_rmw
                or (not is_rmw and m.is_write != is_write)
                or m.access is not access
                or span.array != array
                or span.nbytes != width
                or span.start % width != 0
                or span.start < 0
                or span.start + width > total
                or (is_rmw
                    and (m.rmw is not m0.rmw or m.value != m0.value))):
            break
        group.append(t)
        starts.append(span.start)
        tid += 1
    return group, starts, tid


def _dispatch(ex: SimtExecutor, group: list[_Thread], starts: list[int],
              threads, epochs, stats, launch_id: int, bs) -> bool:
    """Retire the group's head micro-ops as one vector operation.

    Returns False (without side effects) when the group's targets
    conflict and per-lane serial order is required.
    """
    m0: _Micro = group[0].micro[0]
    width = m0.span.nbytes
    k = len(group)
    cls = _micro_cls(m0)
    if cls != _CLS_LOAD and len(set(starts)) != k:
        # duplicate targets: serial order is observable (last-write-wins
        # for stores, read-modify-write chains for RMWs) and numpy's
        # duplicate-index scatter order is unspecified
        return False
    if cls == _CLS_RMW and m0.rmw is RMWOp.CAS:
        if any(t.micro[0].expected is None for t in group):
            return False  # scalar path raises KernelError at that lane

    idx = np.array(starts, dtype=np.int64)
    if width != 1:
        idx //= width
    view = ex.memory.typed_view(m0.span.array, width)

    base = stats.steps
    stats.steps = base + k
    record = ex.record_events
    events = ex.events
    complete = ex._complete_op
    advance = ex._advance

    if cls == _CLS_LOAD:
        values = view[idx].tolist()
        which = stats.loads
        which[m0.access] = which[m0.access] + k
        for i, t in enumerate(group):
            micro: _Micro = t.micro.popleft()
            value = values[i]
            t.pieces.append(value)
            if record:
                events.append(AccessEvent(
                    step=base + i + 1, launch=launch_id, tid=t.tid,
                    block=t.block, epoch=epochs[t.block], span=micro.span,
                    is_read=True, is_write=False, access=micro.access,
                    value=value, site=micro.site,
                ))
            if not t.micro:
                complete(t, stats)
                advance(t, stats, threads, epochs)
    elif cls == _CLS_STORE:
        view[idx] = np.array([t.micro[0].value for t in group],
                             dtype=_UNSIGNED[width])
        which = stats.stores
        which[m0.access] = which[m0.access] + k
        for i, t in enumerate(group):
            micro = t.micro.popleft()
            if t.reg_cache:
                ex._invalidate_overlapping(t, micro.span)
            if record:
                events.append(AccessEvent(
                    step=base + i + 1, launch=launch_id, tid=t.tid,
                    block=t.block, epoch=epochs[t.block], span=micro.span,
                    is_read=False, is_write=True, access=micro.access,
                    value=micro.value, site=micro.site,
                ))
            if not t.micro:
                complete(t, stats)
                advance(t, stats, threads, epochs)
    else:
        values = _vector_rmw(group, view, idx, width, m0)
        stats.rmws += k
        for i, t in enumerate(group):
            micro = t.micro.popleft()
            value = values[i]
            t.pieces.append(value)
            if record:
                events.append(AccessEvent(
                    step=base + i + 1, launch=launch_id, tid=t.tid,
                    block=t.block, epoch=epochs[t.block], span=micro.span,
                    is_read=True, is_write=True, access=AccessKind.ATOMIC,
                    value=value, site=micro.site,
                ))
            if not t.micro:
                complete(t, stats)
                advance(t, stats, threads, epochs)
    bs.warp_dispatches += 1
    bs.warp_lanes += k
    return True


def _vector_rmw(group: list[_Thread], view: np.ndarray, idx: np.ndarray,
                width: int, m0: _Micro) -> list[int]:
    """Gather-compute-scatter one warp of same-op RMWs (disjoint
    targets); returns the per-lane old values, matching ``_apply_rmw``
    bit for bit."""
    bits = width * 8
    udt = _UNSIGNED[width]
    signed = bool(m0.value)  # RMW micros carry signedness in .value
    old = view[idx].copy()
    operands = np.array(
        [to_unsigned(t.micro[0].operand, bits) for t in group], dtype=udt)
    op = m0.rmw
    if op is RMWOp.ADD:
        # signed and unsigned add agree bit-for-bit under wraparound
        new = old + operands
    elif op is RMWOp.AND:
        new = old & operands
    elif op is RMWOp.OR:
        new = old | operands
    elif op is RMWOp.XOR:
        new = old ^ operands
    elif op in (RMWOp.MIN, RMWOp.MAX):
        fn = np.minimum if op is RMWOp.MIN else np.maximum
        if signed:
            sdt = _SIGNED[width]
            new = fn(old.view(sdt), operands.view(sdt)).view(udt)
        else:
            new = fn(old, operands)
    elif op is RMWOp.EXCH:
        new = operands
    else:  # CAS (expected checked non-None by the caller)
        expected = np.array(
            [to_unsigned(t.micro[0].expected, bits) for t in group],
            dtype=udt)
        new = np.where(old == expected, operands, old)
    view[idx] = new
    return old.tolist()


def _publish(kernel_name: str, bs, d0: int, l0: int,
             s0: dict[str, int]) -> None:
    """Fold this launch's batch-tier deltas into the telemetry registry."""
    reg = get_registry()
    if not reg.enabled:
        return
    reg.counter("repro_simt_batch_launches_total",
                "Kernel launches executed by the batched warp-wide tier",
                ("kernel",)).inc(1, kernel_name)
    warps = bs.warp_dispatches - d0
    if warps:
        reg.counter("repro_simt_batch_warps_total",
                    "Warp-wide vector dispatches retired",
                    ("kernel",)).inc(warps, kernel_name)
        reg.counter("repro_simt_batch_lanes_total",
                    "Lanes retired inside vector dispatches",
                    ("kernel",)).inc(bs.warp_lanes - l0, kernel_name)
    scalar = reg.counter(
        "repro_simt_batch_scalar_steps_total",
        "Per-lane scalar fallback steps on the batched tier",
        ("kernel", "reason"))
    for reason, count in bs.scalar_steps.items():
        delta = count - s0.get(reason, 0)
        if delta:
            scalar.inc(delta, kernel_name, reason)
