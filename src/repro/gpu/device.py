"""Device profiles for the paper's four GPUs (Table I).

Each :class:`DeviceSpec` carries the hardware columns of Table I plus
the constants of the timing model.  The timing constants encode the
architectural mechanisms Section VI identifies:

* Plain (non-volatile) accesses are served by the per-SM L1 cache.
* Volatile accesses bypass L1 and are served by L2 (this is why the
  codes whose baselines already use ``volatile`` — GC, MST, MIS — lose
  little when converted to atomics, which are also L2 operations).
* Atomic loads/stores are performed at L2 with an extra effective cost;
  the paper observes this penalty *grows* on newer architectures
  ("recent GPUs are more negatively affected by extra synchronization
  than older GPUs", Section VII), so the atomic extras rise from Turing
  to Ada, with stores/RMWs (which serialize at the L2 atomic units)
  penalized much more than loads.
* ``plain_staleness_rounds`` models the compiler keeping plain loads in
  registers: a plain read may observe a value up to that many rounds
  old.  Atomic (and volatile) reads observe current values.  This is
  the mechanism behind the race-free MIS speedup (Section VI.A).

The constants are calibration parameters of the simulation, not
measured hardware numbers; see DESIGN.md Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError


@dataclass(frozen=True)
class DeviceSpec:
    """A simulated GPU: Table I columns + timing-model constants."""

    name: str
    architecture: str
    cores: int
    sms: int
    l1_kb: int
    l2_mb: float
    memory_gb: int
    bandwidth_gbs: int
    nvcc: str
    nvcc_flags: str
    # --- timing model constants -------------------------------------
    clock_ghz: float = 1.5
    l1_hit_cycles: float = 30.0
    l2_hit_cycles: float = 55.0
    dram_cycles: float = 160.0
    # extra effective cost of an atomic load over a plain L2 access
    atomic_load_extra_cycles: float = 6.0
    # extra effective cost of an atomic store / RMW (these serialize at
    # the L2 atomic units; the penalty grows on newer architectures)
    atomic_store_extra_cycles: float = 20.0
    # cycles charged per *contending* atomic store/RMW on one word
    atomic_contention_cycles: float = 25.0
    # extra cost of an atomic with a memory order stronger than relaxed
    # (acquire/release/seq_cst restrict reordering around the access)
    memory_order_extra_cycles: float = 120.0
    # launch overhead, scaled with the suite's ~1/256 input scale so
    # overhead amortization matches the paper's full-size regime
    kernel_launch_us: float = 0.05
    # compiler visibility model: plain reads may be this many rounds stale
    plain_staleness_rounds: int = 2
    # fraction of peak parallelism irregular kernels achieve
    occupancy: float = 0.5
    cache_line_bytes: int = 128
    native_word_bits: int = 32
    supports_64bit_atomics: bool = True
    supports_libcupp: bool = True

    @property
    def l1_bytes(self) -> int:
        return self.l1_kb * 1024

    @property
    def l2_bytes(self) -> int:
        return int(self.l2_mb * 1024 * 1024)

    @property
    def parallel_lanes(self) -> float:
        """Effective number of concurrently progressing threads."""
        return self.cores * self.occupancy

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9) * 1e3


def _gpu(**kwargs) -> DeviceSpec:
    return DeviceSpec(**kwargs)


#: The four evaluation GPUs of Table I.  The L1/L2/memory columns are the
#: paper's; the cycle constants are calibrated so the per-algorithm
#: geomean speedups land in the paper's bands (Fig. 6): 2070 Super is the
#: least penalized by atomics, A100 and 4090 the most.
PAPER_GPUS: dict[str, DeviceSpec] = {
    "titanv": _gpu(
        name="Titan V", architecture="Volta", cores=5120, sms=80,
        l1_kb=96, l2_mb=4.5, memory_gb=12, bandwidth_gbs=652,
        nvcc="10.1", nvcc_flags="-O3 -arch=sm_70",
        clock_ghz=1.455,
        l1_hit_cycles=30.0, l2_hit_cycles=55.0, dram_cycles=160.0,
        atomic_load_extra_cycles=5.0, atomic_store_extra_cycles=15.0,
        atomic_contention_cycles=40.0,
        plain_staleness_rounds=3, occupancy=0.50,
        supports_libcupp=False,  # CUDA 10.1 predates libcu++; CCCL used
    ),
    "2070super": _gpu(
        name="2070 Super", architecture="Turing", cores=2560, sms=40,
        l1_kb=96, l2_mb=4.0, memory_gb=8, bandwidth_gbs=448,
        nvcc="12.0", nvcc_flags="-O3 -arch=sm_75",
        clock_ghz=1.605,
        l1_hit_cycles=32.0, l2_hit_cycles=40.0, dram_cycles=130.0,
        atomic_load_extra_cycles=2.0, atomic_store_extra_cycles=6.0,
        atomic_contention_cycles=15.0,
        plain_staleness_rounds=2, occupancy=0.55,
    ),
    "a100": _gpu(
        name="A100", architecture="Ampere", cores=6912, sms=108,
        l1_kb=192, l2_mb=40.0, memory_gb=40, bandwidth_gbs=1555,
        nvcc="12.0", nvcc_flags="-O3 -arch=sm_80",
        clock_ghz=1.41,
        l1_hit_cycles=32.0, l2_hit_cycles=55.0, dram_cycles=150.0,
        atomic_load_extra_cycles=8.0, atomic_store_extra_cycles=22.0,
        atomic_contention_cycles=150.0,
        plain_staleness_rounds=3, occupancy=0.50,
    ),
    "4090": _gpu(
        name="4090", architecture="Ada Lovelace", cores=16384, sms=128,
        l1_kb=128, l2_mb=72.0, memory_gb=24, bandwidth_gbs=1008,
        nvcc="12.0", nvcc_flags="-O3 -arch=sm_89",
        clock_ghz=2.52,
        l1_hit_cycles=30.0, l2_hit_cycles=120.0, dram_cycles=260.0,
        atomic_load_extra_cycles=8.0, atomic_store_extra_cycles=40.0,
        atomic_contention_cycles=170.0,
        plain_staleness_rounds=2, occupancy=0.45,
    ),
}

#: Canonical device ordering used by reports (oldest to newest).
DEVICE_ORDER: tuple[str, ...] = ("titanv", "2070super", "a100", "4090")


def get_device(key: str) -> DeviceSpec:
    """Look up a device by key (``titanv``, ``2070super``, ``a100``,
    ``4090``) or by its display name."""
    norm = key.lower().replace(" ", "").replace("-", "")
    if norm in PAPER_GPUS:
        return PAPER_GPUS[norm]
    for spec in PAPER_GPUS.values():
        if spec.name.lower().replace(" ", "") == norm:
            return spec
    raise DeviceError(f"unknown device {key!r}; known: {sorted(PAPER_GPUS)}")


def device_key(spec: DeviceSpec) -> str:
    """The short table key of a spec (``titanv``, ...), or its display
    name for ad-hoc specs — used as the telemetry ``device`` label."""
    for key, known in PAPER_GPUS.items():
        if known is spec:
            return key
    return spec.name
