"""Simulated GPU substrate.

This package stands in for the CUDA hardware/software stack the paper
measures on:

* :mod:`repro.gpu.accesses` — the three access classes (plain, volatile,
  atomic) whose semantics the paper contrasts, plus memory orders.
* :mod:`repro.gpu.device` — device profiles for the paper's four GPUs
  (Table I) including the timing constants of the cost model.
* :mod:`repro.gpu.memory` — word-granular global memory with real word
  tearing for elements wider than the native word.
* :mod:`repro.gpu.atomics` — the libcu++-style atomic helpers of
  Figs. 2-5 (relaxed atomicRead/atomicWrite, char-in-int masking,
  int2-in-long-long half accessors).
* :mod:`repro.gpu.simt` — an interleaving SIMT interpreter executing
  kernels written as Python generators.
* :mod:`repro.gpu.racecheck` — a dynamic data-race detector over the
  interpreter's access history (the Compute Sanitizer / iGuard stand-in).
* :mod:`repro.gpu.cache` — set-associative cache simulator and the
  analytic cache model used by the performance level.
* :mod:`repro.gpu.timing` — converts access statistics into simulated
  runtime for a given device.
* :mod:`repro.gpu.faults` — seeded fault injection (dropped/torn writes,
  stuck-stale reads, scheduler stalls, transient aborts) exercising the
  failure modes the paper argues racy code risks.
"""

from repro.gpu.accesses import AccessKind, DType, MemoryOrder, Scope
from repro.gpu.device import PAPER_GPUS, DeviceSpec, get_device
from repro.gpu.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import KernelLaunch, SimtExecutor, ThreadCtx
from repro.gpu.racecheck import RaceDetector, RaceReport
from repro.gpu.timing import AccessStats, TimingModel

__all__ = [
    "AccessKind",
    "DType",
    "MemoryOrder",
    "Scope",
    "DeviceSpec",
    "PAPER_GPUS",
    "get_device",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "GlobalMemory",
    "SimtExecutor",
    "KernelLaunch",
    "ThreadCtx",
    "RaceDetector",
    "RaceReport",
    "AccessStats",
    "TimingModel",
]
