"""Schedule recording, deterministic replay, and failure minimization.

The SIMT interpreter is deterministic once the scheduler's decisions
are fixed, so a schedule is fully described by the sequence of thread
picks — one per scheduling decision, grouped per kernel launch.  This
module provides:

* :class:`DecisionLog` — the compact decision record, with JSON and
  one-line string encodings;
* :class:`RecordingScheduler` — wraps any scheduler and records the log
  of whatever it decides, so a failing stress-test seed can be captured
  once and replayed forever;
* :class:`ReplayScheduler` — bit-deterministic strict replay of a log
  (divergence raises :class:`~repro.errors.ScheduleReplayError`);
* :class:`DeviationScheduler` — a log expressed *relative to* the
  deterministic ``stay`` policy as a sparse set of deviations, which is
  the representation delta-debugging shrinks;
* :func:`minimize_deviations` — ddmin over the deviation set: shrink a
  failing schedule to a minimal set of forced context switches before
  presenting it to a human.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ScheduleReplayError
from repro.gpu.interleave import PendingOp, Scheduler


def stay_policy(runnable: Sequence[int], last: int | None) -> int:
    """The canonical preemption-free default: keep running the previous
    thread while it can run, else fall to the lowest-numbered runnable
    thread.  Both the explorer's free phase and the deviation encoding
    are defined against this policy."""
    if last is not None and last in runnable:
        return last
    return min(runnable)


@dataclass(frozen=True)
class DecisionLog:
    """One recorded schedule: thread picks per scheduling decision,
    grouped by kernel launch."""

    launches: tuple[tuple[int, ...], ...]

    @property
    def total_decisions(self) -> int:
        return sum(len(l) for l in self.launches)

    def flat(self) -> list[int]:
        return [pick for launch in self.launches for pick in launch]

    # -- encodings -----------------------------------------------------
    def compact(self) -> str:
        """One-line form, e.g. ``"0,0,1,1/1,0"`` (launches split by /)."""
        return "/".join(",".join(str(p) for p in launch)
                        for launch in self.launches)

    @classmethod
    def from_compact(cls, text: str) -> "DecisionLog":
        try:
            return cls(tuple(
                tuple(int(p) for p in part.split(",") if p != "")
                for part in text.strip().split("/")))
        except ValueError as exc:
            raise ScheduleReplayError(
                f"malformed decision log {text!r}: {exc}") from None

    def to_json(self) -> str:
        return json.dumps({"version": 1,
                           "launches": [list(l) for l in self.launches]})

    @classmethod
    def from_json(cls, text: str) -> "DecisionLog":
        try:
            data = json.loads(text)
            return cls(tuple(tuple(int(p) for p in launch)
                             for launch in data["launches"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ScheduleReplayError(
                f"malformed decision log JSON: {exc}") from None

    @classmethod
    def from_decisions(cls, picks: Sequence[int],
                       launch_starts: Sequence[int]) -> "DecisionLog":
        """Group a flat pick list by the recorded launch boundaries."""
        starts = list(launch_starts) or [0]
        bounds = starts + [len(picks)]
        return cls(tuple(tuple(picks[bounds[i]:bounds[i + 1]])
                         for i in range(len(starts))))


class RecordingScheduler(Scheduler):
    """Delegates to ``base`` and records every decision it makes."""

    def __init__(self, base: Scheduler) -> None:
        self._base = base
        self.needs_pending = base.needs_pending
        self.picks: list[int] = []
        self.launch_starts: list[int] = []

    def reset(self) -> None:
        self._base.reset()
        self.launch_starts.append(len(self.picks))

    def observe(self, runnable: Sequence[int],
                pending: Mapping[int, PendingOp] | None) -> None:
        self._base.observe(runnable, pending)

    def choose(self, runnable: Sequence[int]) -> int:
        pick = self._base.choose(runnable)
        self.picks.append(pick)
        return pick

    def state(self) -> tuple:
        return ("recording", len(self.picks)) + self._base.state()

    def log(self) -> DecisionLog:
        return DecisionLog.from_decisions(self.picks, self.launch_starts)


class ReplayScheduler(Scheduler):
    """Strictly replays a :class:`DecisionLog`.

    Replay is bit-deterministic: driving the same program with the same
    log reproduces the identical micro-step sequence and therefore the
    identical final memory image.  Any divergence — a recorded pick
    that is not runnable, more launches or decisions than recorded —
    raises :class:`~repro.errors.ScheduleReplayError` instead of
    silently exploring a different schedule.
    """

    def __init__(self, log: DecisionLog) -> None:
        self._log = log
        self._launch = -1
        self._pos = 0
        #: decisions also recorded back, so a replay can be re-logged
        self.runnable_sets: list[tuple[int, ...]] = []

    def reset(self) -> None:
        self._launch += 1
        self._pos = 0
        if self._launch >= len(self._log.launches):
            raise ScheduleReplayError(
                f"replay log has {len(self._log.launches)} launch(es) "
                f"but the program started launch {self._launch + 1}")

    def choose(self, runnable: Sequence[int]) -> int:
        launch = self._log.launches[self._launch]
        if self._pos >= len(launch):
            raise ScheduleReplayError(
                f"replay log exhausted at launch {self._launch} "
                f"decision {self._pos}: program wants more decisions "
                "than were recorded")
        pick = launch[self._pos]
        if pick not in runnable:
            raise ScheduleReplayError(
                f"replay diverged at launch {self._launch} decision "
                f"{self._pos}: recorded thread {pick} is not in the "
                f"runnable set {list(runnable)}")
        self._pos += 1
        self.runnable_sets.append(tuple(runnable))
        return pick

    def state(self) -> tuple:
        return ("replay", self._launch, self._pos)


class DeviationScheduler(Scheduler):
    """A schedule as a sparse set of deviations from ``stay_policy``.

    ``deviations`` maps a global decision index to the thread to force
    there; every other decision follows the stay policy.  A deviation
    whose thread is not runnable at its index is skipped (best-effort
    application — exactly what delta debugging needs, since removing
    one deviation shifts the downstream schedule).  Decisions are
    re-recorded, so the concrete :class:`DecisionLog` of whatever
    actually ran is always available.
    """

    def __init__(self, deviations: Mapping[int, int]) -> None:
        self.deviations = dict(deviations)
        self.picks: list[int] = []
        self.launch_starts: list[int] = []
        self.applied: set[int] = set()
        self._last: int | None = None

    def reset(self) -> None:
        self.launch_starts.append(len(self.picks))
        self._last = None

    def choose(self, runnable: Sequence[int]) -> int:
        index = len(self.picks)
        pick = self.deviations.get(index)
        if pick is not None and pick in runnable:
            self.applied.add(index)
        else:
            pick = stay_policy(runnable, self._last)
        self.picks.append(pick)
        self._last = pick
        return pick

    def state(self) -> tuple:
        return ("deviation", len(self.picks))

    def log(self) -> DecisionLog:
        return DecisionLog.from_decisions(self.picks, self.launch_starts)


def deviations_of(picks: Sequence[int],
                  runnable_sets: Sequence[Sequence[int]],
                  launch_starts: Sequence[int]) -> dict[int, int]:
    """Express a concrete schedule as deviations from ``stay_policy``."""
    starts = set(launch_starts)
    deviations: dict[int, int] = {}
    last: int | None = None
    for i, (pick, runnable) in enumerate(zip(picks, runnable_sets)):
        if i in starts:
            last = None
        if pick != stay_policy(runnable, last):
            deviations[i] = pick
        last = pick
    return deviations


@dataclass
class MinimizeResult:
    """Outcome of schedule minimization."""

    log: DecisionLog                  #: the minimized concrete schedule
    deviations: dict[int, int]        #: surviving forced switches
    initial_deviations: int
    runs_used: int = 0
    fingerprint: bytes | None = field(default=None, repr=False)


def minimize_deviations(
    deviations: Mapping[int, int],
    still_fails: Callable[[DeviationScheduler], bool],
    max_runs: int = 200,
) -> MinimizeResult:
    """Delta-debug a failing schedule down to a minimal deviation set.

    ``still_fails(scheduler)`` must drive one fresh execution under the
    given scheduler and report whether the original failure reproduced.
    Implements Zeller's ddmin over the deviation indices: repeatedly try
    dropping chunks (testing complements), halving granularity, until
    the set is 1-minimal or the run budget is exhausted.
    """
    items = sorted(deviations)
    runs = 0

    def test(subset: list[int]) -> tuple[bool, DeviationScheduler]:
        nonlocal runs
        runs += 1
        sched = DeviationScheduler({i: deviations[i] for i in subset})
        return still_fails(sched), sched

    last_sched: DeviationScheduler | None = None
    n = 2
    while len(items) >= 2 and runs < max_runs:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk:]
            ok, sched = test(complement)
            if ok:
                items = complement
                last_sched = sched
                n = max(n - 1, 2)
                reduced = True
                break
            if runs >= max_runs:
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    if len(items) == 1 and runs < max_runs:
        ok, sched = test([])
        if ok:
            items = []
            last_sched = sched

    final = {i: deviations[i] for i in items}
    if last_sched is None or set(last_sched.applied) != set(items):
        # re-run once so the returned log matches the surviving set
        ok, last_sched = test(items)
        if not ok:
            raise ScheduleReplayError(
                "minimized schedule no longer reproduces the failure — "
                "the program is not deterministic under replay")
    return MinimizeResult(log=last_sched.log(), deviations=final,
                          initial_deviations=len(deviations),
                          runs_used=runs)
