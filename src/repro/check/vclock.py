"""Vector-clock happens-before engine with predictive race reports.

This replaces the race detector's shadow-pair scan with FastTrack-style
epoch reasoning (Flanagan & Freund): every access event carries an
*epoch* ``tid@clock``; per-byte shadow state keeps the last-write epoch
and the readers since that write, and an access races with a prior
access iff the prior epoch is not contained in the current thread's
vector clock.  The clock joins model exactly the simulator's
synchronization vocabulary:

* the implicit barrier between kernel launches joins every thread's
  clock (the ordering iGuard reportedly misses, causing its false
  positives);
* ``__syncthreads()`` joins the clocks of all threads in the block
  (per-block barrier clock, one join per epoch transition);
* atomic happens-before edges are *model-supplied*
  (:mod:`repro.memmodel`): under the default ``RelaxedGPU`` model
  relaxed atomics never create edges — matching both libcu++ and the
  paper's codes — while an acquiring atomic read joins the per-location
  release clock left by releasing atomic writes when the model says the
  pair synchronizes (always under SC/TSO, only for
  acquire/release/seq_cst orders under ``RelaxedGPU``/``PTXScoped``).
  A ``PTXScoped`` block-scope release publishes into a per-block
  release bucket that only same-block acquirers join.

**Predictive reports.**  A per-schedule shadow detector forgets a write
as soon as the next write to the same byte lands, so it only flags the
racy pair this execution happened to place adjacently.  Following the
predictive-race line of work ("Predictive Data Race Detection for
GPUs", PAPERS.md), the engine additionally keeps a bounded *history* of
displaced writes and readers per byte: a conflicting access that is
unordered with a displaced entry is a race in some feasible reordering
of the observed trace even if this trace separated the pair — those
reports carry ``predicted=True``.  On race-free programs every
conflicting pair is ordered, so prediction can never introduce a false
positive there.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.gpu.accesses import AccessKind
from repro.gpu.simt import AccessEvent


class VectorClock:
    """A sparse thread→clock map with join / contains operations."""

    __slots__ = ("_c",)

    def __init__(self, init: dict[int, int] | None = None) -> None:
        self._c: dict[int, int] = dict(init) if init else {}

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def advance(self, tid: int) -> int:
        """Increment ``tid``'s own component; returns the new clock."""
        value = self._c.get(tid, 0) + 1
        self._c[tid] = value
        return value

    def join(self, other: "VectorClock") -> None:
        for tid, clock in other._c.items():
            if clock > self._c.get(tid, 0):
                self._c[tid] = clock

    def contains(self, tid: int, clock: int) -> bool:
        """True iff the epoch ``tid@clock`` happens-before this clock."""
        return clock <= self._c.get(tid, 0)

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"t{t}@{c}" for t, c in sorted(self._c.items()))
        return f"<VC {body}>"


@dataclass(frozen=True)
class Epoch:
    """One access stamped with its thread clock (FastTrack's ``c@t``)."""

    tid: int
    clock: int
    event: AccessEvent


@dataclass
class _ByteShadow:
    """Shadow state for one byte of one array."""

    last_write: Epoch | None = None
    #: readers since the last write, newest epoch per thread
    readers: dict[int, Epoch] = field(default_factory=dict)
    #: displaced writes/readers — the predictive window
    write_history: deque = field(default_factory=lambda: deque(maxlen=4))
    read_history: deque = field(default_factory=lambda: deque(maxlen=8))


def conflicts(a: AccessEvent, b: AccessEvent) -> bool:
    """Race-relevant conflict: different threads, at least one write,
    not both atomic (byte overlap is implied by shared shadow state)."""
    if a.tid == b.tid:
        return False
    if not (a.is_write or b.is_write):
        return False
    if a.access is AccessKind.ATOMIC and b.access is AccessKind.ATOMIC:
        return False
    return True


class VectorClockEngine:
    """Streams :class:`AccessEvent` records through epoch shadow state.

    ``on_report(first, second, byte, predicted) -> bool`` is invoked for
    every racy pair found; returning False stops the analysis (the
    caller implements deduplication and report caps).

    Parameters
    ----------
    history:
        Displaced-access window per byte for predictive detection
        (0 disables prediction entirely).
    memory_model:
        The consistency model supplying atomic happens-before edges
        (a :class:`~repro.memmodel.models.MemoryModel`, spec string, or
        None for the paper's relaxed default, under which atomics never
        synchronize).
    """

    def __init__(self,
                 on_report: Callable[[AccessEvent, AccessEvent, int, bool],
                                     bool],
                 history: int = 4,
                 memory_model=None) -> None:
        from repro.memmodel.models import resolve_model

        self._on_report = on_report
        self._history = history
        self._model = resolve_model(memory_model)
        #: per-(array, start, bucket) release clocks; bucket is "dev"
        #: or ("b", block) for block-scoped releases
        self._release: dict[tuple, VectorClock] = {}
        self._clocks: dict[int, VectorClock] = {}
        self._launch_clock = VectorClock()
        self._thread_launch: dict[int, int] = {}
        self._current_launch: int | None = None
        # per-block barrier bookkeeping, reset at each launch boundary
        self._block_epoch: dict[int, int] = {}
        self._barrier_clock: dict[int, VectorClock] = {}
        self._pending_barrier: dict[int, VectorClock] = {}
        self._thread_epoch: dict[int, int] = {}
        self._shadow: dict[tuple[str, int], _ByteShadow] = {}

    # ------------------------------------------------------------------
    def _thread_clock(self, tid: int) -> VectorClock:
        vc = self._clocks.get(tid)
        if vc is None:
            vc = self._clocks[tid] = VectorClock()
        return vc

    def _enter_launch(self, launch: int) -> None:
        """All threads of the previous launch synchronize: fold every
        clock into the launch clock and reset the barrier state."""
        if self._current_launch is not None:
            for vc in self._clocks.values():
                self._launch_clock.join(vc)
        self._current_launch = launch
        self._block_epoch.clear()
        self._barrier_clock.clear()
        self._pending_barrier.clear()
        self._thread_epoch.clear()
        # the launch join dominates prior releases; drop their clocks
        self._release.clear()

    def _sync_thread(self, ev: AccessEvent, vc: VectorClock) -> None:
        """Apply launch-boundary and barrier joins owed to this thread."""
        if self._thread_launch.get(ev.tid) != ev.launch:
            vc.join(self._launch_clock)
            self._thread_launch[ev.tid] = ev.launch
        block = ev.block
        if ev.epoch > self._block_epoch.get(block, 0):
            # one or more barriers completed since the last event of
            # this block: fold the participants' clocks into the
            # barrier clock exactly once per transition
            bc = self._barrier_clock.setdefault(block, VectorClock())
            pend = self._pending_barrier.pop(block, None)
            if pend is not None:
                bc.join(pend)
            self._block_epoch[block] = ev.epoch
        if ev.epoch > self._thread_epoch.get(ev.tid, 0):
            bc = self._barrier_clock.get(block)
            if bc is not None:
                vc.join(bc)
            self._thread_epoch[ev.tid] = ev.epoch

    # ------------------------------------------------------------------
    def feed(self, ev: AccessEvent) -> bool:
        """Process one event; returns False when the caller asked to
        stop via ``on_report``."""
        if ev.launch != self._current_launch:
            self._enter_launch(ev.launch)
        vc = self._thread_clock(ev.tid)
        self._sync_thread(ev, vc)
        model = self._model
        is_atomic = ev.access is AccessKind.ATOMIC
        if is_atomic and ev.is_read:
            eff = model.runtime_order(ev.order)
            if model.acquire_syncs(eff):
                key = (ev.span.array, ev.span.start)
                rel = self._release.get((*key, "dev"))
                if rel is not None:
                    vc.join(rel)
                rel = self._release.get((*key, ("b", ev.block)))
                if rel is not None:
                    vc.join(rel)
        clock = vc.advance(ev.tid)
        epoch = Epoch(ev.tid, clock, ev)
        if is_atomic and ev.is_write:
            eff = model.runtime_order(ev.order)
            if model.release_syncs(eff):
                # a block-scoped release (when the model distinguishes
                # scopes) publishes to same-block acquirers only
                bucket = ("dev" if model.scope_syncs(ev.scope,
                                                     same_block=False)
                          else ("b", ev.block))
                dst = self._release.setdefault(
                    (ev.span.array, ev.span.start, bucket), VectorClock())
                dst.join(vc)

        for byte in range(ev.span.start, ev.span.end):
            shadow = self._shadow.get((ev.span.array, byte))
            if shadow is None:
                shadow = _ByteShadow(
                    write_history=deque(maxlen=self._history),
                    read_history=deque(maxlen=2 * self._history))
                self._shadow[(ev.span.array, byte)] = shadow
            if not self._check_byte(shadow, ev, vc, byte):
                return False
            self._update_byte(shadow, ev, epoch)

        # accumulate this thread's clock toward the next barrier
        pend = self._pending_barrier.setdefault(ev.block, VectorClock())
        pend.join(vc)
        return True

    def analyze(self, events: Iterable[AccessEvent]) -> None:
        for ev in events:
            if not self.feed(ev):
                return

    # ------------------------------------------------------------------
    def _check_byte(self, shadow: _ByteShadow, ev: AccessEvent,
                    vc: VectorClock, byte: int) -> bool:
        def unordered(e: Epoch) -> bool:
            return (conflicts(e.event, ev)
                    and not vc.contains(e.tid, e.clock))

        lw = shadow.last_write
        if lw is not None and unordered(lw):
            if not self._on_report(lw.event, ev, byte, False):
                return False
        if ev.is_write:
            for reader in shadow.readers.values():
                if unordered(reader):
                    if not self._on_report(reader.event, ev, byte, False):
                        return False
        if self._history:
            for past in shadow.write_history:
                if unordered(past):
                    if not self._on_report(past.event, ev, byte, True):
                        return False
            if ev.is_write:
                for past in shadow.read_history:
                    if unordered(past):
                        if not self._on_report(past.event, ev, byte, True):
                            return False
        return True

    @staticmethod
    def _update_byte(shadow: _ByteShadow, ev: AccessEvent,
                     epoch: Epoch) -> None:
        if ev.is_write:
            if shadow.last_write is not None:
                shadow.write_history.append(shadow.last_write)
            for reader in shadow.readers.values():
                shadow.read_history.append(reader)
            shadow.readers.clear()
            shadow.last_write = epoch
        if ev.is_read:
            shadow.readers[ev.tid] = epoch
