"""Systematic concurrency checking for the SIMT simulator.

The ``repro.check`` subsystem turns the stress-testing story of the
reproduction ("run under many adversarial seeds and hope") into a
systematic one:

* :mod:`repro.check.explore` — bounded schedule-space enumeration with
  dynamic partial-order reduction, sleep sets, and preemption bounding;
* :mod:`repro.check.vclock` — FastTrack-style vector-clock
  happens-before engine with predictive race reports (the default
  engine behind :class:`repro.gpu.racecheck.RaceDetector`);
* :mod:`repro.check.replay` — decision-log recording, bit-deterministic
  replay, and delta-debugging schedule minimization;
* :mod:`repro.check.harness` — the :func:`~repro.check.harness.check`
  property-check front door tying the above together.
"""

from repro.check.explore import (
    BUDGETS,
    ExploreBudget,
    ExploreResult,
    RunOutcome,
    ScheduleExplorer,
)
from repro.check.harness import (
    CheckReport,
    Program,
    ScheduleFailure,
    check,
    program_from_pattern,
    replay_failure,
)
from repro.check.replay import (
    DecisionLog,
    DeviationScheduler,
    MinimizeResult,
    RecordingScheduler,
    ReplayScheduler,
    deviations_of,
    minimize_deviations,
    stay_policy,
)
from repro.check.vclock import VectorClock, VectorClockEngine

__all__ = [
    "BUDGETS",
    "ExploreBudget",
    "ExploreResult",
    "RunOutcome",
    "ScheduleExplorer",
    "CheckReport",
    "Program",
    "ScheduleFailure",
    "check",
    "program_from_pattern",
    "replay_failure",
    "DecisionLog",
    "DeviationScheduler",
    "MinimizeResult",
    "RecordingScheduler",
    "ReplayScheduler",
    "deviations_of",
    "minimize_deviations",
    "stay_policy",
    "VectorClock",
    "VectorClockEngine",
]
