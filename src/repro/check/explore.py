"""Systematic schedule exploration with dynamic partial-order reduction.

Stress testing runs a kernel under 50 random seeds and hopes one of
them hits the bad interleaving; this module instead *enumerates* the
schedule space.  A :class:`ScheduleExplorer` drives a fresh execution
of the program per schedule through a controlled scheduler, doing
depth-first search over scheduling decisions with:

* **dynamic partial-order reduction** (Flanagan & Godefroid): after each
  execution, conflicting access pairs that are not ordered by
  synchronization contribute *backtrack points* — alternative threads
  worth running at earlier decisions — so only one representative per
  Mazurkiewicz trace (commutation class) is explored;
* **sleep sets** (Godefroid): a thread whose exploration from a state is
  complete sleeps until some dependent operation executes, pruning the
  redundant interleavings persistent sets alone would revisit;
* **preemption bounding** (CHESS-style): schedules with more than
  ``preemption_bound`` forced context switches are skipped — most
  concurrency bugs need very few preemptions, and the bound makes the
  search space finite for spinning kernels;
* **state-fingerprint deduplication** (optional): a branch whose
  (executor state, choice) pair was already expanded is skipped.  The
  fingerprint covers global memory plus each thread's generator frame,
  so it is precise for the kernels in this repository; it trades a
  little completeness of backtrack propagation for a lot of pruning
  and is therefore off in ``exhaustive`` mode;
* **budgets**: schedule count, per-run micro-steps, and wall-clock.

The explorer is program-agnostic: it re-executes via a caller-supplied
``runner(scheduler, step_probe) -> RunOutcome`` (the property-check
harness in :mod:`repro.check.harness` builds one from a kernel or a
pattern).  ``mode="naive"`` disables all reduction — same DFS, full
branching — which is what the DPOR reduction factor is measured
against.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExplorationError
from repro.gpu.interleave import PendingOp, Scheduler
from repro.gpu.simt import DRAIN_BASE, AccessEvent
from repro.check.replay import DecisionLog, stay_policy

__all__ = ["ExploreBudget", "BUDGETS", "RunOutcome", "ExploreResult",
           "ScheduleExplorer", "state_fingerprint"]


@dataclass(frozen=True)
class ExploreBudget:
    """Bounds on one exploration."""

    max_schedules: int = 400
    max_steps_per_run: int = 20_000
    max_seconds: float = 30.0
    preemption_bound: int | None = 3

    def describe(self) -> str:
        bound = ("unbounded" if self.preemption_bound is None
                 else str(self.preemption_bound))
        return (f"≤{self.max_schedules} schedules, "
                f"≤{self.max_steps_per_run} steps/run, "
                f"≤{self.max_seconds:g}s, preemption bound {bound}")


#: named budgets for the CLI / CI tiers
BUDGETS: dict[str, ExploreBudget] = {
    "smoke": ExploreBudget(max_schedules=60, max_steps_per_run=4_000,
                           max_seconds=10.0, preemption_bound=2),
    "default": ExploreBudget(),
    "deep": ExploreBudget(max_schedules=5_000, max_steps_per_run=100_000,
                          max_seconds=300.0, preemption_bound=5),
}


class _RedundantScheduleAbort(BaseException):
    """Control flow: every runnable thread is asleep, so this schedule
    can only reproduce an already-explored trace.  Derives from
    BaseException so program-level ``except Exception`` cannot swallow
    it on the way out of the executor."""


@dataclass
class RunOutcome:
    """What one complete (or aborted) execution produced."""

    events: list[AccessEvent]
    fingerprint: bytes | None = None     #: final memory digest
    error: Exception | None = None       #: DeadlockError etc., if raised
    check_ok: bool | None = None         #: invariant verdict, if checked
    payload: object = None               #: harness-private extras


#: runner contract: execute the program once from scratch under the
#: given scheduler; ``step_probe`` (when not None) must be installed as
#: ``executor.step_probe``.
Runner = Callable[[Scheduler, Callable | None], RunOutcome]


def _stable_encode(value: object) -> str:
    """Deterministic encoding of a generator-frame local across runs
    (default reprs embed object addresses, which change per run)."""
    if value is None or isinstance(value, (bool, str)):
        return repr(value)
    if isinstance(value, int):
        return str(int(value))
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_stable_encode(v) for v in value) + "]"
    if isinstance(value, dict):
        return "{" + ",".join(
            f"{_stable_encode(k)}:{_stable_encode(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        ) + "}"
    try:
        return f"<{type(value).__name__}:{int(value)}>"  # numpy scalars
    except (TypeError, ValueError):
        return f"<{type(value).__name__}>"


def state_fingerprint(memory, threads, epochs) -> int:
    """Hash of the executor's full logical state at a decision point:
    the memory image plus, per thread, the generator's instruction
    pointer and locals, queued micro-ops, register cache, and control
    bits.  Two runs at equal fingerprints behave identically from here
    on under the same decisions."""
    parts: list[str] = [memory.fingerprint().hex(), repr(sorted(epochs.items()))]
    for t in threads:
        frame = getattr(t.gen, "gi_frame", None)
        if frame is not None:
            frame_sig = (f"@{frame.f_lasti}:"
                         + _stable_encode(frame.f_locals))
        else:
            frame_sig = "@done"
        micro_sig = ";".join(
            f"{m.span}:{int(m.is_read)}{int(m.is_write)}:{m.value}:{m.operand}"
            for m in t.micro)
        pieces_sig = ",".join(str(p) for p in t.pieces)
        reg_sig = ",".join(f"{s}={v}" for s, v in
                           sorted(t.reg_cache.items(),
                                  key=lambda kv: (kv[0].array, kv[0].start)))
        buf_sig = ",".join(f"{e.span}={e.value}@{e.seq}:{e.vis}"
                           for e in t.store_buffer)
        parts.append(f"t{t.tid}:{int(t.done)}{int(t.at_barrier)}"
                     f"{int(t.started)}:{_stable_encode(t.send_value)}:"
                     f"{frame_sig}|{micro_sig}|{pieces_sig}|{reg_sig}|{buf_sig}")
    return hash("\n".join(parts))


# ----------------------------------------------------------------------
# The directed scheduler: forced prefix, then deterministic free phase
# ----------------------------------------------------------------------

class _DirectedScheduler(Scheduler):
    """Replays a forced decision prefix, then continues with the
    preemption-free stay policy, avoiding sleeping threads; records
    everything the exploration needs (runnable sets, pending ops,
    per-decision sleep snapshots, launch boundaries)."""

    needs_pending = True

    def __init__(self, forced: Sequence[int], sleep_depth: int,
                 sleep: Mapping[int, PendingOp]) -> None:
        self.forced = list(forced)
        self.sleep_depth = sleep_depth
        self._sleep = dict(sleep)
        self.picks: list[int] = []
        self.runnables: list[tuple[int, ...]] = []
        self.pendings: list[dict[int, PendingOp]] = []
        self.sleep_snapshots: dict[int, dict[int, PendingOp]] = {}
        self.launch_starts: list[int] = []
        self.redundant = False
        self._pending: Mapping[int, PendingOp] = {}
        self._last: int | None = None

    def reset(self) -> None:
        self.launch_starts.append(len(self.picks))
        self._last = None

    def observe(self, runnable: Sequence[int],
                pending: Mapping[int, PendingOp] | None) -> None:
        self._pending = pending or {}

    def choose(self, runnable: Sequence[int]) -> int:
        index = len(self.picks)
        if index >= self.sleep_depth:
            self.sleep_snapshots[index] = dict(self._sleep)
        if index < len(self.forced):
            pick = self.forced[index]
            if pick not in runnable:
                raise ExplorationError(
                    f"non-deterministic program: forced thread {pick} "
                    f"not runnable at decision {index} "
                    f"(runnable: {list(runnable)})")
        else:
            awake = [t for t in runnable if t not in self._sleep]
            if not awake:
                self.redundant = True
                raise _RedundantScheduleAbort
            pick = stay_policy(awake, self._last if self._last in awake
                               else None)
        self.picks.append(pick)
        self.runnables.append(tuple(runnable))
        self.pendings.append({t: self._pending.get(t) for t in runnable})
        if index >= self.sleep_depth and self._sleep:
            op = self._pending.get(pick)
            for q in list(self._sleep):
                if q == pick or _dependent(op, self._sleep[q]):
                    del self._sleep[q]
        self._last = pick
        return pick

    def state(self) -> tuple:
        return ("directed", len(self.picks))

    def log(self) -> DecisionLog:
        return DecisionLog.from_decisions(self.picks, self.launch_starts)


def _dependent(a: PendingOp, b: PendingOp) -> bool:
    """Two pending operations do not commute: same array, overlapping
    bytes, at least one write.  Unknown ops (None — thread between
    operations) are conservatively treated as dependent, never putting
    such a thread to sleep incorrectly."""
    if a is None or b is None:
        return True
    if a[0] != b[0]:
        return False
    if not (a[4] or b[4]):  # neither writes
        return False
    return a[1] < b[1] + b[2] and b[1] < a[1] + a[2]


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------

@dataclass
class _Node:
    """One decision point on the current DFS stack."""

    runnable: tuple[int, ...]
    pending: dict[int, PendingOp]
    pick: int
    last_before: int | None            #: thread that ran the previous step
    preempt_prefix: int                #: preemptions strictly before here
    done: set[int] = field(default_factory=set)
    #: choices actually executed from here (pruned ones enter ``done``
    #: but not this set; only explored subtrees may put siblings to
    #: sleep, or sleep sets would prune schedules nobody visited)
    explored: set[int] = field(default_factory=set)
    backtrack: set[int] = field(default_factory=set)
    sleep: dict[int, PendingOp] = field(default_factory=dict)
    fp: int | None = None

    def is_preemption(self, choice: int) -> bool:
        return (self.last_before is not None
                and self.last_before in self.runnable
                and choice != self.last_before)


@dataclass
class ExploreResult:
    """Statistics and verdict of one exploration."""

    mode: str
    schedules: int = 0                 #: complete executions performed
    complete: bool = False             #: schedule space exhausted
    truncated_runs: int = 0            #: runs that hit the step budget
    redundant_pruned: int = 0          #: runs aborted by sleep sets
    preemption_pruned: int = 0         #: branches beyond the bound
    dedupe_pruned: int = 0             #: branches into seen states
    max_depth: int = 0
    total_steps: int = 0
    distinct_final_states: int = 0
    wall_seconds: float = 0.0
    budget: ExploreBudget = field(default_factory=ExploreBudget)
    stopped_early: bool = False        #: on_run asked to stop

    @property
    def schedules_per_second(self) -> float:
        return self.schedules / self.wall_seconds if self.wall_seconds else 0.0


class ScheduleExplorer:
    """DFS over scheduling decisions with DPOR, sleep sets, preemption
    bounding, and budgets.

    Parameters
    ----------
    runner:
        Executes the program once under a given scheduler (fresh memory
        every call) and returns a :class:`RunOutcome`.
    mode:
        ``"dpor"`` (reduced) or ``"naive"`` (full branching; the
        reduction-factor baseline).
    budget:
        An :class:`ExploreBudget` or a name from :data:`BUDGETS`.
    on_run:
        Optional callback ``(outcome, log) -> bool`` invoked per
        completed schedule; returning True stops the exploration (used
        by the harness for stop-on-first-failure).
    state_dedupe:
        Enable state-fingerprint branch pruning.
    """

    def __init__(self, runner: Runner, mode: str = "dpor",
                 budget: ExploreBudget | str = "default",
                 on_run: Callable[[RunOutcome, DecisionLog], bool] | None = None,
                 state_dedupe: bool = False) -> None:
        if mode not in ("dpor", "naive"):
            raise ExplorationError(f"unknown exploration mode {mode!r}")
        if isinstance(budget, str):
            try:
                budget = BUDGETS[budget]
            except KeyError:
                raise ExplorationError(
                    f"unknown budget {budget!r}; known: "
                    f"{sorted(BUDGETS)}") from None
        self.runner = runner
        self.mode = mode
        self.budget = budget
        self.on_run = on_run
        self.state_dedupe = state_dedupe
        self._expanded: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def explore(self) -> ExploreResult:
        result = ExploreResult(mode=self.mode, budget=self.budget)
        started = time.monotonic()
        stack: list[_Node] = []
        finals: set[bytes | None] = set()
        forced: list[int] = []
        branch_depth = 0
        branch_sleep: dict[int, PendingOp] = {}

        while True:
            if result.schedules >= self.budget.max_schedules:
                break
            if time.monotonic() - started > self.budget.max_seconds:
                break

            sched = _DirectedScheduler(forced, branch_depth, branch_sleep)
            fingerprints: list[int] = []
            probe = (self._make_probe(fingerprints)
                     if self.state_dedupe else None)
            try:
                outcome = self.runner(sched, probe)
            except _RedundantScheduleAbort:
                outcome = None
                result.redundant_pruned += 1

            if outcome is not None:
                result.schedules += 1
                result.total_steps += len(sched.picks)
                result.max_depth = max(result.max_depth, len(sched.picks))
                if outcome.error is not None:
                    result.truncated_runs += 1
                finals.add(outcome.fingerprint)
                if self.on_run is not None:
                    if self.on_run(outcome, sched.log()):
                        result.stopped_early = True
                        break

            self._integrate(stack, sched, branch_depth, fingerprints)
            if self.mode == "dpor" and outcome is not None:
                self._add_backtrack_points(
                    stack, sched, outcome.events)

            branch = self._select_branch(stack, result)
            if branch is None:
                result.complete = (
                    result.schedules < self.budget.max_schedules
                    and not result.stopped_early)
                break
            branch_depth, choice, branch_sleep = branch
            del stack[branch_depth + 1:]
            forced = [stack[i].pick for i in range(branch_depth)] + [choice]

        result.distinct_final_states = len(finals - {None})
        result.wall_seconds = time.monotonic() - started
        return result

    # ------------------------------------------------------------------
    def _make_probe(self, sink: list[int]):
        def probe(threads, epochs, stats):
            # the runner hands us memory via closure-free route: the
            # first thread's reg_cache spans name arrays, but we need
            # the memory object itself — runners install this probe on
            # the executor, whose memory we reach through the closure
            # set below by the runner (see harness._make_runner).
            sink.append(state_fingerprint(probe.memory, threads, epochs))
        probe.memory = None  # assigned by the runner before launching
        return probe

    def _integrate(self, stack: list[_Node], sched: _DirectedScheduler,
                   branch_depth: int, fingerprints: list[int]) -> None:
        preempt = stack[branch_depth].preempt_prefix if branch_depth < len(stack) else 0
        last: int | None = (stack[branch_depth - 1].pick
                            if branch_depth > 0 else None)
        launch_starts = set(sched.launch_starts)
        for d, pick in enumerate(sched.picks):
            if d in launch_starts:
                last = None
            if d < len(stack):
                node = stack[d]
                if node.runnable != sched.runnables[d]:
                    raise ExplorationError(
                        f"non-deterministic program: decision {d} saw "
                        f"runnable {sched.runnables[d]} but the stack "
                        f"recorded {node.runnable}")
                node.pick = pick
                node.done.add(pick)
                node.explored.add(pick)
                if d >= branch_depth and node.is_preemption(pick):
                    preempt += 1
            else:
                node = _Node(
                    runnable=sched.runnables[d],
                    pending=sched.pendings[d],
                    pick=pick,
                    last_before=last,
                    preempt_prefix=preempt,
                    done={pick},
                    explored={pick},
                    backtrack=(set(sched.runnables[d])
                               if self.mode == "naive" else {pick}),
                    sleep=sched.sleep_snapshots.get(d, {}),
                    fp=fingerprints[d] if d < len(fingerprints) else None,
                )
                if node.is_preemption(pick):
                    preempt += 1
                stack.append(node)
            last = pick
        if self.state_dedupe:
            for d in range(min(len(fingerprints), len(stack))):
                if stack[d].fp is None:
                    stack[d].fp = fingerprints[d]
                if stack[d].fp is not None:
                    self._expanded.add((stack[d].fp, sched.picks[d]))

    def _add_backtrack_points(self, stack: list[_Node],
                              sched: _DirectedScheduler,
                              events: list[AccessEvent]) -> None:
        """Flanagan-Godefroid backtrack computation from the conflict
        relation of the just-executed trace."""
        steps = _trace_steps(sched, events)
        # per-thread history of (decision, op, launch, block, epoch) for
        # every memory event that thread performed.  A decision may carry
        # several events (an atomic that forces store-buffer drains, a
        # block-scope release promoting multiple entries); scheduled
        # drains act under their own DRAIN_BASE+seq pseudo-tid.
        by_thread: dict[int, list[tuple]] = {}

        def nominate(node: _Node, tid: int) -> None:
            # Source-DPOR-style insertion: the canonical candidate only
            # helps if the branch selector will actually run it, i.e. it
            # is runnable and not asleep at that node.  Skipping a
            # *sleeping* candidate silently is the classic FG+sleep-sets
            # completeness trap (the covering trace the sleep invariant
            # appeals to may itself have been pruned by a redundant-
            # schedule abort; observable as missed IRIW outcomes), so
            # fall back to nominating the awake runnable threads — some
            # awake trace prefix leads into the same reordering class.
            if tid in node.runnable and tid not in node.sleep:
                node.backtrack.add(tid)
                return
            awake = set(node.runnable) - set(node.sleep)
            node.backtrack.update(awake or node.runnable)

        for d, infos in enumerate(steps):
            here = stack[d] if d < len(stack) else None
            for tid, op, launch, block, epoch in infos:
                # A runnable store-buffer drain agent whose pending
                # flush conflicts with this decision's access is a
                # schedule alternative classic FG analysis cannot see:
                # if the flush only ever executes fused into a later
                # forced drain (an atomic, a fence), it never appears in
                # any trace under its own pseudo-tid, so no observed
                # event pair ever nominates it.  Nominate it here.
                if here is not None:
                    for q in here.runnable:
                        if (q >= DRAIN_BASE and q != tid
                                and _dependent(op, here.pending.get(q))):
                            nominate(here, q)
                for q, history in by_thread.items():
                    if q == tid:
                        continue
                    for j, jop, jlaunch, jblock, jepoch in reversed(history):
                        if jlaunch != launch:
                            break  # launch barrier orders everything older
                        if jblock == block and jepoch != epoch:
                            break  # __syncthreads() between them
                        if _dependent(op, jop):
                            nominate(stack[j], tid)
                            break
                by_thread.setdefault(tid, []).append(
                    (d, op, launch, block, epoch))

    def _select_branch(self, stack: list[_Node], result: ExploreResult):
        """Deepest node with an unexplored, unpruned choice."""
        bound = self.budget.preemption_bound
        for depth in range(len(stack) - 1, -1, -1):
            node = stack[depth]
            candidates = sorted(
                node.backtrack - node.done - set(node.sleep))
            for choice in candidates:
                if (bound is not None and node.is_preemption(choice)
                        and node.preempt_prefix + 1 > bound):
                    result.preemption_pruned += 1
                    node.done.add(choice)
                    continue
                if (self.state_dedupe and node.fp is not None
                        and (node.fp, choice) in self._expanded):
                    result.dedupe_pruned += 1
                    node.done.add(choice)
                    continue
                sleep: dict[int, PendingOp] = {}
                if self.mode == "dpor":
                    sleep = dict(node.sleep)
                    for prev in node.explored:
                        if prev != choice and prev in node.runnable:
                            op = node.pending.get(prev)
                            if op is not None:
                                sleep[prev] = op
                node.done.add(choice)
                return depth, choice, sleep
        return None


def _trace_steps(sched: _DirectedScheduler, events: list[AccessEvent]):
    """Per-decision list of (tid, op, launch, block, epoch) for the
    memory micro-ops that decision performed (empty when it performed
    none).  Events are matched to decisions via the per-launch step
    counter; one decision can carry several events under a buffered
    memory model (forced drains, block-scope promotes)."""
    steps: list[list[tuple]] = [[] for _ in range(len(sched.picks))]
    starts = sched.launch_starts
    for ev in events:
        ordinal = ev.launch - (events[0].launch if events else 0)
        if ordinal >= len(starts):
            continue
        d = starts[ordinal] + ev.step - 1
        if 0 <= d < len(steps):
            span = ev.span
            op = (span.array, span.start, span.nbytes,
                  ev.is_read, ev.is_write, ev.access.name == "ATOMIC")
            steps[d].append((ev.tid, op, ev.launch, ev.block, ev.epoch))
    return steps
