"""Property-check harness: explore → detect → minimize → replay.

:func:`check` is the front door of the ``repro.check`` subsystem.  It
takes a kernel (or a :class:`Program`, or a named pattern from
:mod:`repro.patterns`), systematically explores its schedule space via
:class:`~repro.check.explore.ScheduleExplorer`, race-checks every
execution with the vector-clock engine, evaluates an optional result
invariant (e.g. one of the :mod:`repro.algorithms.verify` checkers),
delta-debugs the first failing schedules down to minimal preemption
sets, and certifies that replaying each minimized decision log
reproduces the identical failing memory image.

Fault plans from :mod:`repro.gpu.faults` compose: pass ``faults=`` a
:class:`~repro.gpu.faults.FaultPlan` and every explored execution runs
under the same deterministic fault stream, so the explorer searches
schedules *of the faulted program*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.variants import Variant
from repro.errors import DeadlockError, ReproError, TransientKernelFault
from repro.gpu.faults import FaultPlan
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector, RaceReport
from repro.gpu.simt import SimtExecutor
from repro.check.explore import (
    BUDGETS,
    ExploreBudget,
    ExploreResult,
    RunOutcome,
    ScheduleExplorer,
)
from repro.check.replay import (
    DecisionLog,
    DeviationScheduler,
    MinimizeResult,
    ReplayScheduler,
    deviations_of,
    minimize_deviations,
)

__all__ = ["Program", "ScheduleFailure", "CheckReport", "check",
           "program_from_pattern", "replay_failure"]


@dataclass(frozen=True)
class Program:
    """A complete checkable unit: allocation, launch sequence, invariant.

    ``setup(mem)`` allocates arrays and returns the launch arguments;
    ``execute(executor, handles)`` performs the kernel launch(es) —
    including any host-side writes between launches; ``invariant(mem,
    handles)`` returns True iff the final memory state is acceptable
    (None skips result checking and relies on race detection alone).
    """

    name: str
    setup: Callable[[GlobalMemory], tuple]
    execute: Callable[[SimtExecutor, tuple], None]
    invariant: Callable[[GlobalMemory, tuple], bool] | None = None


def _single_launch_program(name: str, kernel: Callable, num_threads: int,
                           setup: Callable,
                           invariant: Callable | None,
                           block_dim: int | None) -> Program:
    bd = block_dim if block_dim is not None else max(1, num_threads)

    def execute(executor: SimtExecutor, handles: tuple) -> None:
        executor.launch(kernel, num_threads, *handles, block_dim=bd)

    return Program(name=name, setup=setup, execute=execute,
                   invariant=invariant)


def program_from_pattern(name: str,
                         variant: Variant = Variant.BASELINE) -> Program:
    """Wrap one :mod:`repro.patterns` corpus entry as a checkable
    program — including multi-launch drivers like ``kernel_boundary``."""
    from repro.patterns.library import execute_pattern, get_pattern

    pattern = get_pattern(name)
    kernel, n_threads, setup, pat_check = pattern.build(variant)

    def execute(executor: SimtExecutor, handles: tuple) -> None:
        execute_pattern(name, kernel, n_threads, executor, handles)

    def invariant(mem: GlobalMemory, handles: tuple) -> bool:
        return bool(pat_check(mem, handles))

    return Program(name=f"{name}/{variant.value}", setup=setup,
                   execute=execute, invariant=invariant)


@dataclass
class ScheduleFailure:
    """One schedule under which the program misbehaved."""

    kind: str                          #: ``race`` | ``invariant``
    detail: str
    log: DecisionLog                   #: the failing schedule as recorded
    minimized: MinimizeResult | None = None
    #: memory digest of the (minimized, else original) failing state —
    #: certified identical across two independent replays
    fingerprint: bytes | None = field(default=None, repr=False)
    replay_verified: bool = False

    @property
    def repro_log(self) -> DecisionLog:
        """The schedule to hand a human: minimized when available."""
        return self.minimized.log if self.minimized else self.log


@dataclass
class CheckReport:
    """Everything one :func:`check` call established."""

    program: str
    explore: ExploreResult
    races: list[RaceReport]
    failures: list[ScheduleFailure]
    naive: ExploreResult | None = None     #: the reduction baseline

    @property
    def ok(self) -> bool:
        return not self.races and not self.failures

    @property
    def dpor_reduction(self) -> float | None:
        """Naive-DFS schedules per DPOR schedule (> 1 means the
        reduction paid off); None unless ``compare_naive`` ran."""
        if self.naive is None or not self.explore.schedules:
            return None
        return self.naive.schedules / self.explore.schedules

    def summary(self) -> str:
        ex = self.explore
        lines = [
            f"program:            {self.program}",
            f"verdict:            {'PASS' if self.ok else 'FAIL'}",
            f"schedules explored: {ex.schedules}"
            + (" (complete)" if ex.complete else " (budget-bounded)"),
            f"pruned:             {ex.redundant_pruned} sleep-set, "
            f"{ex.preemption_pruned} preemption-bound, "
            f"{ex.dedupe_pruned} state-dedupe",
            f"truncated runs:     {ex.truncated_runs}",
            f"distinct finals:    {ex.distinct_final_states}",
            f"races:              {len(self.races)}"
            f" ({sum(1 for r in self.races if r.predicted)} predicted)",
            f"failures:           {len(self.failures)}",
            f"wall time:          {ex.wall_seconds:.2f}s"
            f" ({ex.schedules_per_second:.0f} schedules/s)",
        ]
        if self.naive is not None:
            reduction = self.dpor_reduction
            lines.append(
                f"naive baseline:     {self.naive.schedules} schedules"
                + (f" → DPOR reduction {reduction:.2f}x"
                   if reduction else ""))
        for race in self.races[:5]:
            lines.append(f"  race: {race.describe()}")
        for failure in self.failures:
            mini = failure.minimized
            extra = (f"; minimized to {len(mini.deviations)} deviation(s) "
                     f"in {mini.runs_used} runs" if mini else "")
            replay = " [replay-verified]" if failure.replay_verified else ""
            lines.append(f"  {failure.kind}: {failure.detail}{extra}"
                         f" — schedule {failure.repro_log.compact()}"
                         f"{replay}")
        return "\n".join(lines)


# ----------------------------------------------------------------------

def _coerce_program(target, num_threads, setup, invariant,
                    block_dim, variant) -> Program:
    if isinstance(target, Program):
        return target
    if isinstance(target, str):
        return program_from_pattern(target, variant)
    if not callable(target):
        raise ReproError(
            f"check() target must be a Program, a pattern name, or a "
            f"kernel function, got {type(target).__name__}")
    if num_threads is None or setup is None:
        raise ReproError(
            "checking a bare kernel requires num_threads= and setup=")
    return _single_launch_program(
        getattr(target, "__name__", "kernel"), target, num_threads,
        setup, invariant, block_dim)


def _make_runner(program: Program, budget: ExploreBudget,
                 faults: FaultPlan | None,
                 register_cache_plain: bool, weak_memory: bool,
                 memory_model=None, schedulable_drains: bool = False):
    """Build the explorer's runner: one fresh, fully deterministic
    execution of ``program`` per call."""
    if weak_memory and memory_model is None:
        # route the legacy flag through its alias once, here, instead
        # of warning on every exploration run
        memory_model = "tso"

    def runner(scheduler, probe=None) -> RunOutcome:
        injector = (faults.injector("check", program.name)
                    if faults is not None else None)
        mem = GlobalMemory(faults=injector)
        handles = program.setup(mem)
        executor = SimtExecutor(
            mem, scheduler=scheduler,
            register_cache_plain=register_cache_plain,
            record_events=True,
            max_steps=budget.max_steps_per_run,
            memory_model=memory_model,
            schedulable_drains=schedulable_drains,
            faults=injector)
        if probe is not None:
            probe.memory = mem
            executor.step_probe = probe
        error: Exception | None = None
        check_ok: bool | None = None
        try:
            program.execute(executor, handles)
        except (DeadlockError, TransientKernelFault) as exc:
            error = exc
        if error is None and program.invariant is not None:
            check_ok = bool(program.invariant(mem, handles))
        return RunOutcome(events=executor.events,
                          fingerprint=mem.fingerprint(),
                          error=error, check_ok=check_ok)

    return runner


def replay_failure(program: Program, log: DecisionLog,
                   faults: FaultPlan | None = None,
                   budget: ExploreBudget | str = "default",
                   register_cache_plain: bool = True,
                   weak_memory: bool = False,
                   memory_model=None) -> RunOutcome:
    """Re-execute one recorded schedule bit-deterministically."""
    if isinstance(budget, str):
        budget = BUDGETS[budget]
    runner = _make_runner(program, budget, faults,
                          register_cache_plain, weak_memory,
                          memory_model=memory_model)
    return runner(ReplayScheduler(log))


def check(target, num_threads: int | None = None, *,
          setup: Callable | None = None,
          invariant: Callable | None = None,
          block_dim: int | None = None,
          variant: Variant = Variant.BASELINE,
          budget: ExploreBudget | str = "default",
          mode: str = "dpor",
          engine: str = "vclock",
          predictive: bool = True,
          faults: FaultPlan | str | None = None,
          compare_naive: bool = False,
          minimize: bool = True,
          max_minimized: int = 3,
          stop_on_failure: bool = False,
          state_dedupe: bool = False,
          register_cache_plain: bool = True,
          weak_memory: bool = False,
          memory_model=None) -> CheckReport:
    """Systematically check a kernel/program for races and bad results.

    ``target`` is a :class:`Program`, a pattern name from
    :mod:`repro.patterns`, or a kernel generator function (then
    ``num_threads`` and ``setup`` are required, and ``invariant`` may be
    e.g. a closure over :func:`repro.algorithms.verify.check_components`).

    ``memory_model`` selects the consistency semantics both for
    execution (buffered stores etc.) and for the race detector's atomic
    happens-before edges; None keeps the paper's relaxed default.

    Returns a :class:`CheckReport`; ``report.ok`` is True iff no
    schedule produced a race (actual or predicted) or an invariant
    violation within the budget.
    """
    program = _coerce_program(target, num_threads, setup, invariant,
                              block_dim, variant)
    if isinstance(budget, str):
        try:
            budget = BUDGETS[budget]
        except KeyError:
            raise ReproError(
                f"unknown budget {budget!r}; known: "
                f"{sorted(BUDGETS)}") from None
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)

    runner = _make_runner(program, budget, faults,
                          register_cache_plain, weak_memory,
                          memory_model=memory_model)
    detector = RaceDetector(engine=engine, predictive=predictive,
                            memory_model=memory_model)

    races: list[RaceReport] = []
    seen_sites: set[tuple] = set()
    failures: list[ScheduleFailure] = []

    def on_run(outcome: RunOutcome, log: DecisionLog) -> bool:
        fresh = []
        for report in detector.analyze(outcome.events):
            if report.site_key not in seen_sites:
                seen_sites.add(report.site_key)
                fresh.append(report)
        races.extend(fresh)
        kinds = {f.kind for f in failures}
        if fresh and "race" not in kinds:
            failures.append(ScheduleFailure(
                kind="race",
                detail=fresh[0].describe(),
                log=log, fingerprint=outcome.fingerprint))
        if outcome.check_ok is False and "invariant" not in kinds:
            failures.append(ScheduleFailure(
                kind="invariant",
                detail=f"result check failed for {program.name}",
                log=log, fingerprint=outcome.fingerprint))
        return stop_on_failure and bool(failures)

    explorer = ScheduleExplorer(runner, mode=mode, budget=budget,
                                on_run=on_run, state_dedupe=state_dedupe)
    explore_result = explorer.explore()

    for failure in failures[:max_minimized]:
        _minimize_failure(failure, program, runner, detector,
                          minimize=minimize)

    naive_result: ExploreResult | None = None
    if compare_naive and mode != "naive":
        naive_runner = _make_runner(program, budget, faults,
                                    register_cache_plain, weak_memory,
                                    memory_model=memory_model)
        naive_result = ScheduleExplorer(
            naive_runner, mode="naive", budget=budget,
            state_dedupe=state_dedupe).explore()

    return CheckReport(program=program.name, explore=explore_result,
                       races=races, failures=failures,
                       naive=naive_result)


# ----------------------------------------------------------------------

def _minimize_failure(failure: ScheduleFailure, program: Program,
                      runner, detector: RaceDetector,
                      minimize: bool) -> None:
    """Shrink one failing schedule and certify replay determinism."""
    def reproduces(outcome: RunOutcome) -> bool:
        # a race failure reproduces iff *some* race shows up again (not
        # necessarily at the identical byte: minimization may surface an
        # equivalent racy pair at a sibling site)
        if failure.kind == "invariant":
            return outcome.check_ok is False
        return bool(detector.analyze(outcome.events))

    def still_fails(sched: DeviationScheduler) -> bool:
        return reproduces(runner(sched))

    # replay the recorded log once: recovers the runnable sets needed
    # for the deviation encoding and doubles as a determinism check
    replayer = ReplayScheduler(failure.log)
    replay_outcome = runner(replayer)
    if not reproduces(replay_outcome):
        return  # not deterministic under replay; leave the raw log
    launch_starts = _launch_starts(failure.log)
    deviations = deviations_of(failure.log.flat(),
                               replayer.runnable_sets, launch_starts)

    if minimize:
        if deviations:
            try:
                failure.minimized = minimize_deviations(
                    deviations, still_fails)
            except ReproError:
                pass  # non-deterministic shrink; keep the raw log
        else:
            # already the canonical schedule: nothing to shrink
            failure.minimized = MinimizeResult(
                log=failure.log, deviations={}, initial_deviations=0)

    # certify: two independent replays of the repro schedule reach the
    # identical memory image
    first = runner(ReplayScheduler(failure.repro_log))
    second = runner(ReplayScheduler(failure.repro_log))
    if (first.fingerprint is not None
            and first.fingerprint == second.fingerprint
            and reproduces(first)):
        failure.fingerprint = first.fingerprint
        failure.replay_verified = True
        if failure.minimized is not None:
            failure.minimized.fingerprint = first.fingerprint


def _launch_starts(log: DecisionLog) -> list[int]:
    starts = []
    total = 0
    for launch in log.launches:
        starts.append(total)
        total += len(launch)
    return starts
