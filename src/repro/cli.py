"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's driver scripts (``all_tests.sh`` and the
result-processing Python): run configurations, print speedup tables,
regenerate the geomean figure, and run the race detector on any code.

Commands
--------

* ``list``    — inputs, devices, and algorithms available.
* ``run``     — one (algorithm, input, device) configuration, both
  variants, with median runtimes and the speedup.
* ``table``   — a full speedup table for one device (Tables IV-VIII).
* ``fig6``    — geomean bars across all devices.
* ``races``   — SIMT race detection for one algorithm (Section IV).
* ``patterns`` — run the Indigo-style microbenchmark corpus: every racy
  idiom, its detected races and failure mode, and its race-free fix.
* ``sweep``   — the resilient sweep driver: per-cell fault isolation,
  retries, budgets, fault injection, and checkpoint/resume; with
  ``--telemetry`` it exports the run's metric registry and span tree.
* ``check``   — systematic schedule exploration (DPOR) of one pattern:
  enumerate interleavings, race-check each, minimize failing schedules.
* ``litmus``  — run the memory-model litmus corpus (MP, SB, LB, CoRR,
  IRIW, scoped variants) under one or more consistency models and
  assert observed outcomes against each model's allowed/forbidden sets.
* ``metrics`` — post-process an exported telemetry JSONL file
  (``metrics summarize``).
* ``trace``   — manage the on-disk trace cache (``trace prune``).
* ``chaos``   — run mini-sweeps under injected *host* faults (torn
  writes, full disks, SIGKILLed/stalled workers, corrupted
  checkpoints) and assert byte-identical recovery.

Exit codes: 0 success, 1 command-specific failure (e.g. a chaos
scenario diverged), 2 operational error, 3 sweep interrupted by
SIGINT/SIGTERM after a consistent checkpoint write.
"""

from __future__ import annotations

import argparse
import sys

from repro import Study, Variant
from repro.core.report import (
    fig6_bars,
    geomean_summary,
    resilient_speedup_table,
    speedup_table,
)
from repro.core.resilience import CellBudget, ResilientStudy
from repro.core.variants import get_algorithm, list_algorithms
from repro.errors import ReproError, SweepInterrupted
from repro.gpu.device import DEVICE_ORDER, PAPER_GPUS
from repro.gpu.faults import FaultPlan
from repro.graphs.suite import load_suite_graph, suite_names


def _cmd_list(_args) -> int:
    print("devices:")
    for key in DEVICE_ORDER:
        spec = PAPER_GPUS[key]
        print(f"  {key:10s} {spec.name} ({spec.architecture}, "
              f"{spec.sms} SMs, {spec.l1_kb} kB L1, {spec.l2_mb} MB L2)")
    print("algorithms:")
    for algo in list_algorithms():
        races = "racy baseline" if algo.has_races else "race-free by construction"
        print(f"  {algo.key:5s} {algo.full_name} — {races}")
    print("undirected inputs (Table II analogs):")
    for name in suite_names(directed=False):
        print(f"  {name}")
    print("directed inputs (Table III analogs, SCC only):")
    for name in suite_names(directed=True):
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    study = Study(reps=args.reps, validate=args.validate,
                  memory_model=args.memory_model)
    base = study.run(args.algo, args.input, args.device, Variant.BASELINE)
    free = study.run(args.algo, args.input, args.device, Variant.RACE_FREE)
    print(f"{args.algo} on {args.input} ({args.device}, "
          f"median of {args.reps}):")
    if args.memory_model:
        from repro.memmodel import get_model
        print(f"  memory model: {get_model(args.memory_model).describe()}")
    print(f"  baseline : {base.median_ms:10.4f} ms "
          f"({base.last_run.rounds} rounds)")
    print(f"  race-free: {free.median_ms:10.4f} ms "
          f"({free.last_run.rounds} rounds)")
    algo = get_algorithm(args.algo)
    if algo.has_races:
        print(f"  speedup  : {base.median_ms / free.median_ms:.3f}x "
              "(>1 means race-free is faster)")
    else:
        print("  (no races in this code; variants are identical)")
    return 0


def _cmd_table(args) -> int:
    study = Study(reps=args.reps)
    if args.algo == "scc":
        inputs = suite_names(directed=True)
        cells = study.speedup_table(args.device, ["scc"], inputs,
                                    jobs=args.jobs)
        title = f"SCC speedups on {args.device} (cf. Table VIII)"
    else:
        inputs = suite_names(directed=False)
        algos = ["cc", "gc", "mis", "mst"]
        cells = study.speedup_table(args.device, algos, inputs,
                                    jobs=args.jobs)
        title = f"Race-free speedups on {args.device} (cf. Tables IV-VII)"
    print(speedup_table(cells, title=title))
    return 0


def _cmd_fig6(args) -> int:
    study = Study(reps=args.reps)
    undirected = suite_names(directed=False)[:args.limit or None]
    directed = suite_names(directed=True)[:args.limit or None]
    cells = []
    for dev in DEVICE_ORDER:
        cells += study.speedup_table(dev, ["cc", "gc", "mis", "mst"],
                                     undirected, jobs=args.jobs)
        cells += study.speedup_table(dev, ["scc"], directed,
                                     jobs=args.jobs)
    print(fig6_bars(geomean_summary(cells)))
    return 0


def _cmd_races(args) -> int:
    import importlib

    from repro.gpu.interleave import RandomScheduler
    from repro.gpu.racecheck import RaceDetector, summarize_races
    from repro.graphs import generators as gen

    module = importlib.import_module(f"repro.algorithms.{args.algo}")
    if args.algo == "scc":
        graph = gen.directed_powerlaw(24, 2.5, seed=args.seed)
    elif args.algo == "apsp":
        graph = gen.random_uniform(6, 2.0, seed=args.seed)
        graph = graph.with_random_weights(seed=1)
    else:
        graph = gen.random_uniform(24, 3.0, seed=args.seed)
        if get_algorithm(args.algo).needs_weights:
            graph = graph.with_random_weights(seed=1)

    for variant in Variant:
        if args.algo == "apsp":
            if variant is Variant.RACE_FREE:
                continue
            _, ex = module.run_simt(graph,
                                    scheduler=RandomScheduler(args.seed))
        else:
            _, ex = module.run_simt(graph, variant,
                                    scheduler=RandomScheduler(args.seed))
        reports = RaceDetector().check(ex)
        label = variant.value
        if not reports:
            print(f"{args.algo} {label}: no data races detected")
            continue
        print(f"{args.algo} {label}: {len(reports)} race report(s)")
        for array, kinds in sorted(summarize_races(reports).items()):
            print(f"  {array}: {kinds}")
        for report in reports[:args.show]:
            print(f"  e.g. {report.describe()}")
    return 0


def _cmd_inputs(args) -> int:
    """Regenerate Tables II/III: the input suite with paper-vs-scaled
    properties."""
    from repro.graphs.properties import compute_properties
    from repro.graphs.suite import suite_entry
    from repro.utils.tables import format_table

    directed = args.directed
    rows = []
    for name in suite_names(directed=directed):
        entry = suite_entry(name)
        g = load_suite_graph(name)
        p = compute_properties(g, kind=entry.kind)
        rows.append([
            name, entry.kind,
            entry.paper_vertices, p.num_vertices,
            entry.paper_edges, p.num_edges,
            f"{entry.paper_d_avg:.1f}", f"{p.d_avg:.1f}",
        ])
    title = ("Table III analog (directed, SCC)" if directed
             else "Table II analog (undirected)")
    print(title)
    print(format_table(
        ["Graph", "Type", "Paper |V|", "Scaled |V|", "Paper |E|",
         "Scaled |E|", "Paper d-avg", "Scaled d-avg"], rows))
    return 0


def _export_telemetry(path: str, fmt: str) -> None:
    """Write the active registry/spans to ``path`` in ``fmt``."""
    from repro.telemetry.export import (
        to_console,
        to_prometheus,
        write_jsonl,
    )
    from repro.telemetry.metrics import get_registry
    from repro.telemetry.spans import get_spans
    from repro.utils.atomicio import atomic_write_text

    registry = get_registry()
    if fmt == "prom":
        atomic_write_text(path, to_prometheus(registry))
    elif fmt == "console":
        text = to_console(registry)
        print(text)
        atomic_write_text(path, text + "\n")
    else:
        write_jsonl(path, registry, get_spans())
    print(f"telemetry ({fmt}) written to {path}")


def _cmd_sweep(args) -> int:
    """Resilient speedup sweep: Tables IV-VIII under adversity."""
    if args.telemetry:
        from repro import telemetry

        with telemetry.session():
            return _run_sweep(args)
    return _run_sweep(args)


def _run_sweep(args) -> int:
    from repro.gpu import tiers

    tiers.set_engine(args.engine)
    faults = (FaultPlan.parse(args.inject, seed=args.fault_seed)
              if args.inject else None)
    budget = CellBudget(max_seconds=args.max_seconds,
                        max_steps=args.max_steps)
    study = ResilientStudy(
        reps=args.reps, validate=args.validate, retries=args.retries,
        backoff_s=args.backoff, budget=budget, faults=faults,
        checkpoint=args.checkpoint, trace_cache=args.trace_cache or None)
    resumed = (0, 0)
    if args.resume:
        if args.checkpoint is None:
            raise ReproError("--resume requires --checkpoint")
        from pathlib import Path
        if Path(args.checkpoint).exists():
            resumed = study.load_checkpoint()

    if args.algo == "scc":
        algos = ["scc"]
        inputs = args.inputs or suite_names(directed=True)
    else:
        algos = ["cc", "gc", "mis", "mst"]
        inputs = args.inputs or suite_names(directed=False)
    if args.limit:
        inputs = inputs[:args.limit]

    sweep = study.sweep(args.device, algos, inputs, jobs=args.jobs)
    injected = f", inject: {faults.describe()}" if faults else ""
    title = (f"Resilient speedups on {args.device} "
             f"(median of {args.reps}{injected})")
    print(resilient_speedup_table(sweep.cells, title=title))
    print(f"cells executed this run: {study.cells_executed} "
          f"(resumed {resumed[0]} results, {resumed[1]} failures)")
    if args.telemetry:
        _export_telemetry(args.telemetry, args.metrics_format)
    return 0


def _cmd_chaos(args) -> int:
    """Host-fault chaos suite: inject, recover, diff against baseline."""
    from repro.core.chaos import run_chaos

    report = run_chaos(device=args.device, inputs=args.inputs,
                       reps=args.reps, jobs=args.jobs, seed=args.seed,
                       quick=args.quick, workdir=args.workdir)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    """Run the sweep engine as a hardened async job server."""
    from repro.core import hostfaults
    from repro.gpu import tiers
    from repro.service.server import ServiceConfig, serve_forever

    tiers.set_engine(args.engine)

    faults = (FaultPlan.parse(args.inject, seed=args.fault_seed)
              if args.inject else None)
    config = ServiceConfig(
        host=args.host, port=args.port, reps=args.reps, scale=args.scale,
        validate=args.validate, retries=args.retries,
        backoff_s=args.backoff, max_steps=args.max_steps, jobs=args.jobs,
        trace_dir=args.trace_cache or None, checkpoint=args.checkpoint,
        faults=faults, workers=args.workers,
        store_dir=args.store or None,
        max_pending_cells=args.max_pending_cells,
        per_tenant_cells=args.per_tenant_cells,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        saturation_threshold=args.saturation,
        default_deadline_s=args.default_deadline,
        drain_deadline_s=args.drain_deadline)

    host_plan = None
    if args.inject_host:
        targets = tuple(t for t in (args.host_targets or "").split(",")
                        if t)
        host_plan = hostfaults.HostFaultPlan.parse(
            args.inject_host, seed=args.host_seed, targets=targets,
            disrupt_generations=args.disrupt_generations)

    def _serve() -> int:
        if host_plan is not None:
            with hostfaults.installed(host_plan):
                return serve_forever(config)
        return serve_forever(config)

    if args.telemetry:
        from repro import telemetry

        with telemetry.session():
            code = _serve()
            _export_telemetry(args.telemetry, args.metrics_format)
            return code
    return _serve()


def _cmd_metrics(args) -> int:
    """Post-process an exported telemetry JSONL file."""
    from repro.telemetry.export import read_jsonl, summarize

    metrics, spans = read_jsonl(args.file)
    print(summarize(metrics, spans))
    return 0


def _cmd_trace(args) -> int:
    """Manage the on-disk trace cache."""
    from repro.perf.trace import TraceCache

    cache = TraceCache(disk_dir=args.dir)
    removed, freed = cache.prune(args.max_bytes)
    entries, nbytes = cache.disk_usage()
    print(f"pruned {removed} trace(s), freed {freed} bytes; "
          f"{entries} entries ({nbytes} bytes) remain in {args.dir}")
    return 0


def _cmd_patterns(args) -> int:
    from repro.patterns import PATTERNS, run_pattern
    from repro.utils.tables import format_table

    rows = []
    for name, pattern in sorted(PATTERNS.items()):
        for variant in Variant:
            outcomes = set()
            races = 0
            for seed in range(args.seeds):
                result = run_pattern(name, variant, seed=seed)
                outcomes.add(result.outcome.value)
                races = max(races, result.races)
            rows.append([name, variant.value, races,
                         "/".join(sorted(outcomes))])
    print(format_table(
        ["Pattern", "Variant", "Races", "Outcomes observed"], rows))
    print("\nPatterns marked race-free by design (false-positive "
          "probes): "
          + ", ".join(sorted(p.name for p in PATTERNS.values()
                             if not p.expected_racy)))
    return 0


def _cmd_check(args) -> int:
    from repro.check import BUDGETS, ExploreBudget, check
    from repro.gpu.faults import FaultPlan as _FaultPlan
    from repro.patterns import PATTERNS

    budget = BUDGETS[args.budget]
    if args.max_schedules or args.preemption_bound is not None:
        budget = ExploreBudget(
            max_schedules=args.max_schedules or budget.max_schedules,
            max_steps_per_run=budget.max_steps_per_run,
            max_seconds=budget.max_seconds,
            preemption_bound=(args.preemption_bound
                              if args.preemption_bound is not None
                              else budget.preemption_bound))
    faults = (_FaultPlan.parse(args.inject, seed=args.fault_seed)
              if args.inject else None)
    names = ([args.pattern] if args.pattern != "all"
             else sorted(PATTERNS))
    variants = ([Variant(args.variant)] if args.variant != "both"
                else list(Variant))

    # with --json - the narration moves to stderr so stdout is
    # machine-parseable JSON and nothing else
    narrate = sys.stderr if args.json == "-" else sys.stdout
    failed = False
    json_entries = []
    for name in names:
        for variant in variants:
            report = check(name, variant=variant, budget=budget,
                           mode=args.mode, faults=faults,
                           compare_naive=args.compare_naive,
                           minimize=not args.no_minimize,
                           state_dedupe=args.state_dedupe)
            print(report.summary(), file=narrate)
            print(file=narrate)
            expected_racy = (PATTERNS[name].expected_racy
                             and variant is Variant.BASELINE)
            if report.ok == expected_racy:
                failed = True
                verdict = "MISSED RACE" if expected_racy else "FALSE ALARM"
                print(f"  *** {verdict}: {name}/{variant.value} ***\n",
                      file=narrate)
            if args.json:
                json_entries.append({
                    "program": report.program,
                    "ok": report.ok,
                    "expected_racy": expected_racy,
                    "schedules_explored": report.explore.schedules,
                    "complete": report.explore.complete,
                    "truncated_runs": report.explore.truncated_runs,
                    "races": [r.to_json() for r in report.races],
                    "failures": [
                        {"kind": f.kind, "detail": f.detail,
                         "schedule": f.repro_log.compact(),
                         "replay_verified": f.replay_verified}
                        for f in report.failures
                    ],
                })
    if args.json:
        payload = {"budget": args.budget, "mode": args.mode,
                   "ok": not failed, "reports": json_entries}
        _write_json(args.json, payload)
        if args.json != "-":
            print(f"wrote {args.json}")
    return 1 if failed else 0


def _write_json(path: str, payload: dict) -> None:
    import json

    if path == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _cmd_litmus(args) -> int:
    from repro.check import ExploreBudget
    from repro.memmodel.litmus import (
        CORPUS,
        LITMUS_BUDGET,
        format_table,
        run_corpus,
    )

    models = args.model.split(",") if args.model else None
    tests = args.test.split(",") if args.test else None
    if tests:
        known = {t.name for t in CORPUS}
        unknown = [t for t in tests if t not in known]
        if unknown:
            raise ReproError(f"unknown litmus test(s) {unknown}; known: "
                             f"{sorted(known)}")
    budget = LITMUS_BUDGET
    if args.max_schedules or args.max_seconds:
        budget = ExploreBudget(
            max_schedules=args.max_schedules or budget.max_schedules,
            max_steps_per_run=budget.max_steps_per_run,
            max_seconds=args.max_seconds or budget.max_seconds,
            preemption_bound=budget.preemption_bound)

    results = run_corpus(models=models, tests=tests, budget=budget)
    print(format_table(results))
    bad = [r for r in results if not r.ok]
    incomplete = [r for r in results if not r.complete]
    print(f"\n{len(results)} cells: {len(results) - len(bad)} ok, "
          f"{len(bad)} failed, {len(incomplete)} incomplete")
    for r in bad:
        if r.forbidden_observed:
            print(f"  *** {r.test}/{r.model}: FORBIDDEN outcome "
                  f"observed: {sorted(r.forbidden_observed)} ***")
        if r.complete and r.missing:
            print(f"  *** {r.test}/{r.model}: allowed outcome "
                  f"never reached: {sorted(r.missing)} ***")
    return 1 if bad else 0


def _cmd_repair(args) -> int:
    from repro.repair import list_targets, repair

    names = list_targets() if args.target == "all" else [args.target]
    devices = tuple(args.devices.split(",")) if args.devices else None
    narrate = sys.stderr if args.json == "-" else sys.stdout
    failed = False
    reports = []
    for name in names:
        report = repair(
            name, budget=args.budget,
            **({"devices": devices} if devices else {}),
            seeds=tuple(range(args.seeds)),
            max_candidates=args.max_candidates,
            shrink=not args.no_shrink)
        print(report.render(), file=narrate)
        print(file=narrate)
        reports.append(report)
        if not report.ok:
            failed = True
            print(f"  *** UNREPAIRED: {name} — races found but no "
                  "candidate fix was verified race-free ***\n",
                  file=narrate)
    if args.json:
        payload = {"budget": args.budget,
                   "ok": not failed,
                   "reports": [r.to_json() for r in reports]}
        _write_json(args.json, payload)
        if args.json != "-":
            print(f"wrote {args.json}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available inputs/devices/algorithms")

    run = sub.add_parser("run", help="run one configuration, both variants")
    run.add_argument("--algo", required=True)
    run.add_argument("--input", required=True)
    run.add_argument("--device", default="titanv")
    run.add_argument("--reps", type=int, default=9)
    run.add_argument("--validate", action="store_true",
                     help="verify outputs against reference algorithms")
    run.add_argument("--memory-model", default=None, metavar="MODEL",
                     help="price accesses under a consistency model "
                          "(sc, tso[:N], relaxed_gpu, ptx[:order]; "
                          "default: the paper's relaxed GPU model)")

    table = sub.add_parser("table", help="full speedup table for a device")
    table.add_argument("--device", default="titanv")
    table.add_argument("--algo", default="undirected",
                       help="'scc' for Table VIII, else Tables IV-VII")
    table.add_argument("--reps", type=int, default=3)
    table.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default: REPRO_JOBS)")

    fig6 = sub.add_parser("fig6", help="geomean bars across devices")
    fig6.add_argument("--reps", type=int, default=3)
    fig6.add_argument("--limit", type=int, default=0,
                      help="use only the first N inputs (0 = all)")
    fig6.add_argument("--jobs", type=int, default=None,
                      help="parallel sweep workers (default: REPRO_JOBS)")

    races = sub.add_parser("races", help="detect races in one code")
    races.add_argument("--algo", required=True)
    races.add_argument("--seed", type=int, default=7)
    races.add_argument("--show", type=int, default=3,
                       help="example reports to print per variant")

    patterns = sub.add_parser("patterns",
                              help="run the racy-idiom microbenchmarks")
    patterns.add_argument("--seeds", type=int, default=8,
                          help="schedules to try per pattern variant")

    inputs = sub.add_parser("inputs",
                            help="the input suite (Tables II/III analog)")
    inputs.add_argument("--directed", action="store_true",
                        help="show the directed (SCC) inputs")

    sweep = sub.add_parser(
        "sweep", help="resilient sweep with isolation/retries/resume")
    sweep.add_argument("--device", default="titanv")
    sweep.add_argument("--algo", default="undirected",
                       help="'scc' for Table VIII, else Tables IV-VII")
    sweep.add_argument("--inputs", type=lambda s: s.split(","),
                       default=None,
                       help="comma-separated input names (default: suite)")
    sweep.add_argument("--reps", type=int, default=3)
    sweep.add_argument("--limit", type=int, default=0,
                       help="use only the first N inputs (0 = all)")
    sweep.add_argument("--checkpoint", default=None,
                       help="checkpoint file, atomically updated per cell")
    sweep.add_argument("--resume", action="store_true",
                       help="load the checkpoint and run only missing cells")
    sweep.add_argument("--retries", type=int, default=0,
                       help="extra attempts after a transient kernel fault")
    sweep.add_argument("--backoff", type=float, default=0.0,
                       help="base retry backoff in seconds (exponential "
                            "with full jitter, deadline-capped)")
    sweep.add_argument("--max-steps", type=int, default=None,
                       help="SIMT micro-step budget per kernel launch")
    sweep.add_argument("--max-seconds", type=float, default=None,
                       help="wall-clock budget per cell")
    sweep.add_argument("--inject", default=None, metavar="SPEC",
                       help="fault plan, e.g. 'tear=0.5,abort=0.2,stall'")
    sweep.add_argument("--fault-seed", type=int, default=0)
    sweep.add_argument("--validate", action="store_true",
                       help="verify outputs (how torn writes are caught)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default: REPRO_JOBS, "
                            "1 = serial); results are bit-identical")
    sweep.add_argument("--trace-cache", default=None, metavar="DIR",
                       help="on-disk trace cache directory (default: "
                            "REPRO_TRACE_CACHE; shared by pool workers)")
    sweep.add_argument("--telemetry", default=None, metavar="PATH",
                       help="enable telemetry and export the sweep's "
                            "metrics/spans to PATH")
    sweep.add_argument("--metrics-format", default="jsonl",
                       choices=["jsonl", "prom", "console"],
                       help="telemetry export format (default: jsonl)")
    sweep.add_argument("--engine", default="auto",
                       choices=["interp", "batched", "auto"],
                       help="execution tier: scalar interpreter, batched "
                            "warp-wide numpy fast path, or automatic "
                            "selection (default; see docs/performance.md)")

    chaos = sub.add_parser(
        "chaos",
        help="inject host faults into mini-sweeps, assert recovery")
    chaos.add_argument("--quick", action="store_true",
                       help="CI-sized grid (one input, one repetition)")
    chaos.add_argument("--device", default="titanv")
    chaos.add_argument("--inputs", type=lambda s: s.split(","),
                       default=None,
                       help="comma-separated input names (default: a "
                            "small built-in grid)")
    chaos.add_argument("--reps", type=int, default=2)
    chaos.add_argument("--jobs", type=int, default=4,
                       help="pool width for the worker kill/stall "
                            "scenarios")
    chaos.add_argument("--seed", type=int, default=0,
                       help="host fault plan seed (replays exactly)")
    chaos.add_argument("--workdir", default=None,
                       help="keep scenario artifacts here instead of a "
                            "temp directory")

    serve = sub.add_parser(
        "serve",
        help="run the sweep engine as a hardened async job server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421,
                       help="TCP port (0 picks a free one; the bound "
                            "address is printed at startup)")
    serve.add_argument("--reps", type=int, default=3)
    serve.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor for every cell")
    serve.add_argument("--validate", action="store_true",
                       help="validate outputs for every served cell")
    serve.add_argument("--retries", type=int, default=1,
                       help="per-cell retries on transient kernel faults")
    serve.add_argument("--backoff", type=float, default=0.05,
                       help="base retry backoff in seconds (exponential "
                            "with full jitter, deadline-capped)")
    serve.add_argument("--max-steps", type=int, default=None,
                       help="per-kernel step budget (livelock guard)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker pool width per cell (>1 exercises "
                            "the worker-death-tolerant pool)")
    serve.add_argument("--workers", type=int, default=1,
                       help="sweep worker processes (>1 runs the "
                            "supervised fleet: heartbeats, crash "
                            "failover, bounded respawn)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="content-addressed shared result store "
                            "directory (fleet mode only)")
    serve.add_argument("--trace-cache", default=None, metavar="DIR",
                       help="on-disk trace cache directory")
    serve.add_argument("--checkpoint", default=None,
                       help="checkpoint path (autosaved per cell, "
                            "finalized on drain)")
    serve.add_argument("--inject", default=None, metavar="SPEC",
                       help="GPU fault plan for every cell, e.g. "
                            "'flip=0.05'")
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument("--inject-host", default=None, metavar="SPEC",
                       help="host fault plan installed for the server's "
                            "lifetime, e.g. 'kill=1.0,torn=0.4'")
    serve.add_argument("--host-seed", type=int, default=0)
    serve.add_argument("--host-targets", default=None,
                       help="comma-separated filename globs the storage "
                            "host faults apply to")
    serve.add_argument("--disrupt-generations", type=int, default=None,
                       help="worker kill/stall only while the pool "
                            "generation is below this bound")
    serve.add_argument("--max-pending-cells", type=int, default=256,
                       help="global admission bound on reserved cells")
    serve.add_argument("--per-tenant-cells", type=int, default=64,
                       help="admission bound per tenant")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failures that open a cell's "
                            "circuit breaker")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       help="seconds an open breaker waits before one "
                            "half-open trial")
    serve.add_argument("--saturation", type=int, default=8,
                       help="queued executions at which cached records "
                            "are served stale instead of queueing more")
    serve.add_argument("--default-deadline", type=float, default=None,
                       help="deadline for requests that do not send one")
    serve.add_argument("--drain-deadline", type=float, default=20.0,
                       help="seconds a SIGTERM drain waits for in-flight "
                            "streams before cancelling them")
    serve.add_argument("--telemetry", default=None, metavar="PATH",
                       help="enable telemetry; export metrics/spans to "
                            "PATH after the drain")
    serve.add_argument("--metrics-format", default="jsonl",
                       choices=["jsonl", "prom", "console"])
    serve.add_argument("--engine", default="auto",
                       choices=["interp", "batched", "auto"],
                       help="execution tier for served cells (default: "
                            "auto; see docs/performance.md)")

    metrics = sub.add_parser(
        "metrics", help="post-process exported telemetry")
    msub = metrics.add_subparsers(dest="metrics_command", required=True)
    summ = msub.add_parser(
        "summarize", help="human-readable rollup of a telemetry JSONL file")
    summ.add_argument("file", help="telemetry JSONL file to summarize")

    trace = sub.add_parser("trace", help="manage the on-disk trace cache")
    tsub = trace.add_subparsers(dest="trace_command", required=True)
    prune = tsub.add_parser(
        "prune", help="evict oldest traces until the cache fits a budget")
    prune.add_argument("--dir", required=True,
                       help="trace cache directory to prune")
    prune.add_argument("--max-bytes", type=int, required=True,
                       help="target size of the disk layer in bytes")

    chk = sub.add_parser(
        "check", help="systematic schedule exploration of a pattern")
    chk.add_argument("pattern", nargs="?", default="all",
                     help="pattern name from the corpus, or 'all'")
    chk.add_argument("--variant", default="both",
                     choices=["baseline", "racefree", "both"])
    chk.add_argument("--budget", default="default",
                     choices=["smoke", "default", "deep"],
                     help="exploration budget tier")
    chk.add_argument("--mode", default="dpor", choices=["dpor", "naive"])
    chk.add_argument("--max-schedules", type=int, default=0,
                     help="override the budget's schedule cap (0 = keep)")
    chk.add_argument("--preemption-bound", type=int, default=None,
                     help="override the budget's preemption bound")
    chk.add_argument("--compare-naive", action="store_true",
                     help="also run naive DFS to report the DPOR "
                          "reduction factor")
    chk.add_argument("--no-minimize", action="store_true",
                     help="skip delta-debugging failing schedules")
    chk.add_argument("--state-dedupe", action="store_true",
                     help="prune branches into already-seen states")
    chk.add_argument("--inject", default=None, metavar="SPEC",
                     help="explore under a fault plan, e.g. 'tear=0.5'")
    chk.add_argument("--fault-seed", type=int, default=0)
    chk.add_argument("--json", default=None, metavar="PATH",
                     help="write the structured race reports to PATH "
                          "('-' for stdout)")

    lit = sub.add_parser(
        "litmus", help="run the memory-model litmus corpus and check "
                       "outcomes against each model")
    lit.add_argument("--model", default=None,
                     help="comma-separated model specs (default: "
                          "sc,tso,relaxed_gpu,ptx)")
    lit.add_argument("--test", default=None,
                     help="comma-separated litmus test names "
                          "(default: full corpus)")
    lit.add_argument("--max-schedules", type=int, default=0,
                     help="override the exploration schedule cap "
                          "(0 = keep; completeness needs the default)")
    lit.add_argument("--max-seconds", type=float, default=0,
                     help="override the per-cell wall-clock budget")

    rep = sub.add_parser(
        "repair", help="localize, synthesize, DPOR-verify, and rank "
                       "race fixes for a target")
    rep.add_argument("target", nargs="?", default="all",
                     help="repair target (cc, mis, gc, mst, scc, "
                          "twophase) or 'all'")
    rep.add_argument("--budget", default="smoke",
                     choices=["smoke", "default", "deep"],
                     help="DPOR budget per candidate verification")
    rep.add_argument("--devices", default=None,
                     help="comma-separated device keys for ranking "
                          "(default: full zoo)")
    rep.add_argument("--seeds", type=int, default=3,
                     help="random-scheduler seeds for localization")
    rep.add_argument("--max-candidates", type=int, default=8,
                     help="cap on synthesized fix-sets")
    rep.add_argument("--no-shrink", action="store_true",
                     help="skip the greedy minimal-set search")
    rep.add_argument("--json", default=None, metavar="PATH",
                     help="write the full repair reports to PATH "
                          "('-' for stdout)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "table": _cmd_table,
        "fig6": _cmd_fig6,
        "races": _cmd_races,
        "patterns": _cmd_patterns,
        "inputs": _cmd_inputs,
        "sweep": _cmd_sweep,
        "check": _cmd_check,
        "litmus": _cmd_litmus,
        "repair": _cmd_repair,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except SweepInterrupted as exc:
        # a deliberate operator stop, not a failure: the checkpoint is
        # consistent, so the distinct code lets wrappers resume
        print(f"interrupted: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        # one-line diagnostic, not a traceback: a bad input name, a
        # deadlocked kernel, or a corrupt checkpoint is an operational
        # failure of the experiment, not a bug in the harness
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
